//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock timing harness with criterion's call shape:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs
//! `sample_size` timed samples after a warm-up and prints mean/min/max
//! per iteration — no statistics engine, HTML reports, or CLI filters.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier; re-export of `std::hint::black_box`.
pub use std::hint::black_box;

/// Top-level harness handle with the builder knobs benches configure.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Target total measurement time across all samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent running the routine before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, id, &mut f);
        self
    }

    /// Start a named group; member benchmarks print as `group/member`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run `name` under this group's prefix.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_bench(self.criterion, &label, &mut f);
        self
    }

    /// Run a parameterized benchmark; `input` is passed to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_bench(self.criterion, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Display label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function/parameter` label.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Label showing only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_one_sample<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    b.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(cfg: &Criterion, label: &str, f: &mut F) {
    // Warm up while estimating per-iteration cost to size the samples.
    let warm_start = Instant::now();
    let mut iters: u64 = 1;
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < cfg.warm_up_time {
        let t = time_one_sample(f, iters);
        per_iter = t.max(Duration::from_nanos(1)) / iters as u32;
        if t < Duration::from_millis(1) {
            iters = iters.saturating_mul(2);
        }
    }

    let per_sample = cfg.measurement_time / cfg.sample_size as u32;
    let iters_per_sample =
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;

    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let mut total = Duration::ZERO;
    for _ in 0..cfg.sample_size {
        let t = time_one_sample(f, iters_per_sample) / iters_per_sample as u32;
        min = min.min(t);
        max = max.max(t);
        total += t;
    }
    let mean = total / cfg.sample_size as u32;
    println!(
        "{label:<40} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]  ({} iters/sample)",
        iters_per_sample
    );
}

/// Declare a benchmark group. Supports both the `name/config/targets`
/// form and the plain `group_name, target, ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = fast_cfg();
        let mut hits = 0u64;
        c.bench_function("smoke", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }

    #[test]
    fn group_bench_with_input_passes_value() {
        let mut c = fast_cfg();
        let mut g = c.benchmark_group("grp");
        let mut seen = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(128usize), &128usize, |b, &d| {
            b.iter(|| seen = d)
        });
        g.finish();
        assert_eq!(seen, 128);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 4).0, "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}

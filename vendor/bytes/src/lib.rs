//! Offline stand-in for `bytes`.
//!
//! Implements the cursor-style [`Buf`] / [`BufMut`] traits for `&[u8]`,
//! `&mut [u8]` and `Vec<u8>` — the three shapes this workspace reads and
//! writes — with the little-endian accessors its serializers use.
//! Like upstream, reading advances the slice in place and out-of-bounds
//! access panics.

#![forbid(unsafe_code)]

macro_rules! buf_get_impl {
    ($($name:ident -> $t:ty),* $(,)?) => {$(
        /// Read a little-endian value and advance past it.
        fn $name(&mut self) -> $t {
            const N: usize = core::mem::size_of::<$t>();
            let mut raw = [0u8; N];
            raw.copy_from_slice(&self.chunk()[..N]);
            self.advance(N);
            <$t>::from_le_bytes(raw)
        }
    )*};
}

/// A readable byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes.
    ///
    /// # Panics
    /// Panics when fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte and advance past it.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    buf_get_impl! {
        get_u16_le -> u16,
        get_u32_le -> u32,
        get_u64_le -> u64,
        get_i32_le -> i32,
        get_i64_le -> i64,
        get_f32_le -> f32,
        get_f64_le -> f64,
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

macro_rules! buf_put_impl {
    ($($name:ident($t:ty)),* $(,)?) => {$(
        /// Append a value in little-endian byte order.
        fn $name(&mut self, v: $t) {
            self.put_slice(&v.to_le_bytes());
        }
    )*};
}

/// A writable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    ///
    /// # Panics
    /// Panics when the sink has fixed capacity and `src` does not fit.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    buf_put_impl! {
        put_u16_le(u16),
        put_u32_le(u32),
        put_u64_le(u64),
        put_i32_le(i32),
        put_i64_le(i64),
        put_f32_le(f32),
        put_f64_le(f64),
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Fixed-capacity sink: writes consume the slice from the front.
impl BufMut for &mut [u8] {
    fn put_slice(&mut self, src: &[u8]) {
        let (head, tail) = std::mem::take(self).split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_write_slice_read_round_trip() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_i64_le(-42);
        buf.put_f32_le(3.5);
        buf.put_f64_le(-0.25);

        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 4 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f32_le(), 3.5);
        assert_eq!(r.get_f64_le(), -0.25);
        assert!(!r.has_remaining());
    }

    #[test]
    fn fixed_slice_writes_consume_front() {
        let mut backing = [0u8; 12];
        {
            let mut w: &mut [u8] = &mut backing;
            w.put_u32_le(1);
            w.put_u32_le(2);
            w.put_u32_le(3);
            assert!(w.is_empty());
        }
        let mut r: &[u8] = &backing;
        assert_eq!((r.get_u32_le(), r.get_u32_le(), r.get_u32_le()), (1, 2, 3));
    }

    #[test]
    #[should_panic]
    fn reading_past_end_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}

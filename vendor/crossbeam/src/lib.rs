//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::scope` with the 0.8 call shape — the closure
//! receives a scope handle, `spawn` passes the handle again to each
//! worker closure, and the whole call returns `thread::Result` — built
//! on `std::thread::scope`. One behavioral difference: a panicking child
//! re-panics at scope exit (std semantics) instead of surfacing as
//! `Err`, so the `Err` arm here is unreachable; callers' `.unwrap()` /
//! `.expect()` still behave equivalently.

#![forbid(unsafe_code)]

/// Result of a scope or a joined scoped thread.
pub type ThreadResult<T> = std::thread::Result<T>;

/// Handle for spawning threads that may borrow from the caller's stack.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread and return its result.
    pub fn join(self) -> ThreadResult<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope handle
    /// (crossbeam's signature; most callers ignore it with `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            }),
        }
    }
}

/// Run `f` with a scope handle; all threads spawned in it are joined
/// before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| {
        let wrapper = Scope { inner: s };
        f(&wrapper)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_and_join_collect_results() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn borrows_from_enclosing_stack() {
        let mut out = vec![0usize; 4];
        scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i * i);
            }
        })
        .unwrap();
        assert_eq!(out, vec![0, 1, 4, 9]);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the rand 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] for
//! primitive numeric types and [`Rng::gen_range`] over half-open ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! ChaCha12 core of upstream `StdRng`, so streams differ from upstream,
//! but every consumer in this workspace only relies on *seed-determinism*
//! (same seed ⇒ same stream), which holds.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Minimal uniform-source interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values sampleable uniformly from their "standard" domain
/// (`[0, 1)` for floats, the full range for integers).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is ~span/2^64 — irrelevant at the sizes
                // this workspace draws (dataset indices).
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample a value from its standard domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Seeded xoshiro256** generator (stands in for upstream's
    /// ChaCha12-based `StdRng`; see the crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "uniform stream never reached the interval ends");
    }
}

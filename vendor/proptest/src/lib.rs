//! Offline stand-in for `proptest`.
//!
//! Runs each property over `ProptestConfig::cases` pseudo-random inputs
//! drawn from [`strategy::Strategy`] implementations. Supported surface:
//! numeric `Range` strategies, tuples up to arity 6, `Just`,
//! `prop_map`, `prop_flat_map`, `collection::vec`, the `proptest!` test
//! macro, and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros.
//!
//! Differences from upstream: no shrinking (a failure reports the raw
//! case), no persistence of regression seeds (the checked-in
//! `*.proptest-regressions` files are ignored), and a deterministic
//! per-test seed derived from the test name, so failures reproduce
//! across runs.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case generation and the per-test RNG.

    /// Deterministic SplitMix64 stream, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded by hashing `name` (FNV-1a), so each property gets
        /// an independent but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty size range");
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derive a second strategy from each generated value (e.g. draw
        /// a dimension, then draw vectors of that dimension).
        fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            O: Strategy,
            F: Fn(Self::Value) -> O,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
        type Value = O::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always produce a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + r) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Something that names a vector length: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub trait IntoSizeRange {
        /// `(lo, hi)` half-open bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec size range");
        VecStrategy { element, lo, hi }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.lo, self.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-property runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier dataset-building
        // properties in this workspace fast while still varying inputs.
        ProptestConfig { cases: 64 }
    }
}

/// The `PROPTEST_CASES` environment override (mirroring upstream):
/// when set to a valid count it replaces every property's configured
/// case count — interpreted runs (Miri) use it to stay within budget.
#[doc(hidden)]
pub fn cases_from_env(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(configured)
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..$crate::cases_from_env(__config.cases) {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    // The closure lets `prop_assume!` abandon a case
                    // with `return`.
                    #[allow(clippy::redundant_closure_call)]
                    let __ran: bool = (|| { $body true })();
                    let _ = (__case, __ran);
                }
            }
        )*
    };
}

/// Assert a condition inside a property (panics with the case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skip the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_strategy_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        let s = collection::vec(-3i64..7, 2..9);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|x| (-3..7).contains(x)));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = crate::test_runner::TestRng::from_name("compose");
        let s = (0usize..5, 1usize..4).prop_map(|(a, b)| a * 10 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 10 >= 1 && v % 10 < 4 && v / 10 < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn macro_binds_and_asserts(x in 0u32..100, mut v in collection::vec(0.0f32..1.0, 1..5)) {
            v.push(0.5);
            prop_assert!(x < 100);
            prop_assert_eq!(v.last().copied(), Some(0.5));
        }

        #[test]
        fn assume_skips_cases(x in 0i64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}

//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex`/`RwLock` behind parking_lot's poison-free
//! API (`lock()` returns the guard directly). A poisoned lock — a thread
//! panicked while holding it — just hands back the inner data, matching
//! parking_lot's behavior of not tracking poisoning at all.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with the poison-free parking_lot API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (1, 1));
        }
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}

//! Concurrency behaviour: shared indexes must be safe to query from many
//! threads and produce exactly the sequential results — and for the
//! mutable index, racing readers must only ever observe batch-boundary
//! states, never a half-applied mutation batch.

use c2lsh::{C2lshConfig, C2lshIndex, DiskIndex, DynamicIndex, MutableIndex, MutationOp};
use cc_vector::gen::{generate, Distribution};
use cc_vector::gt::Neighbor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn clustered(n: usize, d: usize, seed: u64) -> cc_vector::Dataset {
    generate(Distribution::GaussianMixture { clusters: 12, spread: 0.02, scale: 10.0 }, n, d, seed)
}

#[test]
fn concurrent_queries_match_sequential() {
    let data = Arc::new(clustered(1500, 16, 1));
    let cfg = C2lshConfig::builder().bucket_width(1.0).seed(2).build();
    let index = C2lshIndex::build(&data, &cfg);

    // Sequential reference.
    let expected: Vec<Vec<Neighbor>> =
        (0..32).map(|qi| index.query(data.get(qi * 40), 5).0).collect();

    // 8 threads × 4 queries each, interleaved, against the same index.
    let results: Vec<Vec<Neighbor>> = crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..8 {
            let index = &index;
            let data = Arc::clone(&data);
            handles.push(scope.spawn(move |_| {
                (0..4)
                    .map(|i| {
                        let qi = t * 4 + i;
                        index.query(data.get(qi * 40), 5).0
                    })
                    .collect::<Vec<_>>()
            }));
        }
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    })
    .unwrap();

    assert_eq!(results, expected, "concurrent results diverged from sequential");
}

#[test]
fn batch_query_equals_manual_threads() {
    let data = clustered(1000, 12, 3);
    let cfg = C2lshConfig::builder().bucket_width(1.0).seed(4).build();
    let index = C2lshIndex::build(&data, &cfg);
    let queries = data.slice_rows(0, 24);
    let (batch, agg) = index.query_batch(&queries, 7);
    assert_eq!(agg.queries, 24);
    assert_eq!(agg.t1 + agg.t2 + agg.exhausted, 24);
    for (qi, (nn, _)) in batch.iter().enumerate() {
        assert_eq!(nn, &index.query(queries.get(qi), 7).0, "query {qi}");
    }
}

#[test]
fn disk_index_io_accounting_is_exact_under_concurrency() {
    // Atomic counters must not lose updates: total I/O after N concurrent
    // queries equals the sum of N identical sequential queries.
    let data = clustered(1200, 8, 5);
    let cfg = C2lshConfig::builder().bucket_width(1.0).seed(6).build();
    let disk = DiskIndex::build(&data, &cfg);
    let q = data.get(77).to_vec();

    let (_, one) = disk.query(&q, 5);
    let per_query_tables = one.io.reads - one.candidates_verified as u64;

    let before = disk.page_file().stats();
    crossbeam::scope(|scope| {
        for _ in 0..6 {
            let disk = &disk;
            let q = q.clone();
            scope.spawn(move |_| {
                for _ in 0..5 {
                    let _ = disk.query(&q, 5);
                }
            });
        }
    })
    .unwrap();
    let after = disk.page_file().stats().since(&before);
    assert_eq!(
        after.reads,
        30 * per_query_tables,
        "lost or duplicated I/O counts under concurrency"
    );
}

#[test]
fn queries_racing_mutation_batches_never_see_a_torn_view() {
    // Every batch is exactly {delete oid i, insert a replacement}: two
    // logged ops, so every published snapshot has an even sequence
    // number, a slot count of base_n + batches_applied, and exactly
    // batches_applied tombstones in the base range. A reader observing
    // any other combination caught a half-applied batch — the bug the
    // clone-and-swap snapshot design exists to make impossible.
    const BASE_N: usize = 400;
    const BATCHES: usize = 120;
    let data = clustered(BASE_N, 8, 21);
    let cfg = C2lshConfig::builder().bucket_width(1.0).seed(22).build();
    let index = MutableIndex::ephemeral(DynamicIndex::from_dataset(&data, &cfg));
    let stop = AtomicBool::new(false);

    crossbeam::scope(|s| {
        let index = &index;
        let stop = &stop;
        let data = &data;
        for _ in 0..4 {
            s.spawn(move |_| {
                let mut last_seen = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (snap, seq) = index.snapshot();
                    assert_eq!(seq % 2, 0, "snapshot published mid-batch at seq {seq}");
                    let applied = (seq / 2) as usize;
                    let slots = snap.slots();
                    assert_eq!(slots.len(), BASE_N + applied, "insert visible without its seq");
                    let dead = slots[..BASE_N].iter().filter(|slot| slot.is_none()).count();
                    assert_eq!(
                        dead, applied,
                        "torn view: {dead} deletes visible after {applied} whole batches"
                    );
                    assert!(seq >= last_seen, "snapshots went backwards");
                    last_seen = seq;
                    // The query path must stamp the same invariant.
                    let (_, stats) = index.query(data.get(BASE_N - 1), 3);
                    assert_eq!(stats.snapshot_seq % 2, 0, "query served mid-batch");
                }
            });
        }
        for i in 0..BATCHES {
            let replacement: Vec<f32> = (0..8).map(|j| 1000.0 + (i * 8 + j) as f32).collect();
            let ops = [
                MutationOp::Delete { oid: i as u32 },
                MutationOp::Insert { vector: replacement, meta: Default::default() },
            ];
            let (acks, _) = index.apply_batch(&ops).unwrap();
            assert_eq!(acks.len(), 2);
        }
        stop.store(true, Ordering::Release);
    })
    .unwrap();

    assert_eq!(index.last_seq(), (BATCHES * 2) as u64);
    assert_eq!(index.len(), BASE_N, "each batch swapped one object for one");
}

//! Property-based tests over the public APIs of the whole workspace.

use c2lsh::rehash::{radius_at, window};
use cc_vector::dataset::Dataset;
use cc_vector::dist::{euclidean, euclidean_sq};
use cc_vector::gt::{knn_linear, Neighbor};
use cc_vector::metrics::{overall_ratio, recall};
use proptest::prelude::*;

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #[test]
    fn euclidean_is_a_metric(a in vec_f32(8), b in vec_f32(8), c in vec_f32(8)) {
        let ab = euclidean(&a, &b);
        let ba = euclidean(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-6, "symmetry");
        prop_assert!(ab >= 0.0, "non-negativity");
        let ac = euclidean(&a, &c);
        let cb = euclidean(&c, &b);
        prop_assert!(ab <= ac + cb + 1e-3, "triangle inequality");
        prop_assert!(euclidean(&a, &a) == 0.0, "identity");
    }

    #[test]
    fn euclidean_sq_matches_naive(a in vec_f32(13), b in vec_f32(13)) {
        let naive: f64 = a.iter().zip(&b)
            .map(|(&x, &y)| { let d = x as f64 - y as f64; d * d }).sum();
        let fast = euclidean_sq(&a, &b);
        prop_assert!((naive - fast).abs() <= 1e-3 * (1.0 + naive));
    }

    #[test]
    fn knn_is_sorted_prefix_of_kplus1(rows in proptest::collection::vec(vec_f32(4), 2..60), q in vec_f32(4)) {
        let ds = Dataset::from_rows(&rows);
        let k = rows.len() / 2 + 1;
        let nn_k = knn_linear(&ds, &q, k);
        let nn_k1 = knn_linear(&ds, &q, k + 1);
        prop_assert_eq!(&nn_k[..], &nn_k1[..k.min(rows.len())], "k-NN must be a prefix of (k+1)-NN");
        for w in nn_k.windows(2) {
            prop_assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn recall_and_ratio_are_bounded(
        truth_d in proptest::collection::vec(0.01f64..100.0, 1..20),
        extra in 0.0f64..50.0,
    ) {
        // Build a sorted truth list and a method result that inflates
        // each distance; recall in [0,1], ratio >= 1.
        let mut td = truth_d.clone();
        td.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let truth: Vec<Neighbor> = td.iter().enumerate()
            .map(|(i, &d)| Neighbor::new(i as u32, d)).collect();
        let result: Vec<Neighbor> = td.iter().enumerate()
            .map(|(i, &d)| Neighbor::new(1000 + i as u32, d + extra)).collect();
        let r = recall(&result, &truth);
        prop_assert!((0.0..=1.0).contains(&r));
        let ratio = overall_ratio(&result, &truth);
        prop_assert!(ratio >= 1.0 - 1e-12, "ratio {ratio} below 1");
        prop_assert!(ratio.is_finite());
    }

    #[test]
    fn rehash_windows_nest_and_cover(bucket in -1_000_000i64..1_000_000, level in 0u32..20, c in 2u32..5) {
        let r1 = radius_at(c, level);
        let r2 = radius_at(c, level + 1);
        let (lo1, hi1) = window(bucket, r1);
        let (lo2, hi2) = window(bucket, r2);
        prop_assert!((lo1..hi1).contains(&bucket), "window covers its bucket");
        prop_assert!(lo2 <= lo1 && hi2 >= hi1, "windows nest");
        prop_assert_eq!(hi1 - lo1, r1, "window width = radius");
        prop_assert_eq!(hi2 - lo2, r2);
    }

    #[test]
    fn dataset_slice_roundtrip(rows in proptest::collection::vec(vec_f32(3), 1..30), split in 0usize..30) {
        let ds = Dataset::from_rows(&rows);
        let split = split.min(rows.len());
        let left = ds.slice_rows(0, split);
        let right = ds.slice_rows(split, rows.len());
        prop_assert_eq!(left.len() + right.len(), ds.len());
        for i in 0..split {
            prop_assert_eq!(left.get(i), ds.get(i));
        }
        for i in split..rows.len() {
            prop_assert_eq!(right.get(i - split), ds.get(i));
        }
    }

    #[test]
    fn io_roundtrips_any_dataset(rows in proptest::collection::vec(vec_f32(5), 1..40)) {
        let ds = Dataset::from_rows(&rows);
        let f = cc_vector::io::from_fvecs(&cc_vector::io::to_fvecs(&ds)).unwrap();
        prop_assert_eq!(&f, &ds);
        let c = cc_vector::io::from_ccv1(&cc_vector::io::to_ccv1(&ds)).unwrap();
        prop_assert_eq!(&c, &ds);
    }

    #[test]
    fn collision_probability_in_unit_interval(s in 0.0f64..1000.0, w in 0.01f64..100.0) {
        let p = cc_math::pstable::collision_probability(s, w);
        prop_assert!((0.0..=1.0).contains(&p));
        let pq = qalsh::qalsh_collision_probability(s, w);
        prop_assert!((0.0..=1.0).contains(&pq));
        // Query-aware family dominates the offset family at equal width.
        prop_assert!(pq >= p - 1e-12, "qalsh p {pq} < pstable p {p}");
    }
}

//! Theory-facing integration tests: the probabilistic machinery delivers
//! what the Hoeffding analysis promises (with wide empirical margins).

use c2lsh::{Beta, C2lshConfig, C2lshIndex};
use cc_math::pstable::collision_probability;
use cc_vector::gen::{generate, Distribution};
use qalsh::{Qalsh, QalshConfig};

fn clustered(n: usize, d: usize, seed: u64) -> cc_vector::Dataset {
    generate(Distribution::GaussianMixture { clusters: 20, spread: 0.015, scale: 10.0 }, n, d, seed)
}

#[test]
fn success_probability_well_above_half_minus_one_over_e() {
    // Theorem: P[c-ANN correct] >= 1/2 - 1/e ~= 0.132. Empirically the
    // bound is loose; require >= 0.6 over 50 queries to keep the test
    // robust yet meaningful.
    let data = clustered(3_000, 16, 1);
    let queries = clustered(3_050, 16, 1);
    let cfg = C2lshConfig::builder().bucket_width(1.0).seed(2).build();
    let idx = C2lshIndex::build(&data, &cfg);
    let mut ok = 0;
    let nq = 50;
    for qi in 0..nq {
        let q = queries.get(3_000 + qi);
        let truth = cc_vector::gt::knn_linear(&data, q, 1);
        let (got, _) = idx.query(q, 1);
        if got[0].dist <= 2.0 * truth[0].dist.max(1e-9) {
            ok += 1;
        }
    }
    let rate = ok as f64 / nq as f64;
    assert!(rate >= 0.6, "empirical success rate {rate} too low");
    assert!(rate >= 0.5 - (-1.0f64).exp(), "below the theoretical bound");
}

#[test]
fn t2_budget_holds_for_both_counting_schemes() {
    let data = clustered(5_000, 16, 3);
    let k = 10;
    let c_cfg = C2lshConfig::builder().bucket_width(1.0).beta(Beta::Count(50)).seed(4).build();
    let c2 = C2lshIndex::build(&data, &c_cfg);
    let qa =
        Qalsh::build(&data, QalshConfig { w: 1.2, beta_count: 50, seed: 4, ..Default::default() });
    for qi in [0usize, 123, 4567] {
        let q = data.get(qi);
        let (_, s_c2) = c2.query(q, k);
        let (_, s_qa) = qa.query(q, k);
        assert!(s_c2.candidates_verified <= k + c2.params().beta_n);
        // QALSH resolves beta against n the same way.
        assert!(s_qa.candidates_verified <= k + 50 + 1);
    }
}

#[test]
fn derived_m_matches_hoeffding_feasibility() {
    // The implementation's (m, l) must satisfy both Hoeffding bounds.
    let cfg = C2lshConfig::default();
    for n in [10_000usize, 100_000, 1_000_000] {
        let p = c2lsh::FullParams::derive(n, &cfg);
        let beta = 100.0 / n as f64;
        assert!(
            cc_math::hoeffding::satisfies_bounds(
                p.derived.p1,
                p.derived.p2,
                cfg.delta,
                beta,
                p.m,
                p.l
            ),
            "(m={}, l={}) infeasible at n={n}",
            p.m,
            p.l
        );
    }
}

#[test]
fn virtual_rehashing_collision_prob_matches_scaled_width() {
    // Level-R collisions must behave like a width-wR function: empirical
    // check through the public hashing API at two levels.
    let d = 24;
    let m = 4_000;
    let w = 2.184;
    let cfg = C2lshConfig::builder().bucket_width(w).seed(5).build();
    let family = c2lsh::HashFamily::generate(m, d, &cfg);
    let o = vec![0.0f32; d];
    let mut q = vec![0.0f32; d];
    q[0] = 2.0;
    for r in [1i64, 2, 4] {
        let emp = family
            .iter()
            .filter(|h| h.bucket(&o).div_euclid(r) == h.bucket(&q).div_euclid(r))
            .count() as f64
            / m as f64;
        let theory = collision_probability(2.0, w * r as f64);
        assert!((emp - theory).abs() < 0.04, "R={r}: empirical {emp} vs theory {theory}");
    }
}

#[test]
fn results_never_contain_duplicates_or_unsorted_output() {
    let data = clustered(2_000, 12, 6);
    let cfg = C2lshConfig::builder().bucket_width(1.0).seed(7).build();
    let idx = C2lshIndex::build(&data, &cfg);
    let qa = Qalsh::build(&data, QalshConfig { w: 1.2, seed: 7, ..Default::default() });
    for qi in 0..20 {
        let q = data.get(qi * 90);
        for nn in [idx.query(q, 25).0, qa.query(q, 25).0] {
            for w2 in nn.windows(2) {
                assert!(w2[0].dist <= w2[1].dist, "unsorted result");
            }
            let mut ids: Vec<u32> = nn.iter().map(|n| n.id).collect();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), before, "duplicate ids");
        }
    }
}

//! Cross-method integration tests: every index answers the same workload
//! coherently.

use c2lsh::{C2lshConfig, C2lshIndex, DiskIndex};
use cc_baselines::e2lsh::{E2lsh, E2lshConfig};
use cc_baselines::linear::LinearScan;
use cc_baselines::lsb::{LsbConfig, LsbForest};
use cc_vector::gen::{generate, Distribution};
use cc_vector::metrics::{mean_ratio, mean_recall};
use cc_vector::workload::Workload;
use qalsh::{Qalsh, QalshConfig};

fn workload() -> Workload {
    let all = generate(
        Distribution::GaussianMixture { clusters: 20, spread: 0.015, scale: 10.0 },
        2_030,
        24,
        77,
    );
    let data = all.slice_rows(0, 2_000);
    let queries = all.slice_rows(2_000, 2_030);
    Workload::from_parts("it", data, queries, 10)
}

#[test]
fn all_methods_find_planted_exact_matches() {
    let w = workload();
    let c_cfg = C2lshConfig::builder().bucket_width(1.0).seed(5).build();
    let c2 = C2lshIndex::build(&w.data, &c_cfg);
    let c2d = DiskIndex::build(&w.data, &c_cfg);
    let qa = Qalsh::build(&w.data, QalshConfig { w: 1.2, seed: 5, ..Default::default() });
    let e2 = E2lsh::build(&w.data, E2lshConfig { k_funcs: 6, l_tables: 48, w: 1.0, seed: 5 });
    let lsb = LsbForest::build(
        &w.data,
        LsbConfig { w: 0.5, budget: 200, quality_stop: false, seed: 5, ..Default::default() },
    );

    for probe in [0usize, 500, 1999] {
        let q = w.data.get(probe);
        assert_eq!(c2.query(q, 1).0[0].id as usize, probe, "c2lsh mem");
        assert_eq!(c2d.query(q, 1).0[0].id as usize, probe, "c2lsh disk");
        assert_eq!(qa.query(q, 1).0[0].id as usize, probe, "qalsh");
        assert_eq!(e2.query(q, 1).0[0].id as usize, probe, "e2lsh");
        assert_eq!(lsb.query(q, 1).0[0].id as usize, probe, "lsb");
    }
}

#[test]
fn memory_and_disk_c2lsh_agree_exactly() {
    let w = workload();
    let cfg = C2lshConfig::builder().bucket_width(1.0).seed(6).build();
    let mem = C2lshIndex::build(&w.data, &cfg);
    let disk = DiskIndex::build(&w.data, &cfg);
    for q in w.queries.iter() {
        assert_eq!(mem.query(q, 10).0, disk.query(q, 10).0);
    }
}

#[test]
fn collision_counting_methods_beat_static_concat_at_equal_budget() {
    // The paper's core claim (ablation A2): at an equal hash budget,
    // dynamic collision counting extracts more recall.
    let w = workload();
    let cfg = C2lshConfig::builder().bucket_width(1.0).seed(8).build();
    let c2 = C2lshIndex::build(&w.data, &cfg);
    let m = c2.params().m;
    let e2 = E2lsh::build(
        &w.data,
        E2lshConfig { k_funcs: 8, l_tables: (m / 8).max(1), w: 1.0, seed: 8 },
    );

    let truth = w.truth_at(10);
    let c2_res: Vec<_> = w.queries.iter().map(|q| c2.query(q, 10).0).collect();
    let e2_res: Vec<_> = w.queries.iter().map(|q| e2.query(q, 10).0).collect();
    let r_c2 = mean_recall(&c2_res, &truth);
    let r_e2 = mean_recall(&e2_res, &truth);
    assert!(
        r_c2 > r_e2,
        "dynamic counting recall {r_c2} should beat static concat {r_e2} at equal budget"
    );
}

#[test]
fn approximate_methods_stay_within_c_bound_on_ratio() {
    let w = workload();
    let truth = w.truth_at(10);
    let cfg = C2lshConfig::builder().bucket_width(1.0).seed(9).build();
    let c2 = C2lshIndex::build(&w.data, &cfg);
    let qa = Qalsh::build(&w.data, QalshConfig { w: 1.2, seed: 9, ..Default::default() });

    let c2_res: Vec<_> = w.queries.iter().map(|q| c2.query(q, 10).0).collect();
    let qa_res: Vec<_> = w.queries.iter().map(|q| qa.query(q, 10).0).collect();
    // c = 2 quality bound, with margin: mean ratio far below 2.
    assert!(mean_ratio(&c2_res, &truth) < 1.5);
    assert!(mean_ratio(&qa_res, &truth) < 1.5);
}

#[test]
fn linear_scan_is_the_quality_ceiling() {
    let w = workload();
    let lin = LinearScan::new(&w.data);
    let truth = w.truth_at(10);
    for (qi, q) in w.queries.iter().enumerate() {
        let (nn, _) = lin.query(q, 10);
        assert_eq!(nn, truth[qi], "query {qi}");
    }
}

// ---------------------------------------------------------------------------
// Engine-unification guarantees: all in-repo backends drive the same
// search loop, so they must agree bit-for-bit — on the neighbors AND on
// which terminating condition fired.
// ---------------------------------------------------------------------------

mod engine_equivalence {
    use c2lsh::{C2lshConfig, C2lshIndex, DiskIndex, DynamicIndex};
    use cc_vector::dataset::Dataset;
    use proptest::prelude::*;

    fn coord() -> impl Strategy<Value = f32> {
        -50.0f32..50.0
    }

    fn rows() -> impl Strategy<Value = Vec<Vec<f32>>> {
        proptest::collection::vec(proptest::collection::vec(coord(), 6), 20..120)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn backends_agree_on_neighbors_and_termination(
            rows in rows(),
            qi in 0usize..1000,
            k in 1usize..8,
            seed in 0u64..64,
        ) {
            let data = Dataset::from_rows(&rows);
            let qi = qi % data.len();
            let cfg = C2lshConfig::builder().bucket_width(1.0).seed(seed).build();
            let mem = C2lshIndex::build(&data, &cfg);
            let disk = DiskIndex::build(&data, &cfg);
            let dynm = DynamicIndex::from_dataset(&data, &cfg);
            let q = data.get(qi).to_vec();

            let (m_nn, m_s) = mem.query(&q, k);
            let (d_nn, d_s) = disk.query(&q, k);
            let (y_nn, y_s) = dynm.query(&q, k);

            prop_assert_eq!(&m_nn, &d_nn, "mem vs disk neighbors");
            prop_assert_eq!(&m_nn, &y_nn, "mem vs dynamic neighbors");
            prop_assert_eq!(m_s.terminated_by, d_s.terminated_by, "mem vs disk termination");
            prop_assert_eq!(m_s.terminated_by, y_s.terminated_by, "mem vs dynamic termination");
            // Identical loop => identical counting work too.
            prop_assert_eq!(m_s.rounds, d_s.rounds);
            prop_assert_eq!(m_s.collisions_counted, d_s.collisions_counted);
            prop_assert_eq!(m_s.candidates_verified, y_s.candidates_verified);
        }
    }
}

// ---------------------------------------------------------------------------
// Filtered search: with metadata attached, a query carrying a predicate
// must serve exactly the unfiltered ranking with non-matching points
// struck out — on every backend.
// ---------------------------------------------------------------------------

mod filtered_equivalence {
    use c2lsh::engine::SearchOptions;
    use c2lsh::{C2lshConfig, C2lshIndex, DiskIndex, DynamicIndex, PointMeta, Predicate};
    use cc_vector::dataset::Dataset;
    use cc_vector::gt::Neighbor;
    use proptest::prelude::*;
    use qalsh::{Qalsh, QalshConfig};

    fn coord() -> impl Strategy<Value = f32> {
        -50.0f32..50.0
    }

    fn rows() -> impl Strategy<Value = Vec<Vec<f32>>> {
        proptest::collection::vec(proptest::collection::vec(coord(), 6), 20..100)
    }

    /// Run one (unfiltered, filtered) query pair and demand the
    /// post-filter identity, bit-exact on ids and distances. With
    /// k = n, T1 cannot fire before full coverage and the default β
    /// budget (k + 100 > n) keeps T2 unreachable, so both runs exhaust
    /// their windows and rank everything the predicate admits.
    fn assert_post_filter_identity(
        label: &str,
        metas: &[PointMeta],
        pred: Predicate,
        full: &[Neighbor],
        filtered: &[Neighbor],
        filtered_count: usize,
    ) {
        let expected: Vec<Neighbor> =
            full.iter().filter(|nb| pred.matches(metas[nb.id as usize])).cloned().collect();
        prop_assert_eq!(filtered, &expected[..], "{} disagrees with post-filtering", label);
        let rejected = metas.len() - expected.len();
        prop_assert_eq!(filtered_count, rejected, "{} rejection count", label);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn filtered_search_equals_brute_force_post_filtering(
            rows in rows(),
            qi in 0usize..1000,
            seed in 0u64..64,
            labels in 2u32..5,
            want in 0u32..5,
        ) {
            let n = rows.len();
            let data = Dataset::from_rows(&rows);
            let q = data.get(qi % n).to_vec();
            let want = want % labels;
            let metas: Vec<PointMeta> =
                (0..n as u32).map(|i| PointMeta::new(1 << (i % 7), i % labels)).collect();
            let pred = Predicate::label(want).and_tag_any(u64::MAX);
            let opts = SearchOptions { filter: Some(pred), ..Default::default() };
            let plain = SearchOptions::default();
            let cfg = C2lshConfig::builder().bucket_width(1.0).seed(seed).build();

            let mem = C2lshIndex::build(&data, &cfg).with_meta(metas.clone());
            let (full, _) = mem.query_with(&q, n, &plain);
            let (flt, fs) = mem.query_with(&q, n, &opts);
            assert_post_filter_identity("mem", &metas, pred, &full, &flt, fs.candidates_filtered);

            let disk = DiskIndex::build(&data, &cfg).with_meta(metas.clone());
            let (full, _) = disk.query_with(&q, n, &plain);
            let (flt, fs) = disk.query_with(&q, n, &opts);
            assert_post_filter_identity("disk", &metas, pred, &full, &flt, fs.candidates_filtered);

            let mut dynm = DynamicIndex::new(6, n, &cfg);
            for (i, v) in data.iter().enumerate() {
                dynm.insert_with_meta(v.to_vec(), metas[i]);
            }
            let (full, _) = dynm.query_with(&q, n, &plain);
            let (flt, fs) = dynm.query_with(&q, n, &opts);
            assert_post_filter_identity("dyn", &metas, pred, &full, &flt, fs.candidates_filtered);

            let mut qa = Qalsh::build(&data, QalshConfig { w: 1.2, seed, ..Default::default() });
            qa.set_meta(metas.clone());
            let (full, _) = qa.query_with(&q, n, &plain);
            let (flt, fs) = qa.query_with(&q, n, &opts);
            assert_post_filter_identity("qalsh", &metas, pred, &full, &flt, fs.candidates_filtered);
        }
    }
}

#[test]
fn candidate_budget_larger_than_dataset_is_safe_everywhere() {
    // Default β is an absolute count (100), so on a tiny dataset
    // k + β·n exceeds n: the T2 budget can never fill, every backend
    // must fall through to T1/exhaustion with at most n verifications.
    let data = generate(
        Distribution::GaussianMixture { clusters: 3, spread: 0.05, scale: 5.0 },
        30,
        8,
        123,
    );
    let cfg = C2lshConfig::builder().bucket_width(1.0).seed(11).build();
    let k = 12;
    assert!(k + C2lshIndex::build(&data, &cfg).params().beta_n > data.len());

    let mem = C2lshIndex::build(&data, &cfg);
    let disk = DiskIndex::build(&data, &cfg);
    let dynm = c2lsh::DynamicIndex::from_dataset(&data, &cfg);
    let q = data.get(0).to_vec();
    let (m_nn, m_s) = mem.query(&q, k);
    let (d_nn, d_s) = disk.query(&q, k);
    let (y_nn, y_s) = dynm.query(&q, k);
    for s in [&m_s, &d_s, &y_s] {
        assert!(s.candidates_verified <= data.len());
        assert_ne!(
            s.terminated_by,
            c2lsh::Termination::T2CandidateBudget,
            "budget exceeding n must be unreachable"
        );
    }
    assert_eq!(m_nn, d_nn);
    assert_eq!(m_nn, y_nn);
    assert_eq!(m_nn.len(), k);
}

#[test]
fn mutated_dynamic_index_matches_fresh_build_over_final_point_set() {
    // The paper's update story, end to end: an index that lived through
    // an arbitrary insert/delete history must answer exactly like one
    // built from scratch over the surviving points. Ids differ (the
    // mutated index keeps its original oids, the fresh one assigns
    // compact ranks), but because deletion preserves per-bucket order,
    // the rank map is order-preserving and everything else — distances,
    // per-rank correspondence, termination condition — is bit-identical.
    use c2lsh::DynamicIndex;

    let data = generate(
        Distribution::GaussianMixture { clusters: 12, spread: 0.02, scale: 10.0 },
        600,
        8,
        31,
    );
    let extra = generate(
        Distribution::GaussianMixture { clusters: 12, spread: 0.02, scale: 10.0 },
        150,
        8,
        32,
    );
    let cfg = C2lshConfig::builder().bucket_width(1.0).seed(31).build();
    let mut live = DynamicIndex::from_dataset(&data, &cfg);
    for (i, v) in extra.iter().enumerate() {
        live.insert(v.to_vec());
        // Interleave deletes; `i * 7 % 600` revisits ids, so some are
        // misses — they must be harmless no-ops.
        if i % 2 == 0 {
            live.delete((i * 7 % 600) as u32);
        }
    }

    let survivors: Vec<(u32, Vec<f32>)> = live
        .slots()
        .iter()
        .enumerate()
        .filter_map(|(oid, slot)| slot.as_ref().map(|v| (oid as u32, v.clone())))
        .collect();
    let mut fresh = DynamicIndex::new(live.dim(), live.expected_n(), &cfg);
    for (_, v) in &survivors {
        fresh.insert(v.clone());
    }
    assert_eq!(fresh.len(), live.len());

    for qi in [0usize, 100, 299, 599] {
        let q = data.get(qi);
        for k in [1usize, 5, 10] {
            let (live_nn, live_stats) = live.query(q, k);
            let (fresh_nn, fresh_stats) = fresh.query(q, k);
            assert_eq!(live_nn.len(), fresh_nn.len(), "query {qi} k {k}");
            for (l, f) in live_nn.iter().zip(&fresh_nn) {
                assert_eq!(l.dist, f.dist, "query {qi} k {k}");
                let rank = survivors
                    .iter()
                    .position(|(oid, _)| *oid == l.id)
                    .expect("result id must be a survivor");
                assert_eq!(f.id as usize, rank, "order-preserving id map, query {qi}");
            }
            assert_eq!(live_stats.terminated_by, fresh_stats.terminated_by);
            assert_eq!(live_stats.candidates_verified, fresh_stats.candidates_verified);
        }
    }
}

#[test]
fn extreme_magnitude_coordinates_sort_totally() {
    // Candidate ranking uses total_cmp: huge, tiny-subnormal and zero
    // distances must order deterministically without panicking.
    let rows: Vec<Vec<f32>> = vec![
        vec![0.0, 0.0, 0.0, 0.0],
        vec![1.0e15, 0.0, 0.0, 0.0],
        vec![-1.0e15, 0.0, 0.0, 0.0],
        vec![1.0e-40, 0.0, 0.0, 0.0], // subnormal f32
        vec![-1.0e-40, 1.0e-40, 0.0, 0.0],
        vec![3.0e14, -3.0e14, 3.0e14, -3.0e14],
        vec![0.5, 0.5, 0.5, 0.5],
        vec![-0.0, 0.0, -0.0, 0.0], // negative zero coordinates
    ];
    let data = cc_vector::Dataset::from_rows(&rows);
    let cfg = C2lshConfig::builder().bucket_width(1.0).seed(3).build();
    let mem = C2lshIndex::build(&data, &cfg);
    let dynm = c2lsh::DynamicIndex::from_dataset(&data, &cfg);
    let q = vec![0.0f32; 4];
    for nn in [mem.query(&q, rows.len()).0, dynm.query(&q, rows.len()).0] {
        assert_eq!(nn.len(), rows.len(), "every object verified and returned");
        for w in nn.windows(2) {
            assert!(
                w[0].dist < w[1].dist || (w[0].dist == w[1].dist && w[0].id < w[1].id),
                "strict total order violated: {w:?}"
            );
        }
        assert_eq!(nn[0].id, 0, "exact match first");
        // Ground truth agrees under the same total order.
        let gt = cc_vector::gt::knn_linear(&data, &q, rows.len());
        assert_eq!(nn, gt);
    }
}

//! Cross-method integration tests: every index answers the same workload
//! coherently.

use c2lsh::{C2lshConfig, C2lshIndex, DiskIndex};
use cc_baselines::e2lsh::{E2lsh, E2lshConfig};
use cc_baselines::linear::LinearScan;
use cc_baselines::lsb::{LsbConfig, LsbForest};
use cc_vector::gen::{generate, Distribution};
use cc_vector::metrics::{mean_ratio, mean_recall};
use cc_vector::workload::Workload;
use qalsh::{Qalsh, QalshConfig};

fn workload() -> Workload {
    let all = generate(
        Distribution::GaussianMixture { clusters: 20, spread: 0.015, scale: 10.0 },
        2_030,
        24,
        77,
    );
    let data = all.slice_rows(0, 2_000);
    let queries = all.slice_rows(2_000, 2_030);
    Workload::from_parts("it", data, queries, 10)
}

#[test]
fn all_methods_find_planted_exact_matches() {
    let w = workload();
    let c_cfg = C2lshConfig::builder().bucket_width(1.0).seed(5).build();
    let c2 = C2lshIndex::build(&w.data, &c_cfg);
    let c2d = DiskIndex::build(&w.data, &c_cfg);
    let qa = Qalsh::build(&w.data, QalshConfig { w: 1.2, seed: 5, ..Default::default() });
    let e2 = E2lsh::build(&w.data, E2lshConfig { k_funcs: 6, l_tables: 48, w: 1.0, seed: 5 });
    let lsb = LsbForest::build(
        &w.data,
        LsbConfig { w: 0.5, budget: 200, quality_stop: false, seed: 5, ..Default::default() },
    );

    for probe in [0usize, 500, 1999] {
        let q = w.data.get(probe);
        assert_eq!(c2.query(q, 1).0[0].id as usize, probe, "c2lsh mem");
        assert_eq!(c2d.query(q, 1).0[0].id as usize, probe, "c2lsh disk");
        assert_eq!(qa.query(q, 1).0[0].id as usize, probe, "qalsh");
        assert_eq!(e2.query(q, 1).0[0].id as usize, probe, "e2lsh");
        assert_eq!(lsb.query(q, 1).0[0].id as usize, probe, "lsb");
    }
}

#[test]
fn memory_and_disk_c2lsh_agree_exactly() {
    let w = workload();
    let cfg = C2lshConfig::builder().bucket_width(1.0).seed(6).build();
    let mem = C2lshIndex::build(&w.data, &cfg);
    let disk = DiskIndex::build(&w.data, &cfg);
    for q in w.queries.iter() {
        assert_eq!(mem.query(q, 10).0, disk.query(q, 10).0);
    }
}

#[test]
fn collision_counting_methods_beat_static_concat_at_equal_budget() {
    // The paper's core claim (ablation A2): at an equal hash budget,
    // dynamic collision counting extracts more recall.
    let w = workload();
    let cfg = C2lshConfig::builder().bucket_width(1.0).seed(8).build();
    let c2 = C2lshIndex::build(&w.data, &cfg);
    let m = c2.params().m;
    let e2 = E2lsh::build(
        &w.data,
        E2lshConfig { k_funcs: 8, l_tables: (m / 8).max(1), w: 1.0, seed: 8 },
    );

    let truth = w.truth_at(10);
    let c2_res: Vec<_> = w.queries.iter().map(|q| c2.query(q, 10).0).collect();
    let e2_res: Vec<_> = w.queries.iter().map(|q| e2.query(q, 10).0).collect();
    let r_c2 = mean_recall(&c2_res, &truth);
    let r_e2 = mean_recall(&e2_res, &truth);
    assert!(
        r_c2 > r_e2,
        "dynamic counting recall {r_c2} should beat static concat {r_e2} at equal budget"
    );
}

#[test]
fn approximate_methods_stay_within_c_bound_on_ratio() {
    let w = workload();
    let truth = w.truth_at(10);
    let cfg = C2lshConfig::builder().bucket_width(1.0).seed(9).build();
    let c2 = C2lshIndex::build(&w.data, &cfg);
    let qa = Qalsh::build(&w.data, QalshConfig { w: 1.2, seed: 9, ..Default::default() });

    let c2_res: Vec<_> = w.queries.iter().map(|q| c2.query(q, 10).0).collect();
    let qa_res: Vec<_> = w.queries.iter().map(|q| qa.query(q, 10).0).collect();
    // c = 2 quality bound, with margin: mean ratio far below 2.
    assert!(mean_ratio(&c2_res, &truth) < 1.5);
    assert!(mean_ratio(&qa_res, &truth) < 1.5);
}

#[test]
fn linear_scan_is_the_quality_ceiling() {
    let w = workload();
    let lin = LinearScan::new(&w.data);
    let truth = w.truth_at(10);
    for (qi, q) in w.queries.iter().enumerate() {
        let (nn, _) = lin.query(q, 10);
        assert_eq!(nn, truth[qi], "query {qi}");
    }
}

//! # c2lsh-repro — umbrella crate
//!
//! Re-exports the whole reproduction of *"Locality-Sensitive Hashing
//! Scheme Based on Dynamic Collision Counting"* (C2LSH, SIGMOD 2012) so
//! that examples, integration tests and downstream users can depend on a
//! single crate.
//!
//! * [`c2lsh`] — the paper's contribution: virtual-rehashing index +
//!   dynamic collision counting query engine.
//! * [`cc_math`] — numerics (Gaussian CDF, p-stable collision
//!   probabilities, Hoeffding parameter solver).
//! * [`cc_vector`] — datasets, distances, generators, ground truth.
//! * [`cc_storage`] — paged storage, buffer pool, B+-tree (disk mode).
//! * [`cc_baselines`] — linear scan, E2LSH, rigorous-LSH, LSB-forest.
//! * [`qalsh`] — the query-aware follow-up, built on the same framework.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![forbid(unsafe_code)]

pub use c2lsh;
pub use cc_baselines;
pub use cc_math;
pub use cc_storage;
pub use cc_vector;
pub use qalsh;

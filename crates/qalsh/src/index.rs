//! The QALSH index.
//!
//! One B+-tree per hash function, keyed by the raw projection `a·o`.
//! A query computes its own projections and positions one bidirectional
//! cursor pair per tree; the search itself runs in the shared
//! [`c2lsh::engine`] loop: at radius `R = c^level` the collision window
//! of tree `i` is `[a_i·q − w·R/2, a_i·q + w·R/2]`, rounds expand the
//! windows ([`TableStore::expand`]), the engine counts newly covered
//! objects, verifies those reaching the collision threshold `l`, and
//! stops on the same T1/T2 conditions as C2LSH.

use crate::params::derive;
use c2lsh::engine::QueryScratch;
use c2lsh::engine::{self, SearchOptions, SearchParams, TableStore};
use c2lsh::meta::PointMeta;
use c2lsh::stats::{BatchStats, QueryStats};
use cc_math::hoeffding::DerivedParams;
use cc_storage::bptree::{BPlusTree, Cursor};
use cc_vector::dataset::Dataset;
use cc_vector::gt::Neighbor;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;

/// Totally ordered `f64` key (orders by `total_cmp`; projections are
/// always finite here, so this matches numeric order).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// QALSH configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QalshConfig {
    /// Integer approximation ratio `c ≥ 2`.
    pub c: u32,
    /// Window width `w` (radius-1 collision window is `w/2` each side).
    pub w: f64,
    /// Failure budget `δ ∈ (0, 1/2)`.
    pub delta: f64,
    /// Geometric base radius the theory's `R = 1` maps to (data units).
    /// Keep at 1.0 for NN-normalized data; for raw data pass the "near"
    /// distance and scale `w` by the same factor.
    pub base_radius: f64,
    /// False-positive budget as an absolute count (`β = count/n`).
    pub beta_count: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QalshConfig {
    fn default() -> Self {
        Self {
            c: 2,
            w: crate::params::optimal_width(2),
            delta: (-1.0f64).exp(),
            base_radius: 1.0,
            beta_count: 100,
            seed: 0,
        }
    }
}

/// The QALSH index over a borrowed dataset.
pub struct Qalsh<'d> {
    data: &'d Dataset,
    config: QalshConfig,
    derived: DerivedParams,
    m: usize,
    l: u32,
    beta_n: usize,
    /// `m` projection vectors.
    proj: Vec<Vec<f32>>,
    /// One B+-tree per projection, keyed by `a·o`.
    trees: Vec<BPlusTree<OrdF64, u32>>,
    /// Per-point attribute payloads; empty = every point defaults.
    metas: Vec<PointMeta>,
    scratch: Mutex<QueryScratch>,
    verify_pages: u64,
}

impl<'d> Qalsh<'d> {
    /// Build the index: derive `(m, l)`, draw `m` projections, bulk-load
    /// `m` B+-trees.
    ///
    /// # Panics
    /// Panics on empty data or invalid config (`c < 2`, `w ≤ 0`, …).
    pub fn build(data: &'d Dataset, config: QalshConfig) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(config.c >= 2, "c must be >= 2");
        assert!(config.w > 0.0, "w must be positive");
        assert!(config.base_radius > 0.0, "base_radius must be positive");
        let n = data.len();
        let beta = (config.beta_count as f64 / n as f64).clamp(1.0 / (10.0 * n as f64), 0.999);
        // p depends only on s/w, so deriving at base radius r is the
        // same as deriving at radius 1 with width w/r.
        let derived = derive(config.c, config.w / config.base_radius, config.delta, beta);
        let m = derived.m;
        let l = derived.l as u32;
        let beta_n = ((beta * n as f64).ceil() as usize).max(1);

        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9a15_4aa1);
        let mut normal = cc_vector::gen::NormalSampler::new();
        let d = data.dim();
        let proj: Vec<Vec<f32>> =
            (0..m).map(|_| (0..d).map(|_| normal.sample(&mut rng) as f32).collect()).collect();
        // Build-time keys and query-time probes must use the same
        // projection schedule; both go through the dispatched kernel
        // (bit-identical across kernels, so cross-kernel index/query
        // mixes still probe exactly).
        let kd = c2lsh::kernels::dispatch();
        let trees: Vec<BPlusTree<OrdF64, u32>> = proj
            .iter()
            .map(|a| {
                let mut pairs: Vec<(OrdF64, u32)> = data
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (OrdF64(kd.dot(a, v)), i as u32))
                    .collect();
                pairs.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.cmp(&y.1)));
                let t = BPlusTree::bulk_load(&pairs);
                t.reset_io();
                t
            })
            .collect();
        let verify_pages = (d as u64 * 4).div_ceil(4096).max(1);
        Self {
            data,
            config,
            derived,
            m,
            l,
            beta_n,
            proj,
            trees,
            metas: Vec::new(),
            scratch: Mutex::new(QueryScratch::new(n)),
            verify_pages,
        }
    }

    /// Attach per-point metadata (one entry per indexed point, in id
    /// order) for filtered queries via `SearchOptions::filter`.
    ///
    /// # Panics
    /// Panics when `metas.len() != data.len()`.
    pub fn set_meta(&mut self, metas: Vec<PointMeta>) {
        assert_eq!(metas.len(), self.data.len(), "one PointMeta per indexed point");
        self.metas = metas;
    }

    /// Builder-style [`Qalsh::set_meta`].
    #[must_use]
    pub fn with_meta(mut self, metas: Vec<PointMeta>) -> Self {
        self.set_meta(metas);
        self
    }

    /// The Hoeffding-derived parameters (`p1`, `p2`, `α`, `m`, `l`).
    pub fn derived(&self) -> &DerivedParams {
        &self.derived
    }

    /// Number of hash functions / B+-trees.
    pub fn num_trees(&self) -> usize {
        self.m
    }

    /// Index size in bytes: B+-tree pages plus projection vectors.
    pub fn size_bytes(&self) -> usize {
        let pages: usize = self.trees.iter().map(|t| t.num_pages()).sum();
        pages * 4096 + self.m * self.data.dim() * 4
    }

    fn search_params(&self) -> SearchParams {
        SearchParams {
            c: self.config.c,
            l: self.l,
            beta_n: self.beta_n,
            base_radius: self.config.base_radius,
        }
    }

    /// c-k-ANN query with B+-tree I/O accounting.
    pub fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        self.query_with(q, k, &SearchOptions::default())
    }

    /// [`Qalsh::query`] with explicit observability options.
    pub fn query_with(
        &self,
        q: &[f32],
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<Neighbor>, QueryStats) {
        let mut scratch = self.scratch.lock();
        engine::run_query(self, &self.search_params(), &mut scratch, q, k, opts)
    }

    /// Convenience c-ANN (k = 1).
    pub fn query_one(&self, q: &[f32]) -> (Option<Neighbor>, QueryStats) {
        let (mut nn, stats) = self.query(q, 1);
        (nn.pop(), stats)
    }

    /// Answer a whole query set in parallel across scoped threads
    /// (results in query order, identical to sequential queries).
    pub fn query_batch(
        &self,
        queries: &Dataset,
        k: usize,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        self.query_batch_with(queries, k, &SearchOptions::default())
    }

    /// [`Qalsh::query_batch`] with explicit observability options.
    pub fn query_batch_with(
        &self,
        queries: &Dataset,
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        engine::run_query_batch(self, &self.search_params(), queries, k, opts)
    }
}

/// Per-tree bidirectional cursor pair straddling the query projection:
/// `right` sits at the first key ≥ a·q, `left` just below it; the done
/// flags latch once a direction runs off its tree.
struct ProbePair {
    left: Cursor,
    right: Cursor,
    left_done: bool,
    right_done: bool,
}

/// Query expansion state over the `m` B+-trees: the query's projections
/// plus one probe pair per tree.
pub struct QalshCursor {
    pq: Vec<f64>,
    probes: Vec<ProbePair>,
}

impl TableStore for Qalsh<'_> {
    type Cursor = QalshCursor;

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn num_tables(&self) -> usize {
        self.m
    }

    fn begin(&self, q: &[f32]) -> QalshCursor {
        // The dispatched projection kernel; build-time keys used the same
        // canonical schedule, so probe positions land exactly.
        let kd = c2lsh::kernels::dispatch();
        let pq: Vec<f64> = self.proj.iter().map(|a| kd.dot(a, q)).collect();
        let probes: Vec<ProbePair> = (0..self.m)
            .map(|t| {
                let right = self.trees[t].lower_bound(OrdF64(pq[t]));
                let left = self.trees[t].retreat(right);
                ProbePair {
                    left,
                    right,
                    left_done: self.trees[t].get(left).is_none(),
                    right_done: self.trees[t].get(right).is_none(),
                }
            })
            .collect();
        QalshCursor { pq, probes }
    }

    fn expand(
        &self,
        cursor: &mut QalshCursor,
        t: usize,
        radius: i64,
        visit: &mut dyn FnMut(u32) -> bool,
    ) {
        let tree = &self.trees[t];
        let half = self.config.w * radius as f64 / 2.0;
        let (lo_key, hi_key) = (cursor.pq[t] - half, cursor.pq[t] + half);
        let probe = &mut cursor.probes[t];
        // Expand rightward.
        while !probe.right_done {
            match tree.get(probe.right) {
                Some((OrdF64(key), oid)) if key <= hi_key => {
                    let keep_going = visit(oid);
                    probe.right = tree.advance(probe.right);
                    if !keep_going {
                        return;
                    }
                }
                Some(_) => break,
                None => probe.right_done = true,
            }
        }
        // Expand leftward.
        while !probe.left_done {
            match tree.get(probe.left) {
                Some((OrdF64(key), oid)) if key >= lo_key => {
                    let keep_going = visit(oid);
                    let prev = tree.retreat(probe.left);
                    if tree.get(prev).is_none() {
                        probe.left_done = true;
                    } else {
                        probe.left = prev;
                    }
                    if !keep_going {
                        return;
                    }
                }
                Some(_) => break,
                None => probe.left_done = true,
            }
        }
    }

    fn exhausted(&self, cursor: &QalshCursor) -> bool {
        cursor.probes.iter().all(|p| p.left_done && p.right_done)
    }

    fn vector(&self, oid: u32) -> Option<&[f32]> {
        Some(self.data.get(oid as usize))
    }

    fn meta(&self, oid: u32) -> PointMeta {
        self.metas.get(oid as usize).copied().unwrap_or_default()
    }

    fn verify_pages(&self) -> u64 {
        self.verify_pages
    }

    fn io_reads(&self) -> u64 {
        self.trees.iter().map(|t| t.io_reads()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_vector::gen::{generate, Distribution};
    use cc_vector::gt::knn_linear;
    use cc_vector::metrics::{overall_ratio, recall};

    fn clustered(n: usize, d: usize, seed: u64) -> Dataset {
        generate(
            Distribution::GaussianMixture { clusters: 16, spread: 0.015, scale: 10.0 },
            n,
            d,
            seed,
        )
    }

    fn cfg() -> QalshConfig {
        QalshConfig { w: 1.2, seed: 21, ..QalshConfig::default() }
    }

    #[test]
    fn ordf64_total_order() {
        let mut v = [OrdF64(1.5), OrdF64(-2.0), OrdF64(0.0), OrdF64(7.25)];
        v.sort();
        let keys: Vec<f64> = v.iter().map(|k| k.0).collect();
        assert_eq!(keys, vec![-2.0, 0.0, 1.5, 7.25]);
    }

    #[test]
    fn finds_exact_match() {
        let data = clustered(600, 16, 1);
        let idx = Qalsh::build(&data, cfg());
        for i in [0usize, 42, 599] {
            let (nn, _) = idx.query(data.get(i), 1);
            assert_eq!(nn[0].id as usize, i);
            assert_eq!(nn[0].dist, 0.0);
        }
    }

    #[test]
    fn high_quality_on_clusters() {
        let data = clustered(2000, 24, 2);
        let idx = Qalsh::build(&data, cfg());
        let mut r = 0.0;
        let mut ratio = 0.0;
        for qi in 0..20 {
            let q = data.get(qi * 91);
            let truth = knn_linear(&data, q, 10);
            let (got, _) = idx.query(q, 10);
            r += recall(&got, &truth);
            ratio += overall_ratio(&got, &truth);
        }
        r /= 20.0;
        ratio /= 20.0;
        assert!(r > 0.8, "recall {r}");
        assert!(ratio < 1.15, "ratio {ratio}");
    }

    #[test]
    fn uses_fewer_trees_than_c2lsh_tables() {
        let data = clustered(2000, 16, 3);
        let q_idx = Qalsh::build(&data, QalshConfig::default());
        let c_cfg = c2lsh::C2lshConfig::builder().bucket_width(2.184).seed(3).build();
        let c_idx = c2lsh::C2lshIndex::build(&data, &c_cfg);
        assert!(
            q_idx.num_trees() < c_idx.params().m,
            "QALSH m = {} should be below C2LSH m = {}",
            q_idx.num_trees(),
            c_idx.params().m
        );
    }

    #[test]
    fn io_accounting_positive_and_reproducible() {
        let data = clustered(1500, 16, 4);
        let idx = Qalsh::build(&data, cfg());
        let (_, s1) = idx.query(data.get(7), 10);
        let (_, s2) = idx.query(data.get(7), 10);
        assert!(s1.io.reads > 0);
        assert_eq!(s1.io, s2.io);
    }

    #[test]
    fn t2_budget_respected() {
        let data = clustered(2500, 16, 5);
        let idx = Qalsh::build(&data, QalshConfig { beta_count: 20, ..cfg() });
        let (_, stats) = idx.query(data.get(0), 10);
        assert!(stats.candidates_verified <= 10 + idx.beta_n);
    }

    #[test]
    fn exhausts_tiny_dataset() {
        let data = clustered(15, 8, 6);
        let idx = Qalsh::build(&data, cfg());
        let far = vec![1e5f32; 8];
        let (nn, _) = idx.query(&far, 4);
        assert_eq!(nn.len(), 4);
    }

    #[test]
    #[should_panic(expected = "c must be >= 2")]
    fn rejects_bad_c() {
        let data = clustered(10, 4, 7);
        let _ = Qalsh::build(&data, QalshConfig { c: 1, ..QalshConfig::default() });
    }
}

//! QALSH collision probabilities and parameter derivation.
//!
//! The query-aware function has no random offset; a collision at radius
//! `R` is `|a·(o − q)| ≤ w·R/2` with `a·(o − q) ~ N(0, s²)` for distance
//! `s`, giving `p_R(s) = 2Φ(wR/(2s)) − 1`. As with C2LSH, `p` depends
//! only on `s/(wR)`, so one parameter set serves every radius.

use cc_math::gaussian::normal_cdf;
use cc_math::hoeffding::{derive_params, DerivedParams};

/// Collision probability of one query-aware hash function for two points
/// at distance `s` with window width `w` (radius 1).
///
/// # Panics
/// Panics when `s < 0` or `w <= 0`.
pub fn qalsh_collision_probability(s: f64, w: f64) -> f64 {
    assert!(s >= 0.0, "distance must be non-negative, got {s}");
    assert!(w > 0.0, "window width must be positive, got {w}");
    if s == 0.0 {
        return 1.0;
    }
    2.0 * normal_cdf(w / (2.0 * s)) - 1.0
}

/// Derive `(α*, m, l)` for QALSH with ratio `c`, window `w`, failure
/// budget `δ` and false-positive fraction `β`.
pub fn derive(c: u32, w: f64, delta: f64, beta: f64) -> DerivedParams {
    let p1 = qalsh_collision_probability(1.0, w);
    let p2 = qalsh_collision_probability(c as f64, w);
    derive_params(p1, p2, delta, beta)
}

/// The ρ-minimizing window width for ratio `c` derived in the QALSH
/// paper: `w* = sqrt( 8·c²·ln(c) / (c² − 1) )`.
pub fn optimal_width(c: u32) -> f64 {
    let c2 = (c as f64) * (c as f64);
    (8.0 * c2 * (c as f64).ln() / (c2 - 1.0)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_monotone_in_distance() {
        let w = 2.719;
        // For tiny s the probability saturates at 1.0 in f64, so require
        // non-strict monotonicity globally and strict decrease once the
        // probability has left the saturated regime.
        let mut prev = 1.0;
        for i in 1..100 {
            let s = i as f64 * 0.1;
            let p = qalsh_collision_probability(s, w);
            assert!(p <= prev && p > 0.0, "s={s}");
            if s >= 1.0 {
                assert!(p < prev, "not strictly decreasing at s={s}");
            }
            prev = p;
        }
        assert_eq!(qalsh_collision_probability(0.0, w), 1.0);
    }

    #[test]
    fn qalsh_beats_c2lsh_probability_gap() {
        // At the respective optimal widths, QALSH's (p1 − p2) gap is
        // wider than C2LSH's — the reason it needs smaller m.
        let q1 = qalsh_collision_probability(1.0, 2.719);
        let q2 = qalsh_collision_probability(2.0, 2.719);
        let c1 = cc_math::pstable::collision_probability(1.0, 2.184);
        let c2 = cc_math::pstable::collision_probability(2.0, 2.184);
        assert!(q1 - q2 > c1 - c2, "QALSH gap {} <= C2LSH gap {}", q1 - q2, c1 - c2);
    }

    #[test]
    fn optimal_width_for_c2() {
        // QALSH paper: w* ≈ 2.7189 at c = 2.
        let w = optimal_width(2);
        assert!((w - 2.7189).abs() < 1e-3, "w* = {w}");
    }

    #[test]
    fn derive_produces_fewer_functions_than_c2lsh() {
        let beta = 100.0 / 60_000.0;
        let delta = 1.0 / std::f64::consts::E;
        let q = derive(2, optimal_width(2), delta, beta);
        let p1 = cc_math::pstable::collision_probability(1.0, 2.184);
        let p2 = cc_math::pstable::collision_probability(2.0, 2.184);
        let c = cc_math::hoeffding::derive_params(p1, p2, delta, beta);
        assert!(q.m < c.m, "QALSH m = {} should undercut C2LSH m = {}", q.m, c.m);
    }
}

//! # qalsh — Query-Aware LSH over B+-trees
//!
//! QALSH (Huang, Feng, Zhang, Fang, Ng — PVLDB 2015 / VLDBJ 2017) is the
//! direct follow-up to C2LSH by the same group and keeps its **dynamic
//! collision counting** framework while removing the random bucket
//! offset: each hash function is the bare projection `h_a(o) = a·o`,
//! indexed in a B+-tree, and the *query* anchors the bucket — object `o`
//! collides with query `q` at radius `R` iff `|a·o − a·q| ≤ w·R/2`.
//!
//! Compared to C2LSH this improves the per-function collision
//! probabilities to
//!
//! ```text
//! p(s) = 2·Φ( w / (2s) ) − 1
//! ```
//!
//! (`p1 = p(1)`, `p2 = p(c)`), needing fewer hash functions for the same
//! guarantee; the price is a B+-tree search plus bidirectional leaf
//! expansion per function instead of an array window.
//!
//! It is implemented here as the repository's *extension feature*: it
//! reuses C2LSH's collision counter, Hoeffding parameter solver and
//! terminating conditions, and runs on the `cc-storage` B+-tree with
//! per-node I/O accounting — so it slots directly into the paper's
//! experiment harness as an extra comparator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod params;

pub use index::{Qalsh, QalshConfig};
pub use params::qalsh_collision_probability;

//! The collection registry: named, independently indexed vector sets
//! served by one process.
//!
//! Each collection owns a [`MutableIndex`] with its own parameters and
//! — on a durable server ([`CollectionsConfig::root`]) — its own WAL
//! directory under `root/<name>/`, holding the usual
//! `checkpoint.c2d` + `wal.log` pair plus a tiny `collection.meta`
//! manifest recording the dimensionality, so a restart can reopen
//! every collection without the client re-declaring it.
//!
//! Collection requests are handled synchronously in the connection
//! threads rather than through the batching worker: collections are
//! expected to be many and small, so cross-client coalescing (a
//! per-collection batcher each) would cost threads without winning
//! latency. The default engine keeps the batcher.

use crate::protocol::CollectionInfo;
use c2lsh::{C2lshConfig, DynamicIndex, Error, MutableIndex};
use cc_obs::Counter;
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, RwLock};

/// The per-collection manifest file name (beside `wal.log`).
const MANIFEST: &str = "collection.meta";

/// Longest accepted collection name.
pub const MAX_COLLECTION_NAME: usize = 64;

/// How new collections are provisioned.
#[derive(Debug, Clone)]
pub struct CollectionsConfig {
    /// Durable root: each collection persists under `root/<name>/`.
    /// `None` makes every collection ephemeral (acks die with the
    /// process), mirroring the default engine's `--wal`-less mode.
    pub root: Option<PathBuf>,
    /// Index parameters every new collection is built with.
    pub config: C2lshConfig,
    /// Expected object count (sizes the hash domain of new
    /// collections).
    pub expected_n: usize,
}

impl Default for CollectionsConfig {
    fn default() -> Self {
        Self { root: None, config: C2lshConfig::default(), expected_n: 4096 }
    }
}

/// One live collection: its index plus the monotone counters behind
/// the per-collection Prometheus series.
pub struct Collection {
    name: String,
    dim: usize,
    /// The collection's own crash-safe index.
    pub index: MutableIndex,
    /// Queries answered against this collection.
    pub queries: Counter,
    /// Inserts acknowledged into this collection.
    pub inserts: Counter,
    /// Deletes acknowledged against this collection.
    pub deletes: Counter,
    /// Candidates rejected by filter predicates during this
    /// collection's queries.
    pub filtered: Counter,
}

impl Collection {
    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimensionality its vectors must have.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Highest WAL sequence applied to this collection's index (the
    /// freshness bound for `min_seq` reads).
    pub fn last_seq(&self) -> u64 {
        self.index.last_seq()
    }
}

/// One point-in-time row for the metrics exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionMetricsRow {
    /// Collection name (the `collection` label value).
    pub name: String,
    /// Live objects.
    pub objects: u64,
    /// Queries answered.
    pub queries: u64,
    /// Inserts acknowledged.
    pub inserts: u64,
    /// Deletes acknowledged.
    pub deletes: u64,
    /// Filter-rejected candidates.
    pub filtered: u64,
}

/// The registry of named collections.
pub struct Registry {
    cfg: CollectionsConfig,
    map: RwLock<BTreeMap<String, Arc<Collection>>>,
}

/// `true` iff `name` is servable: 1–64 chars of `[A-Za-z0-9_-]` (also
/// keeps it a safe directory name on every platform).
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_COLLECTION_NAME
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

impl Registry {
    /// Open the registry: with a durable root, every subdirectory
    /// holding a `collection.meta` manifest is reopened (checkpoint
    /// restore + WAL replay per collection).
    pub fn open(cfg: CollectionsConfig) -> io::Result<Self> {
        let mut map = BTreeMap::new();
        if let Some(root) = &cfg.root {
            std::fs::create_dir_all(root)?;
            for entry in std::fs::read_dir(root)? {
                let entry = entry?;
                let manifest = entry.path().join(MANIFEST);
                if !manifest.is_file() {
                    continue;
                }
                let name = entry.file_name().to_string_lossy().into_owned();
                if !valid_name(&name) {
                    continue;
                }
                let dim =
                    parse_manifest(&std::fs::read_to_string(&manifest)?).ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unreadable manifest {}", manifest.display()),
                        )
                    })?;
                let index = MutableIndex::open(entry.path(), dim, cfg.expected_n, &cfg.config)?;
                map.insert(name.clone(), Arc::new(new_collection(name, dim, index)));
            }
        }
        Ok(Registry { cfg, map: RwLock::new(map) })
    }

    /// An all-ephemeral registry with default provisioning.
    pub fn ephemeral() -> Self {
        Registry { cfg: CollectionsConfig::default(), map: RwLock::new(BTreeMap::new()) }
    }

    /// Create `name` with dimensionality `dim`; returns whether it
    /// already existed (in which case it is left untouched — the
    /// existing dimensionality wins).
    pub fn create(&self, name: &str, dim: usize) -> Result<bool, Error> {
        if !valid_name(name) {
            return Err(Error::invalid(format!(
                "bad collection name {name:?}: want 1-{MAX_COLLECTION_NAME} chars of \
                 [A-Za-z0-9_-]"
            )));
        }
        if dim == 0 {
            return Err(Error::invalid("collection dimensionality must be at least 1"));
        }
        {
            let map = self.map.read().unwrap();
            if map.contains_key(name) {
                return Ok(true);
            }
        }
        let index = match &self.cfg.root {
            Some(root) => {
                let dir = root.join(name);
                let index = MutableIndex::open(&dir, dim, self.cfg.expected_n, &self.cfg.config)
                    .map_err(|e| {
                        Error::new(c2lsh::ErrorKind::Io, format!("cannot open {name:?}: {e}"))
                    })?;
                // The manifest goes down last: a crash before this
                // line leaves an orphan directory the scan skips.
                std::fs::write(dir.join(MANIFEST), format!("dim {dim}\n")).map_err(|e| {
                    Error::new(c2lsh::ErrorKind::Io, format!("cannot write manifest: {e}"))
                })?;
                index
            }
            None => MutableIndex::ephemeral(DynamicIndex::new(
                dim,
                self.cfg.expected_n,
                &self.cfg.config,
            )),
        };
        let mut map = self.map.write().unwrap();
        // A racing create may have won while the index was building.
        if map.contains_key(name) {
            return Ok(true);
        }
        map.insert(name.to_string(), Arc::new(new_collection(name.to_string(), dim, index)));
        Ok(false)
    }

    /// Drop `name`, deleting its on-disk state; returns whether it
    /// existed.
    pub fn drop_collection(&self, name: &str) -> io::Result<bool> {
        let existed = self.map.write().unwrap().remove(name).is_some();
        if existed {
            if let Some(root) = &self.cfg.root {
                std::fs::remove_dir_all(root.join(name))?;
            }
        }
        Ok(existed)
    }

    /// Look up a live collection.
    pub fn get(&self, name: &str) -> Option<Arc<Collection>> {
        self.map.read().unwrap().get(name).cloned()
    }

    /// All collections, sorted by name, for the list frame.
    pub fn list(&self) -> Vec<CollectionInfo> {
        self.map
            .read()
            .unwrap()
            .values()
            .map(|c| CollectionInfo {
                name: c.name.clone(),
                dim: c.dim as u32,
                objects: c.index.len() as u64,
            })
            .collect()
    }

    /// Per-collection counter snapshot for the Prometheus exposition.
    pub fn metrics_rows(&self) -> Vec<CollectionMetricsRow> {
        self.map
            .read()
            .unwrap()
            .values()
            .map(|c| CollectionMetricsRow {
                name: c.name.clone(),
                objects: c.index.len() as u64,
                queries: c.queries.get(),
                inserts: c.inserts.get(),
                deletes: c.deletes.get(),
                filtered: c.filtered.get(),
            })
            .collect()
    }

    /// Checkpoint every durable collection whose WAL exceeds
    /// `wal_bytes` (0 forces all); returns how many checkpoints ran.
    pub fn checkpoint_all(&self, wal_bytes: u64) -> u64 {
        let collections: Vec<Arc<Collection>> =
            self.map.read().unwrap().values().cloned().collect();
        let mut ran = 0;
        for c in collections {
            match c.index.checkpoint_if_wal_exceeds(wal_bytes) {
                Ok(true) => ran += 1,
                Ok(false) => {}
                Err(e) => eprintln!("collection {:?} checkpoint failed: {e}", c.name),
            }
        }
        ran
    }
}

fn new_collection(name: String, dim: usize, index: MutableIndex) -> Collection {
    Collection {
        name,
        dim,
        index,
        queries: Counter::new(),
        inserts: Counter::new(),
        deletes: Counter::new(),
        filtered: Counter::new(),
    }
}

fn parse_manifest(text: &str) -> Option<usize> {
    let rest = text.trim().strip_prefix("dim ")?;
    rest.parse().ok().filter(|&d| d > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2lsh::engine::SearchOptions;
    use c2lsh::{MutationOp, PointMeta, Predicate};
    use cc_vector::dataset::Dataset;

    fn insert(v: &[f32], tag: u64, label: u32) -> MutationOp {
        MutationOp::Insert { vector: v.to_vec(), meta: PointMeta::new(tag, label) }
    }

    #[test]
    fn names_are_validated() {
        for good in ["a", "tenant-1", "A_B-c9", &"x".repeat(64)] {
            assert!(valid_name(good), "{good:?}");
        }
        for bad in ["", " ", "a b", "a/b", "..", "å", &"x".repeat(65)] {
            assert!(!valid_name(bad), "{bad:?}");
        }
    }

    #[test]
    fn ephemeral_create_query_drop() {
        let reg = Registry::ephemeral();
        assert!(!reg.create("alpha", 4).unwrap(), "fresh create");
        assert!(reg.create("alpha", 4).unwrap(), "second create reports existed");
        assert!(reg.create("bad name", 4).is_err());
        assert!(reg.create("zerodim", 0).is_err());

        let col = reg.get("alpha").unwrap();
        col.index
            .apply_batch(&[insert(&[1.0, 0.0, 0.0, 0.0], 0b01, 7), insert(&[0.0; 4], 0b10, 8)])
            .unwrap();
        let queries = Dataset::from_rows(&[vec![1.0, 0.0, 0.0, 0.0]]);
        let opts = SearchOptions { filter: Some(Predicate::label(7)), ..SearchOptions::default() };
        let (results, _) = col.index.query_batch_with(&queries, 2, &opts);
        let ids: Vec<u32> = results[0].0.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0], "label 8 point must be filtered out");

        assert_eq!(reg.list().len(), 1);
        assert_eq!(reg.list()[0].objects, 2);
        assert!(reg.drop_collection("alpha").unwrap());
        assert!(!reg.drop_collection("alpha").unwrap(), "second drop is a miss");
        assert!(reg.get("alpha").is_none());
    }

    #[test]
    fn durable_collections_survive_reopen() {
        let root = cc_storage::wal::scratch_dir("collections");
        let cfg = CollectionsConfig {
            root: Some(root.clone()),
            expected_n: 64,
            ..CollectionsConfig::default()
        };
        {
            let reg = Registry::open(cfg.clone()).unwrap();
            reg.create("persisted", 3).unwrap();
            reg.create("dropped", 5).unwrap();
            let col = reg.get("persisted").unwrap();
            col.index.apply_batch(&[insert(&[1.0, 2.0, 3.0], 0xF0, 3)]).unwrap();
            assert!(reg.drop_collection("dropped").unwrap());
        }
        let reg = Registry::open(cfg).unwrap();
        let listed = reg.list();
        assert_eq!(listed.len(), 1, "dropped collection must not come back");
        assert_eq!(listed[0].name, "persisted");
        assert_eq!(listed[0].dim, 3);
        assert_eq!(listed[0].objects, 1);
        // The metadata survived the WAL round trip.
        let col = reg.get("persisted").unwrap();
        let queries = Dataset::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let opts = SearchOptions {
            filter: Some(Predicate::label(3).and_tag_all(0xF0)),
            ..SearchOptions::default()
        };
        let (results, _) = col.index.query_batch_with(&queries, 1, &opts);
        assert_eq!(results[0].0.len(), 1);
        let miss = SearchOptions { filter: Some(Predicate::label(4)), ..SearchOptions::default() };
        let (results, _) = col.index.query_batch_with(&queries, 1, &miss);
        assert!(results[0].0.is_empty());
        drop(reg);
        std::fs::remove_dir_all(&root).unwrap();
    }
}

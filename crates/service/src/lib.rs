//! # cc-service — serving the collision-counting engine over TCP
//!
//! A batching query (and mutation) service over any
//! [`server::ServeEngine`] — the read-only [`c2lsh::ShardedEngine`] or
//! the crash-safe [`c2lsh::MutableIndex`]: clients speak a
//! length-prefixed binary protocol ([`protocol`]) to a
//! thread-per-connection server ([`server`]) whose single batching
//! worker coalesces concurrent queries into engine batches and
//! mutations into group-committed WAL batches. Built on `std::net`
//! only — no async runtime.
//!
//! * [`protocol`] — the wire format: framing, opcodes, encode/decode
//!   (including the insert/delete/ack mutation frames and the v2
//!   query/metrics frames),
//! * [`server`] — [`server::serve`]: accept loop, admission control,
//!   request coalescing, durable mutation acks, per-request deadlines,
//!   graceful drain,
//! * [`collections`] — the named-collection registry: per-collection
//!   indexes, WAL directories, metadata manifests and metric counters,
//! * [`replication`] — the follower side of WAL shipping: subscribe to
//!   a primary, apply each shipped batch durably, acknowledge,
//!   reconnect with backoff,
//! * [`router`] — the scatter-gather front: fan QueryV2 out across
//!   shard groups, fail over within each group, merge top-k, forward
//!   writes to the primary,
//! * [`obs`] — the live metric registry ([`obs::ServerObs`]):
//!   counters, per-stage latency histograms, trace sampling, the
//!   slow-query ring, and the Prometheus renderer,
//! * [`client`] — a minimal blocking [`Client`] and the
//!   builder-style [`QueryRequest`],
//! * [`json`] — the hand-rolled serializer/parser behind the stats
//!   frame,
//! * [`snapshot`] — [`snapshot::StatsSnapshot`], the typed, versioned
//!   view of that frame (parses schema 1 and 2).
//!
//! ## Quick start
//!
//! ```
//! use c2lsh::{C2lshConfig, ShardedData, ShardedEngine};
//! use cc_service::{Client, ServiceConfig};
//! use cc_vector::gen::{generate, Distribution};
//! use std::net::TcpListener;
//!
//! let data = generate(
//!     Distribution::GaussianMixture { clusters: 4, spread: 0.02, scale: 10.0 },
//!     400, 8, 42,
//! );
//! let sharded = ShardedData::partition(&data, 4);
//! let engine = ShardedEngine::build(&sharded, &C2lshConfig::default());
//!
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap();
//! crossbeam::scope(|s| {
//!     let server = s.spawn(|_| {
//!         cc_service::serve(&engine, listener, &ServiceConfig::default()).unwrap()
//!     });
//!     let mut client = Client::connect(addr).unwrap();
//!     let result = client
//!         .search_result(&cc_service::QueryRequest::new(data.get(7).to_vec()).k(3))
//!         .unwrap();
//!     assert_eq!(result.neighbors[0].id, 7); // the query itself is in the data
//!     client.shutdown().unwrap();
//!     let stats = server.join().unwrap();
//!     assert_eq!(stats.queries, 1);
//! })
//! .unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod collections;
pub mod json;
pub mod obs;
pub mod protocol;
pub mod replication;
pub mod router;
pub mod server;
pub mod snapshot;

pub use client::{Client, QueryRequest, QueryResult, SearchOutcome};
pub use collections::CollectionsConfig;
pub use obs::{BufpoolSnapshot, ServerObs};
pub use protocol::{CollectionInfo, ProtoError, QueryCost, Request, Response, WireSpan};
pub use replication::{run_follower, ReplicationConfig, ReplicationStats};
pub use router::{route, route_with_obs, RouterConfig, RouterStats};
pub use server::{serve, serve_with_obs, ServeEngine, ServiceConfig, ServiceStats};
pub use snapshot::StatsSnapshot;

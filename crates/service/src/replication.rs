//! The follower side of WAL shipping: a pull loop that subscribes to a
//! primary's replication stream and applies each shipped batch to the
//! local [`MutableIndex`].
//!
//! The stream is a ping-pong over one ordinary protocol connection —
//! no side channel, no extra port:
//!
//! ```text
//!  follower                         primary
//!  ────────                         ───────
//!  ReplSubscribe(from_seq) ──────▶
//!                          ◀────── ReplBatch(last_seq, records…)
//!  apply_replicated(records)
//!  ReplAck(applied_seq)    ──────▶  (long-polls ~250 ms)
//!                          ◀────── ReplBatch(…)   — or a heartbeat
//!  …
//! ```
//!
//! Every shipped record lands in the follower's **own WAL before it is
//! acknowledged** ([`MutableIndex::apply_replicated`] appends and
//! fsyncs), so a follower that crashes recovers to its last acked
//! sequence from local disk and resumes the subscription from there —
//! the primary never needs to track follower durability beyond the
//! acked sequence number.
//!
//! Connection failures are retried forever with a fixed backoff: a
//! SIGKILLed or restarting primary looks identical to a network blip,
//! and the subscription position (`engine.last_seq()`) is recomputed
//! from the local index on every reconnect, so the loop is stateless
//! across attempts. The loop only exits when `stop` is raised.
//!
//! ## Fault injection
//!
//! `CC_REPL_STALL_APPLY_MS=<ms>` (read once at startup) sleeps before
//! applying every non-empty batch. Tests use it to hold a follower
//! visibly behind the primary and assert that freshness-bounded reads
//! (`min_seq`) refuse to be served from it.

use crate::protocol::{self, ProtoError, Request, Response};
use c2lsh::MutableIndex;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Tunables of one follower pull loop.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Address of the primary to subscribe to (`HOST:PORT`).
    pub primary: String,
    /// This follower's name on the primary's lag board (the `replica`
    /// label of `cc_replica_lag_seq`).
    pub node_name: String,
    /// Pause between reconnect attempts after a connection failure.
    pub reconnect_backoff: Duration,
    /// Read timeout on the stream. Must exceed the primary's long-poll
    /// window (250 ms) by a comfortable margin; a primary silent for
    /// this long is treated as dead and the loop reconnects.
    pub read_timeout: Duration,
}

impl ReplicationConfig {
    /// A config for `primary` with defaults: 200 ms backoff, 3 s read
    /// timeout.
    pub fn new(primary: impl Into<String>, node_name: impl Into<String>) -> Self {
        ReplicationConfig {
            primary: primary.into(),
            node_name: node_name.into(),
            reconnect_backoff: Duration::from_millis(200),
            read_timeout: Duration::from_secs(3),
        }
    }
}

/// Counters of one follower pull loop's lifetime, returned when the
/// loop is stopped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Batches applied (heartbeats excluded).
    pub batches: u64,
    /// Records applied.
    pub records: u64,
    /// Empty batches (the primary had nothing new).
    pub heartbeats: u64,
    /// Connection attempts that failed or streams that broke.
    pub reconnects: u64,
}

/// Run the follower pull loop until `stop` is raised: subscribe to
/// `config.primary` from the local index's current sequence, apply
/// every shipped batch durably, acknowledge, repeat — reconnecting
/// with backoff on any failure.
///
/// Intended to run on its own thread next to the follower's serve
/// loop; raise `stop` (the serve loop drained) and the function
/// returns within roughly `config.read_timeout`.
pub fn run_follower(
    engine: &MutableIndex,
    config: &ReplicationConfig,
    stop: &AtomicBool,
) -> ReplicationStats {
    let stall = std::env::var("CC_REPL_STALL_APPLY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis);
    let mut stats = ReplicationStats::default();
    while !stop.load(Ordering::SeqCst) {
        match stream_once(engine, config, stop, stall, &mut stats) {
            Ok(()) => break, // stop was raised mid-stream
            Err(e) => {
                stats.reconnects += 1;
                eprintln!(
                    "replication: stream to {} broke ({e}); retrying in {:?}",
                    config.primary, config.reconnect_backoff
                );
                // Sleep in small steps so a stop request during the
                // backoff still returns promptly.
                let mut left = config.reconnect_backoff;
                while !stop.load(Ordering::SeqCst) && left > Duration::ZERO {
                    let step = left.min(Duration::from_millis(20));
                    std::thread::sleep(step);
                    left = left.saturating_sub(step);
                }
            }
        }
    }
    stats
}

/// One connection's worth of streaming: subscribe, then apply/ack
/// until the stream breaks (`Err`) or `stop` is raised (`Ok`).
fn stream_once(
    engine: &MutableIndex,
    config: &ReplicationConfig,
    stop: &AtomicBool,
    stall: Option<Duration>,
    stats: &mut ReplicationStats,
) -> io::Result<()> {
    let mut stream = TcpStream::connect(&config.primary)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    let from_seq = engine.last_seq();
    protocol::write_request(
        &mut stream,
        &Request::ReplSubscribe { replica: config.node_name.clone(), from_seq },
    )?;
    eprintln!("replication: subscribed to {} from seq {from_seq}", config.primary);
    loop {
        let resp = read_response(&mut stream)?;
        match resp {
            Response::ReplBatch { last_seq, records } => {
                if records.is_empty() {
                    stats.heartbeats += 1;
                } else {
                    if let Some(pause) = stall {
                        std::thread::sleep(pause);
                    }
                    let first = records[0].seq;
                    let applied = engine.apply_replicated(&records)?;
                    stats.batches += 1;
                    stats.records += records.len() as u64;
                    eprintln!(
                        "replication: applied seqs {first}..={applied} \
                         (primary at {last_seq})"
                    );
                }
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                protocol::write_request(
                    &mut stream,
                    &Request::ReplAck { applied_seq: engine.last_seq() },
                )?;
            }
            Response::Error(e) => {
                // A typed refusal (e.g. below the primary's retention
                // floor) is not retryable by reconnecting with the same
                // position — surface it loudly and back off anyway so
                // an operator sees the loop spinning on it.
                return Err(io::Error::other(format!("primary refused the stream: {e}")));
            }
            other => {
                return Err(io::Error::other(format!(
                    "unexpected response on the replication stream: {other:?}"
                )));
            }
        }
    }
}

/// Read one response, mapping protocol and EOF conditions into
/// [`io::Error`] so the caller has a single retry path.
fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    match protocol::read_response(stream) {
        Ok(Some(resp)) => Ok(resp),
        Ok(None) => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "primary closed the replication stream",
        )),
        Err(ProtoError::Io(e)) => Err(e),
        Err(ProtoError::Malformed(msg)) => {
            Err(io::Error::new(io::ErrorKind::InvalidData, format!("malformed frame: {msg}")))
        }
    }
}

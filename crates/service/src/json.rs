//! A deliberately tiny JSON emitter (and a matching field extractor
//! for tooling) — the workspace is offline, so no serde.
//!
//! [`JsonObject`] covers exactly what the stats frame needs: flat-ish
//! objects of numbers, strings and nested objects, emitted in
//! insertion order. Numbers are formatted so they parse back exactly
//! (`u64`/`usize` verbatim, `f64` via `{:?}` which round-trips).
//! The extractors ([`find_u64`], [`find_f64`]) do *not* implement a
//! JSON parser; they scan for a quoted key at any nesting depth and
//! read the number after the colon — sufficient for the load
//! generator and the integration tests to pick counters out of the
//! stats document this module itself produced.

use std::fmt::Write as _;

/// Incremental JSON object builder.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        Self { buf: String::from("{"), first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Add an unsigned integer field.
    pub fn field_u64(mut self, key: &str, v: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field (`{:?}` formatting round-trips f64 exactly;
    /// non-finite values become `null` since JSON has no NaN).
    pub fn field_f64(mut self, key: &str, v: f64) -> Self {
        self.key(key);
        if v.is_finite() {
            let _ = write!(self.buf, "{v:?}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a string field (escaped).
    pub fn field_str(mut self, key: &str, v: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Add a nested object field from an already-finished document.
    pub fn field_obj(mut self, key: &str, v: &str) -> Self {
        self.key(key);
        self.buf.push_str(v);
        self
    }

    /// Close the object and return the document.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

/// Locate `"key":` in `json` and return the byte range of the value's
/// leading number token. Shared scanner for the typed extractors.
fn number_after_key<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '-' || c == '+' || c == '.' || c == 'e'))
        .unwrap_or(rest.len());
    Some(&rest[..end])
}

/// Extract an unsigned-integer field by key (first occurrence, any
/// nesting level).
pub fn find_u64(json: &str, key: &str) -> Option<u64> {
    number_after_key(json, key)?.parse().ok()
}

/// Extract a float field by key (first occurrence, any nesting level).
pub fn find_f64(json: &str, key: &str) -> Option<f64> {
    number_after_key(json, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_documents() {
        let inner = JsonObject::new().field_u64("reads", 12).field_u64("writes", 0).finish();
        let doc = JsonObject::new()
            .field_u64("queries", 42)
            .field_f64("mean_batch", 3.5)
            .field_str("state", "serving")
            .field_obj("io", &inner)
            .finish();
        assert_eq!(
            doc,
            "{\"queries\":42,\"mean_batch\":3.5,\"state\":\"serving\",\
             \"io\":{\"reads\":12,\"writes\":0}}"
        );
    }

    #[test]
    fn escapes_strings() {
        let doc = JsonObject::new().field_str("msg", "a \"b\"\n\\c").finish();
        assert_eq!(doc, "{\"msg\":\"a \\\"b\\\"\\n\\\\c\"}");
    }

    #[test]
    fn non_finite_floats_are_null() {
        let doc = JsonObject::new().field_f64("x", f64::NAN).finish();
        assert_eq!(doc, "{\"x\":null}");
    }

    #[test]
    fn extractors_read_back_fields() {
        let inner = JsonObject::new().field_u64("reads", 7).finish();
        let doc = JsonObject::new()
            .field_u64("queries", 1234)
            .field_f64("p99_ms", 1.75)
            .field_obj("io", &inner)
            .finish();
        assert_eq!(find_u64(&doc, "queries"), Some(1234));
        assert_eq!(find_f64(&doc, "p99_ms"), Some(1.75));
        assert_eq!(find_u64(&doc, "reads"), Some(7), "nested fields are reachable");
        assert_eq!(find_u64(&doc, "missing"), None);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}

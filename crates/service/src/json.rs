//! A deliberately tiny JSON emitter, parser and field extractor —
//! the workspace is offline, so no serde.
//!
//! [`JsonObject`] covers exactly what the stats frame needs: flat-ish
//! objects of numbers, strings and nested objects, emitted in
//! insertion order. Numbers are formatted so they parse back exactly
//! (`u64`/`usize` verbatim, `f64` via `{:?}` which round-trips).
//! The quick extractors ([`find_u64`], [`find_f64`]) do *not*
//! implement a JSON parser; they scan for a quoted key at any nesting
//! depth and read the number after the colon — sufficient for the
//! load generator and the integration tests to pick counters out of
//! the stats document this module itself produced. The real parser
//! ([`JsonValue::parse`]) backs the typed
//! [`StatsSnapshot`](crate::snapshot::StatsSnapshot) and the
//! round-trip property tests.

use std::fmt::Write as _;

/// A parsed JSON value. Numbers keep their raw token so `u64`
/// counters survive without a float round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (parse on demand).
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse one complete JSON document (surrounding whitespace
    /// allowed; trailing garbage rejected).
    pub fn parse(s: &str) -> Option<JsonValue> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Member lookup on an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Option<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<JsonValue> {
        match self.bytes.get(self.pos)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(JsonValue::String),
            b't' => self.eat_lit("true").map(|()| JsonValue::Bool(true)),
            b'f' => self.eat_lit("false").map(|()| JsonValue::Bool(false)),
            b'n' => self.eat_lit("null").map(|()| JsonValue::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Option<JsonValue> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}').is_some() {
            return Some(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b'}')?;
            return Some(JsonValue::Object(members));
        }
    }

    fn array(&mut self) -> Option<JsonValue> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']').is_some() {
            return Some(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b']')?;
            return Some(JsonValue::Array(items));
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the run of plain bytes in one go (keeps the loop
            // UTF-8 transparent: multi-byte chars pass through).
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).ok()?);
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => unreachable!("loop above stops only at quote or backslash"),
            }
        }
    }

    fn number(&mut self) -> Option<JsonValue> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return None;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        // Validate the token parses as a number at all.
        raw.parse::<f64>().ok()?;
        Some(JsonValue::Number(raw.to_string()))
    }
}

/// Incremental JSON object builder.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        Self { buf: String::from("{"), first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Add an unsigned integer field.
    pub fn field_u64(mut self, key: &str, v: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field (`{:?}` formatting round-trips f64 exactly;
    /// non-finite values become `null` since JSON has no NaN).
    pub fn field_f64(mut self, key: &str, v: f64) -> Self {
        self.key(key);
        if v.is_finite() {
            let _ = write!(self.buf, "{v:?}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a string field (escaped).
    pub fn field_str(mut self, key: &str, v: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Add a nested object field from an already-finished document.
    pub fn field_obj(mut self, key: &str, v: &str) -> Self {
        self.key(key);
        self.buf.push_str(v);
        self
    }

    /// Close the object and return the document.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

/// Locate `"key":` in `json` and return the byte range of the value's
/// leading number token. Shared scanner for the typed extractors.
fn number_after_key<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '-' || c == '+' || c == '.' || c == 'e'))
        .unwrap_or(rest.len());
    Some(&rest[..end])
}

/// Extract an unsigned-integer field by key (first occurrence, any
/// nesting level).
pub fn find_u64(json: &str, key: &str) -> Option<u64> {
    number_after_key(json, key)?.parse().ok()
}

/// Extract a float field by key (first occurrence, any nesting level).
pub fn find_f64(json: &str, key: &str) -> Option<f64> {
    number_after_key(json, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_documents() {
        let inner = JsonObject::new().field_u64("reads", 12).field_u64("writes", 0).finish();
        let doc = JsonObject::new()
            .field_u64("queries", 42)
            .field_f64("mean_batch", 3.5)
            .field_str("state", "serving")
            .field_obj("io", &inner)
            .finish();
        assert_eq!(
            doc,
            "{\"queries\":42,\"mean_batch\":3.5,\"state\":\"serving\",\
             \"io\":{\"reads\":12,\"writes\":0}}"
        );
    }

    #[test]
    fn escapes_strings() {
        let doc = JsonObject::new().field_str("msg", "a \"b\"\n\\c").finish();
        assert_eq!(doc, "{\"msg\":\"a \\\"b\\\"\\n\\\\c\"}");
    }

    #[test]
    fn non_finite_floats_are_null() {
        let doc = JsonObject::new().field_f64("x", f64::NAN).finish();
        assert_eq!(doc, "{\"x\":null}");
    }

    #[test]
    fn extractors_read_back_fields() {
        let inner = JsonObject::new().field_u64("reads", 7).finish();
        let doc = JsonObject::new()
            .field_u64("queries", 1234)
            .field_f64("p99_ms", 1.75)
            .field_obj("io", &inner)
            .finish();
        assert_eq!(find_u64(&doc, "queries"), Some(1234));
        assert_eq!(find_f64(&doc, "p99_ms"), Some(1.75));
        assert_eq!(find_u64(&doc, "reads"), Some(7), "nested fields are reachable");
        assert_eq!(find_u64(&doc, "missing"), None);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn parser_reads_documents_back() {
        let inner = JsonObject::new().field_u64("reads", 7).finish();
        let doc = JsonObject::new()
            .field_u64("schema", 2)
            .field_str("state", "serving")
            .field_f64("ratio", 1.5)
            .field_obj("io", &inner)
            .finish();
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("state").unwrap().as_str(), Some("serving"));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("io").unwrap().get("reads").unwrap().as_u64(), Some(7));
        assert!(v.get("missing").is_none());
        // u64 precision survives (above 2^53, where f64 would lose it).
        let big = JsonObject::new().field_u64("seq", u64::MAX).finish();
        let v = JsonValue::parse(&big).unwrap();
        assert_eq!(v.get("seq").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parser_handles_literals_arrays_and_rejects_garbage() {
        let v = JsonValue::parse(r#"{"a": [1, true, null, "x"], "b": false}"#).unwrap();
        match v.get("a").unwrap() {
            JsonValue::Array(items) => {
                assert_eq!(items.len(), 4);
                assert_eq!(items[0].as_u64(), Some(1));
                assert_eq!(items[1], JsonValue::Bool(true));
                assert_eq!(items[2], JsonValue::Null);
                assert_eq!(items[3].as_str(), Some("x"));
            }
            other => panic!("expected array, got {other:?}"),
        }
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} trailing", "nul", "\"open"] {
            assert_eq!(JsonValue::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn escaping_round_trips_the_hostile_cases() {
        // Quotes, backslashes and control characters — the classic
        // ways to produce invalid JSON from string interpolation.
        for s in ["\"", "\\", "\"\\\"", "\x00\x1f\x07", "a\nb\rc\td", "π — ünïcode 🚀", ""] {
            let doc = JsonObject::new().field_str("s", s).finish();
            let v = JsonValue::parse(&doc)
                .unwrap_or_else(|| panic!("emitted invalid JSON for {s:?}: {doc}"));
            assert_eq!(v.get("s").unwrap().as_str(), Some(s), "{doc}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::collection::VecStrategy;
    use proptest::prelude::*;
    use proptest::strategy::Map;

    /// The strategy type behind [`hostile_string`], named to keep the
    /// signature readable.
    type HostileString = Map<VecStrategy<std::ops::Range<u32>>, fn(Vec<u32>) -> String>;

    /// Strings up to `max` chars, biased hard toward the characters
    /// that break naive JSON interpolation: quotes, backslashes,
    /// control characters, plus the odd astral-plane code point.
    fn hostile_string(max: usize) -> HostileString {
        proptest::collection::vec(0u32..128, 0..max + 1).prop_map(|codes| {
            codes
                .into_iter()
                .map(|c| match c {
                    0..=31 => char::from_u32(c).unwrap(), // raw control chars
                    32..=39 => '"',
                    40..=47 => '\\',
                    48..=119 => char::from_u32(c).unwrap(),
                    _ => char::from_u32(0x1F680 + c).unwrap(), // astral
                })
                .collect()
        })
    }

    proptest! {
        /// Satellite pin: `field_str` must emit valid JSON for *any*
        /// string — quotes, backslashes, control characters, the lot —
        /// and the parsed value must equal the input exactly.
        #[test]
        fn field_str_escaping_round_trips(key in hostile_string(8), s in hostile_string(64)) {
            prop_assume!(key != "tail");
            let doc = JsonObject::new().field_str(&key, &s).field_u64("tail", 7).finish();
            let v = JsonValue::parse(&doc)
                .unwrap_or_else(|| panic!("emitted invalid JSON: {doc}"));
            prop_assert_eq!(v.get(&key).unwrap().as_str(), Some(s.as_str()));
            prop_assert_eq!(v.get("tail").unwrap().as_u64(), Some(7));
        }

        /// Numbers round-trip exactly through emit + parse — u64 at
        /// full precision, f64 from raw bit patterns (NaN and the
        /// infinities become JSON null).
        #[test]
        fn numbers_round_trip(u in 0u64..u64::MAX, bits in 0u64..u64::MAX) {
            let f = f64::from_bits(bits);
            let doc = JsonObject::new().field_u64("u", u).field_f64("f", f).finish();
            let v = JsonValue::parse(&doc).unwrap();
            prop_assert_eq!(v.get("u").unwrap().as_u64(), Some(u));
            if f.is_finite() {
                prop_assert_eq!(v.get("f").unwrap().as_f64(), Some(f));
            } else {
                prop_assert_eq!(v.get("f"), Some(&JsonValue::Null));
            }
        }
    }
}

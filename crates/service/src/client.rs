//! Minimal blocking client for the cc-service wire protocol.
//!
//! One request in flight per connection (the protocol has no request
//! ids); open several [`Client`]s for concurrency — that is exactly
//! what gives the server batches to coalesce.

use crate::protocol::{self, ProtoError, Request, Response};
use cc_vector::gt::Neighbor;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A connected service client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ProtoError> {
        protocol::write_request(&mut self.stream, req)?;
        protocol::read_response(&mut self.stream)?.ok_or_else(|| {
            ProtoError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> Result<(), ProtoError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// One query, returning the raw server response so the caller can
    /// react to [`Response::Overloaded`] / [`Response::DeadlineExceeded`]
    /// (`deadline_ms == 0` disables the deadline).
    pub fn query(
        &mut self,
        vector: &[f32],
        k: u32,
        deadline_ms: u32,
    ) -> Result<Response, ProtoError> {
        self.call(&Request::Query { k, deadline_ms, vector: vector.to_vec() })
    }

    /// Convenience query that must come back as a result set; any
    /// other response is an error.
    pub fn top_k(&mut self, vector: &[f32], k: u32) -> Result<Vec<Neighbor>, ProtoError> {
        match self.query(vector, k, 0)? {
            Response::TopK(nn) => Ok(nn),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the aggregated service statistics as a JSON document
    /// (field extraction via [`crate::json::find_u64`]).
    pub fn stats_json(&mut self) -> Result<String, ProtoError> {
        match self.call(&Request::Stats)? {
            Response::StatsJson(json) => Ok(json),
            other => Err(unexpected(&other)),
        }
    }

    /// Insert a vector; returns `(oid, seq)` — the object id the index
    /// assigned and the WAL sequence number. When this returns, the
    /// insert is durable (the server acks after its group-commit
    /// fsync).
    pub fn insert(&mut self, vector: &[f32]) -> Result<(u32, u64), ProtoError> {
        match self.call(&Request::Insert { vector: vector.to_vec() })? {
            Response::InsertAck { oid, seq } => Ok((oid, seq)),
            other => Err(unexpected(&other)),
        }
    }

    /// Delete an object by id; returns `(found, seq)`. `found == false`
    /// means the id was unknown or already deleted (still a successful,
    /// idempotent call).
    pub fn delete(&mut self, oid: u32) -> Result<(bool, u64), ProtoError> {
        match self.call(&Request::Delete { oid })? {
            Response::DeleteAck { oid: got, found, seq } => {
                if got != oid {
                    return Err(ProtoError::Malformed(format!(
                        "delete ack for oid {got}, requested {oid}"
                    )));
                }
                Ok((found, seq))
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to drain and exit; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ProtoError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ProtoError {
    ProtoError::Malformed(format!("unexpected response {resp:?}"))
}

//! Minimal blocking client for the cc-service wire protocol.
//!
//! One request in flight per connection (the protocol has no request
//! ids); open several [`Client`]s for concurrency — that is exactly
//! what gives the server batches to coalesce.
//!
//! Queries go through the builder-style [`QueryRequest`]:
//!
//! ```no_run
//! # use cc_service::{Client, QueryRequest, SearchOutcome};
//! # fn run(client: &mut Client) -> Result<(), cc_service::ProtoError> {
//! let req = QueryRequest::new(vec![0.5; 16]).k(10).deadline_ms(50).with_trace();
//! match client.search(&req)? {
//!     SearchOutcome::Result(r) => {
//!         println!("{} neighbors, trace {}", r.neighbors.len(), r.trace_id);
//!         if let Some(cost) = r.cost {
//!             println!("{} rounds, {} spans", cost.rounds, cost.spans.len());
//!         }
//!     }
//!     SearchOutcome::Overloaded => { /* back off and retry */ }
//!     SearchOutcome::DeadlineExceeded => { /* give up */ }
//!     SearchOutcome::Stale => { /* retry a fresher replica */ }
//! }
//! # Ok(()) }
//! ```

use crate::protocol::{self, CollectionInfo, ProtoError, QueryCost, Request, Response};
use crate::snapshot::StatsSnapshot;
use c2lsh::{ErrorKind, Predicate};
use cc_storage::wal::WalRecord;
use cc_vector::gt::Neighbor;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// One c-k-ANN query, built fluently and executed with
/// [`Client::search`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    vector: Vec<f32>,
    k: u32,
    deadline_ms: u32,
    want_stats: bool,
    want_trace: bool,
    filter: Option<Predicate>,
    collection: Option<String>,
    min_seq: u64,
}

impl QueryRequest {
    /// A query for the nearest neighbor of `vector` (raise with
    /// [`QueryRequest::k`]); no deadline, no stats, no trace.
    pub fn new(vector: impl Into<Vec<f32>>) -> Self {
        QueryRequest {
            vector: vector.into(),
            k: 1,
            deadline_ms: 0,
            want_stats: false,
            want_trace: false,
            filter: None,
            collection: None,
            min_seq: 0,
        }
    }

    /// Ask for the `k` nearest neighbors.
    pub fn k(mut self, k: u32) -> Self {
        self.k = k;
        self
    }

    /// Give up (server-side) if still queued after `ms` milliseconds;
    /// 0 disables the deadline.
    pub fn deadline_ms(mut self, ms: u32) -> Self {
        self.deadline_ms = ms;
        self
    }

    /// Attach a per-query cost block ([`QueryCost`]) to the answer.
    pub fn with_stats(mut self) -> Self {
        self.want_stats = true;
        self
    }

    /// Trace this query: the answer carries a server-assigned trace id
    /// and the captured span tree (implies [`QueryRequest::with_stats`]).
    pub fn with_trace(mut self) -> Self {
        self.want_trace = true;
        self
    }

    /// Only return points matching `pred`; the server evaluates it
    /// inside the collision-counting loop, before any distance work.
    pub fn filter(mut self, pred: Predicate) -> Self {
        self.filter = Some(pred);
        self
    }

    /// Route the query to a named collection instead of the default
    /// engine.
    pub fn collection(mut self, name: impl Into<String>) -> Self {
        self.collection = Some(name.into());
        self
    }

    /// Read-your-writes: only accept an answer from a node that has
    /// applied at least WAL sequence `seq` (e.g. the `seq` returned by
    /// an insert ack). A lagging follower answers
    /// [`SearchOutcome::Stale`] instead of serving old data; 0 (the
    /// default) disables the bound.
    pub fn min_seq(mut self, seq: u64) -> Self {
        self.min_seq = seq;
        self
    }

    fn to_wire(&self) -> Request {
        Request::QueryV2 {
            k: self.k,
            deadline_ms: self.deadline_ms,
            want_stats: self.want_stats,
            want_trace: self.want_trace,
            vector: self.vector.clone(),
            filter: self.filter,
            collection: self.collection.clone(),
            min_seq: self.min_seq,
        }
    }
}

/// A served query: the answer plus whatever extras were requested.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The k nearest verified candidates, ascending by distance.
    pub neighbors: Vec<Neighbor>,
    /// Per-query cost block; present iff the request asked via
    /// [`QueryRequest::with_stats`] / [`QueryRequest::with_trace`].
    pub cost: Option<QueryCost>,
    /// Server-assigned trace id (0 unless the request asked for a
    /// trace); cross-references the server's `/slowlog`.
    pub trace_id: u64,
}

/// How the server disposed of a [`QueryRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum SearchOutcome {
    /// Served; the payload.
    Result(QueryResult),
    /// Refused at admission (queue full) — retry later.
    Overloaded,
    /// The deadline expired while the query was queued.
    DeadlineExceeded,
    /// The node has not caught up to the request's
    /// [`QueryRequest::min_seq`] bound — ask another replica (or the
    /// primary) or retry after replication catches up.
    Stale,
}

impl SearchOutcome {
    /// Unwrap the served result; maps [`SearchOutcome::Overloaded`] and
    /// [`SearchOutcome::DeadlineExceeded`] to a [`ProtoError`] for
    /// callers that treat them as failures.
    pub fn into_result(self) -> Result<QueryResult, ProtoError> {
        match self {
            SearchOutcome::Result(r) => Ok(r),
            SearchOutcome::Overloaded => Err(ProtoError::Malformed("server overloaded".into())),
            SearchOutcome::DeadlineExceeded => {
                Err(ProtoError::Malformed("deadline exceeded".into()))
            }
            SearchOutcome::Stale => {
                Err(ProtoError::Malformed("replica stale for requested min_seq".into()))
            }
        }
    }
}

/// A connected service client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ProtoError> {
        protocol::write_request(&mut self.stream, req)?;
        protocol::read_response(&mut self.stream)?.ok_or_else(|| {
            ProtoError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> Result<(), ProtoError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Execute one [`QueryRequest`], reporting admission-control
    /// outcomes ([`SearchOutcome::Overloaded`] /
    /// [`SearchOutcome::DeadlineExceeded`]) in-band so the caller can
    /// react; server-side rejections ([`Response::Error`]) surface as
    /// `Err`.
    pub fn search(&mut self, req: &QueryRequest) -> Result<SearchOutcome, ProtoError> {
        match self.call(&req.to_wire())? {
            Response::TopKV2 { trace_id, neighbors, cost } => {
                Ok(SearchOutcome::Result(QueryResult { neighbors, cost, trace_id }))
            }
            Response::Overloaded => Ok(SearchOutcome::Overloaded),
            Response::DeadlineExceeded => Ok(SearchOutcome::DeadlineExceeded),
            Response::Error(e) if e.kind() == ErrorKind::Stale => Ok(SearchOutcome::Stale),
            Response::Error(e) => Err(ProtoError::Malformed(e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// Convenience: execute `req` and unwrap the served result (treats
    /// overload/deadline as errors). For the common
    /// "neighbors-or-bust" call site.
    pub fn search_result(&mut self, req: &QueryRequest) -> Result<QueryResult, ProtoError> {
        self.search(req)?.into_result()
    }

    /// Fetch the aggregated service statistics as a JSON document
    /// (field extraction via [`crate::json::find_u64`], or parse with
    /// [`Client::stats`]).
    pub fn stats_json(&mut self) -> Result<String, ProtoError> {
        match self.call(&Request::Stats)? {
            Response::StatsJson(json) => Ok(json),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch and parse the service statistics into a typed
    /// [`StatsSnapshot`] (understands both the schema-1 and schema-2
    /// envelopes).
    pub fn stats(&mut self) -> Result<StatsSnapshot, ProtoError> {
        let json = self.stats_json()?;
        StatsSnapshot::parse(&json)
            .ok_or_else(|| ProtoError::Malformed("unparseable stats document".into()))
    }

    /// Fetch the Prometheus text exposition over the binary protocol
    /// (the same document `--metrics-addr` serves at `/metrics`).
    pub fn metrics_text(&mut self) -> Result<String, ProtoError> {
        match self.call(&Request::Metrics)? {
            Response::MetricsText(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Insert a vector; returns `(oid, seq)` — the object id the index
    /// assigned and the WAL sequence number. When this returns, the
    /// insert is durable (the server acks after its group-commit
    /// fsync).
    pub fn insert(&mut self, vector: &[f32]) -> Result<(u32, u64), ProtoError> {
        match self.call(&Request::Insert { vector: vector.to_vec() })? {
            Response::InsertAck { oid, seq } => Ok((oid, seq)),
            other => Err(unexpected(&other)),
        }
    }

    /// Insert a vector carrying a metadata payload — tag bitmask and
    /// label — into the default engine (`collection = None`) or a
    /// named collection. Returns `(oid, seq)` with the same durability
    /// contract as [`Client::insert`].
    pub fn insert_with_meta(
        &mut self,
        collection: Option<&str>,
        vector: &[f32],
        tag: u64,
        label: u32,
    ) -> Result<(u32, u64), ProtoError> {
        let req = Request::InsertV2 {
            collection: collection.map(str::to_string),
            tag,
            label,
            vector: vector.to_vec(),
        };
        match self.call(&req)? {
            Response::InsertAck { oid, seq } => Ok((oid, seq)),
            Response::Error(e) => Err(ProtoError::Malformed(e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// Create a collection with dimensionality `dim`; returns whether
    /// it already existed (idempotent either way).
    pub fn create_collection(&mut self, name: &str, dim: u32) -> Result<bool, ProtoError> {
        match self.call(&Request::CreateCollection { name: name.into(), dim })? {
            Response::CollectionAck { existed } => Ok(existed),
            Response::Error(e) => Err(ProtoError::Malformed(e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// Drop a collection and its on-disk state; returns whether it
    /// existed.
    pub fn drop_collection(&mut self, name: &str) -> Result<bool, ProtoError> {
        match self.call(&Request::DropCollection { name: name.into() })? {
            Response::CollectionAck { existed } => Ok(existed),
            Response::Error(e) => Err(ProtoError::Malformed(e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// List all collections with their dimensionality and live object
    /// counts.
    pub fn list_collections(&mut self) -> Result<Vec<CollectionInfo>, ProtoError> {
        match self.call(&Request::ListCollections)? {
            Response::CollectionList(infos) => Ok(infos),
            other => Err(unexpected(&other)),
        }
    }

    /// Delete an object by id; returns `(found, seq)`. `found == false`
    /// means the id was unknown or already deleted (still a successful,
    /// idempotent call).
    pub fn delete(&mut self, oid: u32) -> Result<(bool, u64), ProtoError> {
        match self.call(&Request::Delete { oid })? {
            Response::DeleteAck { oid: got, found, seq } => {
                if got != oid {
                    return Err(ProtoError::Malformed(format!(
                        "delete ack for oid {got}, requested {oid}"
                    )));
                }
                Ok((found, seq))
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Subscribe this connection to the server's replication stream,
    /// resuming after `from_seq` (0 = from the beginning). Returns the
    /// primary's high-water sequence and the first batch of records
    /// (possibly empty when already caught up). Keep the stream alive
    /// with [`Client::repl_ack`].
    pub fn repl_subscribe(
        &mut self,
        replica: &str,
        from_seq: u64,
    ) -> Result<(u64, Vec<WalRecord>), ProtoError> {
        let req = Request::ReplSubscribe { replica: replica.into(), from_seq };
        match self.call(&req)? {
            Response::ReplBatch { last_seq, records } => Ok((last_seq, records)),
            Response::Error(e) => Err(ProtoError::Malformed(e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// Acknowledge that every record up to `applied_seq` is applied and
    /// durable on this subscriber; the server long-polls and answers
    /// with the next batch (empty = heartbeat, still caught up).
    pub fn repl_ack(&mut self, applied_seq: u64) -> Result<(u64, Vec<WalRecord>), ProtoError> {
        match self.call(&Request::ReplAck { applied_seq })? {
            Response::ReplBatch { last_seq, records } => Ok((last_seq, records)),
            Response::Error(e) => Err(ProtoError::Malformed(e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to drain and exit; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ProtoError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ProtoError {
    ProtoError::Malformed(format!("unexpected response {resp:?}"))
}

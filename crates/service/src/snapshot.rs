//! The typed, versioned view of the stats frame.
//!
//! The server emits a JSON document under a `"schema": 2` envelope
//! (see `render_stats` in [`crate::server`]); every schema-1 field
//! kept its exact name and position, schema 2 *added* per-stage
//! nanosecond totals and an optional `latency` object.
//! [`StatsSnapshot::parse`] understands both: a document without a
//! `schema` marker is treated as schema 1 and the new fields default
//! to zero, so a new client can read an old server and (because the
//! v1 fields are still emitted) an old client can read a new server.

use crate::json::JsonValue;

/// Engine-side work counters, folded across all flushes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineSnapshot {
    /// Total virtual-rehashing rounds.
    pub rounds: u64,
    /// Total collision-count increments.
    pub collisions: u64,
    /// Total candidates verified.
    pub verified: u64,
    /// Total candidates cut short by early abandonment.
    pub abandoned: u64,
    /// Total candidates rejected by filter predicates before
    /// verification (0 on documents from servers without filtered
    /// search).
    pub filtered: u64,
    /// Queries that stopped via T1.
    pub t1: u64,
    /// Queries that stopped via T2.
    pub t2: u64,
    /// Queries that exhausted their windows.
    pub exhausted: u64,
    /// Backend page reads.
    pub io_reads: u64,
    /// Engine wall-clock nanoseconds.
    pub elapsed_nanos: u64,
    /// Nanoseconds hashing (schema ≥ 2, else 0).
    pub stage_hash_nanos: u64,
    /// Nanoseconds counting collisions (schema ≥ 2, else 0).
    pub stage_count_nanos: u64,
    /// Nanoseconds verifying candidates (schema ≥ 2, else 0).
    pub stage_verify_nanos: u64,
    /// Nanoseconds ranking (schema ≥ 2, else 0).
    pub stage_rank_nanos: u64,
}

/// Cumulative write-path counters (absent for immutable engines).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MutationSnapshot {
    /// Vectors inserted.
    pub inserts: u64,
    /// Objects deleted.
    pub deletes: u64,
    /// Delete requests whose id was unknown.
    pub delete_misses: u64,
    /// Mutation batches applied.
    pub batches: u64,
    /// WAL records appended.
    pub wal_records: u64,
    /// WAL fsyncs issued.
    pub wal_syncs: u64,
    /// Bytes appended to the WAL.
    pub wal_bytes: u64,
    /// Highest acknowledged sequence number.
    pub last_seq: u64,
}

/// Live latency quantiles (present only when the server runs with
/// observability on, schema ≥ 2).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencySnapshot {
    /// Median end-to-end query latency, nanoseconds.
    pub query_p50_nanos: u64,
    /// 99th-percentile end-to-end query latency, nanoseconds.
    pub query_p99_nanos: u64,
}

/// One parsed stats document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Envelope version (1 when the document predates the marker).
    pub schema: u64,
    /// `"serving"` or `"draining"`.
    pub state: String,
    /// Shards behind the engine.
    pub shards: u64,
    /// Live objects served.
    pub objects: u64,
    /// Dataset dimensionality.
    pub dim: u64,
    /// Queries answered with a top-k response.
    pub queries: u64,
    /// Engine flushes performed.
    pub batches: u64,
    /// Largest number of queries coalesced into one flush.
    pub max_batch: u64,
    /// Queries refused at admission.
    pub overloaded: u64,
    /// Queries whose deadline expired while queued.
    pub deadline_expired: u64,
    /// Requests answered with an error frame.
    pub errors: u64,
    /// Inserts acknowledged.
    pub inserts: u64,
    /// Deletes acknowledged.
    pub deletes: u64,
    /// Flushes that applied at least one mutation.
    pub mutation_batches: u64,
    /// WAL-truncating checkpoints written.
    pub checkpoints: u64,
    /// Live named collections (0 on documents from servers without
    /// collection support).
    pub collections: u64,
    /// Engine-side work counters.
    pub engine: EngineSnapshot,
    /// Write-path counters, when the engine is mutable.
    pub mutations: Option<MutationSnapshot>,
    /// Live latency quantiles, when observability is on.
    pub latency: Option<LatencySnapshot>,
}

fn u(v: &JsonValue, key: &str) -> u64 {
    v.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

impl StatsSnapshot {
    /// Parse a stats document of either schema. Returns `None` only
    /// when the text is not valid JSON or not an object — missing
    /// fields (an older schema) default to zero/absent.
    pub fn parse(json: &str) -> Option<StatsSnapshot> {
        let doc = JsonValue::parse(json)?;
        if !matches!(doc, JsonValue::Object(_)) {
            return None;
        }
        let engine = doc.get("engine").map(|e| EngineSnapshot {
            rounds: u(e, "rounds"),
            collisions: u(e, "collisions"),
            verified: u(e, "verified"),
            abandoned: u(e, "abandoned"),
            filtered: u(e, "filtered"),
            t1: u(e, "t1"),
            t2: u(e, "t2"),
            exhausted: u(e, "exhausted"),
            io_reads: u(e, "io_reads"),
            elapsed_nanos: u(e, "elapsed_nanos"),
            stage_hash_nanos: u(e, "stage_hash_nanos"),
            stage_count_nanos: u(e, "stage_count_nanos"),
            stage_verify_nanos: u(e, "stage_verify_nanos"),
            stage_rank_nanos: u(e, "stage_rank_nanos"),
        });
        let mutations = doc.get("mutations").map(|m| MutationSnapshot {
            inserts: u(m, "inserts"),
            deletes: u(m, "deletes"),
            delete_misses: u(m, "delete_misses"),
            batches: u(m, "batches"),
            wal_records: u(m, "wal_records"),
            wal_syncs: u(m, "wal_syncs"),
            wal_bytes: u(m, "wal_bytes"),
            last_seq: u(m, "last_seq"),
        });
        let latency = doc.get("latency").map(|l| LatencySnapshot {
            query_p50_nanos: u(l, "query_p50_nanos"),
            query_p99_nanos: u(l, "query_p99_nanos"),
        });
        Some(StatsSnapshot {
            schema: doc.get("schema").and_then(JsonValue::as_u64).unwrap_or(1),
            state: doc.get("state").and_then(JsonValue::as_str).unwrap_or("").to_string(),
            shards: u(&doc, "shards"),
            objects: u(&doc, "objects"),
            dim: u(&doc, "dim"),
            queries: u(&doc, "queries"),
            batches: u(&doc, "batches"),
            max_batch: u(&doc, "max_batch"),
            overloaded: u(&doc, "overloaded"),
            deadline_expired: u(&doc, "deadline_expired"),
            errors: u(&doc, "errors"),
            inserts: u(&doc, "inserts"),
            deletes: u(&doc, "deletes"),
            mutation_batches: u(&doc, "mutation_batches"),
            checkpoints: u(&doc, "checkpoints"),
            collections: u(&doc, "collections"),
            engine: engine.unwrap_or_default(),
            mutations,
            latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A schema-1 document, byte-for-byte what the previous server
    /// release emitted.
    const V1_DOC: &str = "{\"state\":\"serving\",\"shards\":4,\"objects\":400,\"dim\":8,\
         \"queries\":11,\"batches\":3,\"max_batch\":8,\"overloaded\":1,\
         \"deadline_expired\":0,\"errors\":2,\"inserts\":0,\"deletes\":0,\
         \"mutation_batches\":0,\"checkpoints\":0,\
         \"engine\":{\"rounds\":30,\"collisions\":900,\"verified\":120,\
         \"abandoned\":5,\"t1\":9,\"t2\":2,\"exhausted\":0,\"io_reads\":0,\
         \"elapsed_nanos\":123456}}";

    #[test]
    fn parses_a_v1_document() {
        let s = StatsSnapshot::parse(V1_DOC).unwrap();
        assert_eq!(s.schema, 1, "no marker means schema 1");
        assert_eq!(s.state, "serving");
        assert_eq!(s.shards, 4);
        assert_eq!(s.queries, 11);
        assert_eq!(s.engine.collisions, 900);
        assert_eq!(s.engine.stage_hash_nanos, 0, "v1 has no stage fields");
        assert_eq!(s.engine.filtered, 0, "v1 has no filtered counter");
        assert_eq!(s.collections, 0, "v1 has no collections");
        assert!(s.mutations.is_none());
        assert!(s.latency.is_none());
    }

    #[test]
    fn parses_a_v2_document_with_extras() {
        let doc = "{\"schema\":2,\"state\":\"draining\",\"shards\":1,\"objects\":10,\
             \"dim\":4,\"queries\":5,\"batches\":2,\"max_batch\":3,\"overloaded\":0,\
             \"deadline_expired\":0,\"errors\":0,\"inserts\":7,\"deletes\":1,\
             \"mutation_batches\":2,\"checkpoints\":1,\
             \"engine\":{\"rounds\":9,\"collisions\":100,\"verified\":20,\
             \"abandoned\":0,\"t1\":5,\"t2\":0,\"exhausted\":0,\"io_reads\":3,\
             \"elapsed_nanos\":999,\"stage_hash_nanos\":10,\"stage_count_nanos\":700,\
             \"stage_verify_nanos\":200,\"stage_rank_nanos\":5},\
             \"mutations\":{\"inserts\":7,\"deletes\":1,\"delete_misses\":0,\
             \"batches\":2,\"wal_records\":8,\"wal_syncs\":2,\"wal_bytes\":400,\
             \"last_seq\":8},\
             \"latency\":{\"query_p50_nanos\":50000,\"query_p99_nanos\":900000}}";
        let s = StatsSnapshot::parse(doc).unwrap();
        assert_eq!(s.schema, 2);
        assert_eq!(s.state, "draining");
        assert_eq!(s.engine.stage_count_nanos, 700);
        let m = s.mutations.unwrap();
        assert_eq!(m.wal_records, 8);
        assert_eq!(m.last_seq, 8);
        let l = s.latency.unwrap();
        assert_eq!(l.query_p50_nanos, 50_000);
        assert_eq!(l.query_p99_nanos, 900_000);
    }

    #[test]
    fn rejects_non_objects() {
        assert!(StatsSnapshot::parse("[1,2,3]").is_none());
        assert!(StatsSnapshot::parse("not json").is_none());
    }
}

//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is `u32` payload length (little-endian, excluding the
//! length word itself) followed by the payload; the payload's first
//! byte is the opcode. Requests use opcodes `0x01..=0x04`, responses
//! set the high bit. All multi-byte integers and floats are
//! little-endian, matching the persistence format of the core crate.
//!
//! ```text
//! request  0x01 Ping
//!          0x02 Query     u32 k | u32 deadline_ms (0 = none) |
//!                         u32 dim | dim × f32
//!          0x03 Stats
//!          0x04 Shutdown
//!          0x05 Insert    u32 dim | dim × f32
//!          0x06 Delete    u32 oid
//!          0x07 QueryV2   u32 k | u32 deadline_ms | u32 flags
//!                         (bit0 = want stats, bit1 = want trace,
//!                         bit2 = filter, bit3 = collection,
//!                         bit4 = min_seq) |
//!                         u32 dim | dim × f32 |
//!                         [filter block, iff bit2] |
//!                         [u16 name_len | name, iff bit3] |
//!                         [u64 min_seq, iff bit4]
//!          0x08 Metrics             (Prometheus text exposition)
//!          0x09 CreateCollection  u16 name_len | name | u32 dim
//!          0x0A DropCollection    u16 name_len | name
//!          0x0B ListCollections
//!          0x0C InsertV2  u16 name_len (0 = default engine) | name |
//!                         u64 tag | u32 label | u32 dim | dim × f32
//!          0x0D ReplSubscribe  u16 name_len | replica name |
//!                              u64 from_seq (ship records > from_seq)
//!          0x0E ReplAck   u64 applied_seq   (long-polls the next batch)
//!
//! response 0x81 Pong
//!          0x82 TopK      u32 count | count × (u32 id, f64 dist)
//!          0x83 Overloaded          (admission queue full)
//!          0x84 DeadlineExceeded    (expired while queued)
//!          0x85 StatsJson utf-8 JSON document
//!          0x86 ShutdownAck
//!          0x87 InsertAck u32 oid | u64 seq
//!          0x88 DeleteAck u8 found (0/1) | u32 oid | u64 seq
//!          0x89 TopKV2    u64 trace_id (0 = untraced) | u32 count |
//!                         count × (u32 id, f64 dist) |
//!                         u8 has_stats | [QueryCost, see below]
//!          0x8A MetricsText utf-8 Prometheus text document
//!          0x8B CollectionAck  u8 existed (0/1)
//!          0x8C CollectionList u32 count | count × (u16 name_len |
//!                              name | u32 dim | u64 objects)
//!          0x8F Error     u16 ErrorKind code | utf-8 message
//!          0x90 ReplBatch u64 last_seq | u32 count | count × record
//! ```
//!
//! A replication *record* is one WAL entry on the wire: `u64 seq | u8
//! kind`, where kind 1 (insert) continues `u32 oid | u64 tag | u32
//! label | u32 dim | dim × f32` and kind 2 (delete) continues `u32
//! oid`. A `ReplBatch` with no records is a heartbeat: `last_seq`
//! tells the subscriber the primary's high-water mark (equal to the
//! acked seq when caught up). The subscribe/ack exchange is a pull
//! loop: the follower sends `ReplSubscribe` once, applies each
//! `ReplBatch`, and answers with `ReplAck` to request the next.
//!
//! The QueryV2 *filter block* serializes a [`c2lsh::Predicate`]: `u8
//! clause mask (bit0 = label_eq, bit1 = tag_any, bit2 = tag_all)`
//! followed by the present clauses in that order (`u32 label`, `u64
//! tag_any`, `u64 tag_all`). A request without the filter or
//! collection flag is byte-identical to the pre-extension frame, so
//! old captures replay unchanged.
//!
//! `QueryCost` (present when `has_stats = 1`): `u32 rounds | u64
//! collisions | u64 verified | u64 abandoned | u64 filtered | u64
//! io_reads | u64 elapsed_nanos | u64 snapshot_seq | 4 × u64 stage
//! nanos (hash, count, verify, rank) | u32 span_count | span_count ×
//! (u8 name_len | name utf-8 | u64 start_ns | u64 dur_ns | u8 depth |
//! u64 detail)`.
//!
//! Error frames carry the *stable numeric code* of
//! [`c2lsh::ErrorKind`] ahead of the prose, so clients branch on the
//! kind without string matching; unknown codes decode as
//! `ErrorKind::Internal`.
//!
//! An `InsertAck`/`DeleteAck` is sent only after the mutation's WAL
//! record is fsynced, so receiving one certifies durability; `seq` is
//! the WAL sequence number (for a delete miss, `found = 0` and `seq`
//! is the server's current high-water mark).
//!
//! Distances travel as `f64` so a served answer is bit-identical to a
//! local [`cc_vector::gt::Neighbor`] — the integration tests compare
//! them with `total_cmp` equality, no tolerance.

use c2lsh::{Error, ErrorKind, Predicate};
use cc_storage::wal::{WalOp, WalRecord};
use cc_vector::gt::Neighbor;
use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload (guards the length word against
/// garbage: 16 MiB comfortably holds a 1M-dimensional query).
pub const MAX_FRAME: usize = 16 << 20;

/// A span as it travels the wire: like [`c2lsh::SpanRecord`] but with
/// an owned name, since the receiving process cannot intern the
/// sender's `&'static str`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpan {
    /// Stage name (`"hash"`, `"round"`, `"rank"`, …).
    pub name: String,
    /// Nanoseconds from the start of the operation to span open.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth (0 = top level).
    pub depth: u8,
    /// Span-specific payload (radius, candidate count, …).
    pub detail: u64,
}

/// One row of a [`Response::CollectionList`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionInfo {
    /// Collection name.
    pub name: String,
    /// Dimensionality of its vectors.
    pub dim: u32,
    /// Live objects it currently holds.
    pub objects: u64,
}

/// Per-query cost summary a [`Request::QueryV2`] can ask for: the
/// engine-side counters plus stage timings and (when tracing) the
/// span tree, compact enough to ride every response.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryCost {
    /// Virtual-rehashing rounds executed.
    pub rounds: u32,
    /// Total collisions counted.
    pub collisions: u64,
    /// Candidates whose exact distance was computed.
    pub verified: u64,
    /// Candidates abandoned by early-termination bounds.
    pub abandoned: u64,
    /// Candidates rejected by the query's filter predicate before any
    /// distance work.
    pub filtered: u64,
    /// Backend page reads (0 for in-memory backends).
    pub io_reads: u64,
    /// Wall-clock nanoseconds the engine spent on this query.
    pub elapsed_nanos: u64,
    /// Snapshot sequence number the query ran against.
    pub snapshot_seq: u64,
    /// Nanoseconds hashing the query into table keys.
    pub hash_ns: u64,
    /// Nanoseconds scanning tables / counting collisions.
    pub count_ns: u64,
    /// Nanoseconds verifying candidate distances.
    pub verify_ns: u64,
    /// Nanoseconds ranking / truncating the candidate set.
    pub rank_ns: u64,
    /// Span tree (empty unless the query was traced).
    pub spans: Vec<WireSpan>,
}

impl QueryCost {
    /// Summarize an engine-side [`c2lsh::QueryStats`] for the wire.
    pub fn from_stats(stats: &c2lsh::QueryStats) -> Self {
        QueryCost {
            rounds: stats.rounds,
            collisions: stats.collisions_counted,
            verified: stats.candidates_verified as u64,
            abandoned: stats.candidates_abandoned as u64,
            filtered: stats.candidates_filtered as u64,
            io_reads: stats.io.reads,
            elapsed_nanos: stats.elapsed_nanos,
            snapshot_seq: stats.snapshot_seq,
            hash_ns: stats.stage.hash,
            count_ns: stats.stage.count,
            verify_ns: stats.stage.verify,
            rank_ns: stats.stage.rank,
            spans: stats
                .spans
                .iter()
                .map(|s| WireSpan {
                    name: s.name.to_string(),
                    start_ns: s.start_ns,
                    dur_ns: s.dur_ns,
                    depth: s.depth,
                    detail: s.detail,
                })
                .collect(),
        }
    }
}

/// A client-to-server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// One c-k-ANN query.
    Query {
        /// Number of neighbors wanted.
        k: u32,
        /// Milliseconds the request may wait in the server's queue
        /// before the server gives up on it; 0 disables the deadline.
        deadline_ms: u32,
        /// The query vector.
        vector: Vec<f32>,
    },
    /// Ask for the aggregated service statistics as JSON.
    Stats,
    /// Begin graceful shutdown: the server stops admitting work,
    /// drains its queue, answers everything in flight, then exits.
    Shutdown,
    /// Insert a vector; answered with [`Response::InsertAck`] once the
    /// mutation is durable (or [`Response::Error`] if the engine is
    /// immutable or the vector invalid).
    Insert {
        /// The vector to insert.
        vector: Vec<f32>,
    },
    /// Delete an object by id; answered with [`Response::DeleteAck`].
    Delete {
        /// The object id to remove.
        oid: u32,
    },
    /// One c-k-ANN query under the v2 contract: answered with
    /// [`Response::TopKV2`], optionally carrying per-query stats and a
    /// trace. Built by [`crate::QueryRequest`].
    QueryV2 {
        /// Number of neighbors wanted.
        k: u32,
        /// Queue-wait deadline in milliseconds; 0 disables it.
        deadline_ms: u32,
        /// Return a [`QueryCost`] block with the answer.
        want_stats: bool,
        /// Trace this query: capture the span tree (implies stats on
        /// the wire) and assign a trace id.
        want_trace: bool,
        /// The query vector.
        vector: Vec<f32>,
        /// Evaluate this predicate inside the collision-counting loop;
        /// only matching points are verified and returned.
        filter: Option<Predicate>,
        /// Route the query to a named collection instead of the
        /// default engine.
        collection: Option<String>,
        /// Read-your-writes freshness bound: the serving node must have
        /// applied at least this sequence number, or answer
        /// [`ErrorKind::Stale`] instead of serving stale data. 0 (the
        /// default) disables the bound and keeps the frame byte-compatible
        /// with pre-replication captures.
        min_seq: u64,
    },
    /// Ask for the Prometheus text exposition (same document the
    /// `--metrics-addr` HTTP listener serves at `/metrics`).
    Metrics,
    /// Create a named collection with its own index (and, on a durable
    /// server, its own WAL directory). Idempotent: creating an
    /// existing collection answers [`Response::CollectionAck`] with
    /// `existed = true` and leaves it untouched.
    CreateCollection {
        /// Collection name (1–64 chars of `[A-Za-z0-9_-]`).
        name: String,
        /// Dimensionality of the collection's vectors.
        dim: u32,
    },
    /// Drop a collection and its on-disk state. Idempotent.
    DropCollection {
        /// Collection name.
        name: String,
    },
    /// List all collections; answered with
    /// [`Response::CollectionList`].
    ListCollections,
    /// Insert a vector with its [`c2lsh::PointMeta`] payload, into a
    /// named collection or (empty name) the default engine.
    InsertV2 {
        /// Target collection; `None` routes to the default engine.
        collection: Option<String>,
        /// Tag bitmask stored with the point.
        tag: u64,
        /// Label id stored with the point.
        label: u32,
        /// The vector to insert.
        vector: Vec<f32>,
    },
    /// Subscribe this connection to the primary's replication stream,
    /// asking for records after `from_seq`. Answered with
    /// [`Response::ReplBatch`]; the subscriber keeps the stream alive
    /// with [`Request::ReplAck`].
    ReplSubscribe {
        /// Subscriber's self-chosen name (shows up in the primary's
        /// `cc_replica_lag_seq` gauge; same charset rules as
        /// collection names).
        replica: String,
        /// Ship records with sequence numbers strictly greater than
        /// this (the subscriber's current high-water mark).
        from_seq: u64,
    },
    /// Acknowledge application through `applied_seq` and long-poll the
    /// next [`Response::ReplBatch`]. Only valid after a
    /// [`Request::ReplSubscribe`] on the same connection.
    ReplAck {
        /// Highest sequence number the subscriber has durably applied.
        applied_seq: u64,
    },
}

/// A server-to-client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// The k nearest verified candidates, ascending by distance.
    TopK(Vec<Neighbor>),
    /// The admission queue was full; retry later.
    Overloaded,
    /// The request's deadline expired before the engine ran it.
    DeadlineExceeded,
    /// Aggregated service statistics, serialized by [`crate::json`].
    StatsJson(String),
    /// Shutdown acknowledged; the connection will close after the
    /// drain completes.
    ShutdownAck,
    /// The insert was applied and is durable.
    InsertAck {
        /// Object id the index assigned.
        oid: u32,
        /// WAL sequence number of the mutation.
        seq: u64,
    },
    /// The delete was processed and (when `found`) is durable.
    DeleteAck {
        /// The requested object id.
        oid: u32,
        /// `true` when the object existed and was removed.
        found: bool,
        /// WAL sequence number (high-water mark for a miss).
        seq: u64,
    },
    /// Answer to a [`Request::QueryV2`]: neighbors plus the optional
    /// cost block and trace id.
    TopKV2 {
        /// Server-assigned trace id (0 when the query was not traced).
        trace_id: u64,
        /// The k nearest verified candidates, ascending by distance.
        neighbors: Vec<Neighbor>,
        /// Per-query cost summary, present when the request set
        /// `want_stats` (or `want_trace`).
        cost: Option<QueryCost>,
    },
    /// Prometheus text exposition document.
    MetricsText(String),
    /// Reply to [`Request::CreateCollection`] /
    /// [`Request::DropCollection`]: whether the collection already
    /// existed (create) or was present to drop (drop).
    CollectionAck {
        /// See above; both operations are idempotent either way.
        existed: bool,
    },
    /// Reply to [`Request::ListCollections`].
    CollectionList(Vec<CollectionInfo>),
    /// The request was rejected (bad dimensionality, k out of range,
    /// server draining, …). Carries the unified [`c2lsh::Error`] whose
    /// [`ErrorKind`] code rides the wire numerically.
    Error(Error),
    /// A batch of WAL records for a replication subscriber. Empty
    /// `records` is a heartbeat; `last_seq` is the primary's current
    /// high-water mark either way.
    ReplBatch {
        /// The primary's highest acknowledged sequence number.
        last_seq: u64,
        /// Records after the subscriber's position, in sequence order.
        records: Vec<WalRecord>,
    },
}

/// Why decoding a frame failed.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed (includes clean EOF mid-frame).
    Io(io::Error),
    /// The bytes don't parse as a frame of the expected direction.
    Malformed(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl From<ProtoError> for Error {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(io) => Error::new(ErrorKind::Io, io.to_string()),
            ProtoError::Malformed(m) => Error::new(ErrorKind::Protocol, m),
        }
    }
}

const OP_PING: u8 = 0x01;
const OP_QUERY: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;
const OP_INSERT: u8 = 0x05;
const OP_DELETE: u8 = 0x06;
const OP_QUERY_V2: u8 = 0x07;
const OP_METRICS: u8 = 0x08;
const OP_CREATE_COLLECTION: u8 = 0x09;
const OP_DROP_COLLECTION: u8 = 0x0A;
const OP_LIST_COLLECTIONS: u8 = 0x0B;
const OP_INSERT_V2: u8 = 0x0C;
const OP_REPL_SUBSCRIBE: u8 = 0x0D;
const OP_REPL_ACK: u8 = 0x0E;
const OP_PONG: u8 = 0x81;
const OP_TOPK: u8 = 0x82;
const OP_OVERLOADED: u8 = 0x83;
const OP_DEADLINE: u8 = 0x84;
const OP_STATS_JSON: u8 = 0x85;
const OP_SHUTDOWN_ACK: u8 = 0x86;
const OP_INSERT_ACK: u8 = 0x87;
const OP_DELETE_ACK: u8 = 0x88;
const OP_TOPK_V2: u8 = 0x89;
const OP_METRICS_TEXT: u8 = 0x8A;
const OP_COLLECTION_ACK: u8 = 0x8B;
const OP_COLLECTION_LIST: u8 = 0x8C;
const OP_ERROR: u8 = 0x8F;
const OP_REPL_BATCH: u8 = 0x90;

/// QueryV2 flag bits.
const FLAG_WANT_STATS: u32 = 1;
const FLAG_WANT_TRACE: u32 = 2;
const FLAG_FILTER: u32 = 4;
const FLAG_COLLECTION: u32 = 8;
const FLAG_MIN_SEQ: u32 = 16;

/// Replication record kind bytes.
const REC_INSERT: u8 = 1;
const REC_DELETE: u8 = 2;

/// Filter-block clause-mask bits.
const CLAUSE_LABEL: u8 = 1;
const CLAUSE_TAG_ANY: u8 = 2;
const CLAUSE_TAG_ALL: u8 = 4;

/// Longest collection name the wire accepts (the server is stricter).
const MAX_NAME: usize = 256;

fn put_name(buf: &mut Vec<u8>, name: &str) {
    let bytes = name.as_bytes();
    debug_assert!(bytes.len() <= MAX_NAME, "collection names are short");
    buf.extend_from_slice(&(bytes.len().min(MAX_NAME) as u16).to_le_bytes());
    buf.extend_from_slice(&bytes[..bytes.len().min(MAX_NAME)]);
}

fn get_name(cur: &mut Cur<'_>) -> Result<String, ProtoError> {
    let len = cur.u16()? as usize;
    if len > MAX_NAME {
        return Err(ProtoError::Malformed(format!("collection name of {len} bytes")));
    }
    String::from_utf8(cur.take(len)?.to_vec())
        .map_err(|_| ProtoError::Malformed("invalid UTF-8 collection name".into()))
}

fn put_filter(buf: &mut Vec<u8>, pred: &Predicate) {
    let mut mask = 0u8;
    if pred.label_eq.is_some() {
        mask |= CLAUSE_LABEL;
    }
    if pred.tag_any.is_some() {
        mask |= CLAUSE_TAG_ANY;
    }
    if pred.tag_all.is_some() {
        mask |= CLAUSE_TAG_ALL;
    }
    buf.push(mask);
    if let Some(label) = pred.label_eq {
        put_u32(buf, label);
    }
    if let Some(m) = pred.tag_any {
        put_u64(buf, m);
    }
    if let Some(m) = pred.tag_all {
        put_u64(buf, m);
    }
}

fn get_filter(cur: &mut Cur<'_>) -> Result<Predicate, ProtoError> {
    let mask = cur.u8()?;
    if mask & !(CLAUSE_LABEL | CLAUSE_TAG_ANY | CLAUSE_TAG_ALL) != 0 {
        return Err(ProtoError::Malformed(format!("unknown filter clause bits {mask:#04x}")));
    }
    let mut pred = Predicate::any();
    if mask & CLAUSE_LABEL != 0 {
        pred.label_eq = Some(cur.u32()?);
    }
    if mask & CLAUSE_TAG_ANY != 0 {
        pred.tag_any = Some(cur.u64()?);
    }
    if mask & CLAUSE_TAG_ALL != 0 {
        pred.tag_all = Some(cur.u64()?);
    }
    Ok(pred)
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_wal_record(buf: &mut Vec<u8>, rec: &WalRecord) {
    put_u64(buf, rec.seq);
    match &rec.op {
        WalOp::Insert { oid, vector, tag, label } => {
            buf.push(REC_INSERT);
            put_u32(buf, *oid);
            put_u64(buf, *tag);
            put_u32(buf, *label);
            put_u32(buf, vector.len() as u32);
            for x in vector {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        WalOp::Delete { oid } => {
            buf.push(REC_DELETE);
            put_u32(buf, *oid);
        }
    }
}

fn get_wal_record(cur: &mut Cur<'_>) -> Result<WalRecord, ProtoError> {
    let seq = cur.u64()?;
    let op = match cur.u8()? {
        REC_INSERT => {
            let oid = cur.u32()?;
            let tag = cur.u64()?;
            let label = cur.u32()?;
            let dim = cur.u32()? as usize;
            if dim == 0 || dim > MAX_FRAME / 4 {
                return Err(ProtoError::Malformed(format!("bad record dimensionality {dim}")));
            }
            let mut vector = Vec::with_capacity(dim);
            for _ in 0..dim {
                vector.push(cur.f32()?);
            }
            WalOp::Insert { oid, vector, tag, label }
        }
        REC_DELETE => WalOp::Delete { oid: cur.u32()? },
        kind => return Err(ProtoError::Malformed(format!("unknown record kind {kind}"))),
    };
    Ok(WalRecord { seq, op })
}

fn encode_cost(buf: &mut Vec<u8>, cost: &QueryCost) {
    put_u32(buf, cost.rounds);
    put_u64(buf, cost.collisions);
    put_u64(buf, cost.verified);
    put_u64(buf, cost.abandoned);
    put_u64(buf, cost.filtered);
    put_u64(buf, cost.io_reads);
    put_u64(buf, cost.elapsed_nanos);
    put_u64(buf, cost.snapshot_seq);
    put_u64(buf, cost.hash_ns);
    put_u64(buf, cost.count_ns);
    put_u64(buf, cost.verify_ns);
    put_u64(buf, cost.rank_ns);
    put_u32(buf, cost.spans.len() as u32);
    for s in &cost.spans {
        let name = s.name.as_bytes();
        debug_assert!(name.len() <= u8::MAX as usize, "span names are short identifiers");
        buf.push(name.len().min(u8::MAX as usize) as u8);
        buf.extend_from_slice(&name[..name.len().min(u8::MAX as usize)]);
        put_u64(buf, s.start_ns);
        put_u64(buf, s.dur_ns);
        buf.push(s.depth);
        put_u64(buf, s.detail);
    }
}

fn decode_cost(cur: &mut Cur<'_>) -> Result<QueryCost, ProtoError> {
    let mut cost = QueryCost {
        rounds: cur.u32()?,
        collisions: cur.u64()?,
        verified: cur.u64()?,
        abandoned: cur.u64()?,
        filtered: cur.u64()?,
        io_reads: cur.u64()?,
        elapsed_nanos: cur.u64()?,
        snapshot_seq: cur.u64()?,
        hash_ns: cur.u64()?,
        count_ns: cur.u64()?,
        verify_ns: cur.u64()?,
        rank_ns: cur.u64()?,
        spans: Vec::new(),
    };
    let span_count = cur.u32()? as usize;
    if span_count > MAX_FRAME / 26 {
        return Err(ProtoError::Malformed(format!("bad span count {span_count}")));
    }
    cost.spans.reserve(span_count);
    for _ in 0..span_count {
        let name_len = cur.u8()? as usize;
        let name = String::from_utf8(cur.take(name_len)?.to_vec())
            .map_err(|_| ProtoError::Malformed("invalid UTF-8 span name".into()))?;
        cost.spans.push(WireSpan {
            name,
            start_ns: cur.u64()?,
            dur_ns: cur.u64()?,
            depth: cur.u8()?,
            detail: cur.u64()?,
        });
    }
    Ok(cost)
}

/// Encode one request payload (without the length prefix).
fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Ping => vec![OP_PING],
        Request::Query { k, deadline_ms, vector } => {
            let mut buf = Vec::with_capacity(13 + vector.len() * 4);
            buf.push(OP_QUERY);
            put_u32(&mut buf, *k);
            put_u32(&mut buf, *deadline_ms);
            put_u32(&mut buf, vector.len() as u32);
            for x in vector {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            buf
        }
        Request::Stats => vec![OP_STATS],
        Request::Shutdown => vec![OP_SHUTDOWN],
        Request::Insert { vector } => {
            let mut buf = Vec::with_capacity(5 + vector.len() * 4);
            buf.push(OP_INSERT);
            put_u32(&mut buf, vector.len() as u32);
            for x in vector {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            buf
        }
        Request::Delete { oid } => {
            let mut buf = Vec::with_capacity(5);
            buf.push(OP_DELETE);
            put_u32(&mut buf, *oid);
            buf
        }
        Request::QueryV2 {
            k,
            deadline_ms,
            want_stats,
            want_trace,
            vector,
            filter,
            collection,
            min_seq,
        } => {
            let mut buf = Vec::with_capacity(17 + vector.len() * 4);
            buf.push(OP_QUERY_V2);
            put_u32(&mut buf, *k);
            put_u32(&mut buf, *deadline_ms);
            let mut flags = 0u32;
            if *want_stats {
                flags |= FLAG_WANT_STATS;
            }
            if *want_trace {
                flags |= FLAG_WANT_TRACE;
            }
            if filter.is_some() {
                flags |= FLAG_FILTER;
            }
            if collection.is_some() {
                flags |= FLAG_COLLECTION;
            }
            if *min_seq > 0 {
                flags |= FLAG_MIN_SEQ;
            }
            put_u32(&mut buf, flags);
            put_u32(&mut buf, vector.len() as u32);
            for x in vector {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            if let Some(pred) = filter {
                put_filter(&mut buf, pred);
            }
            if let Some(name) = collection {
                put_name(&mut buf, name);
            }
            if *min_seq > 0 {
                put_u64(&mut buf, *min_seq);
            }
            buf
        }
        Request::Metrics => vec![OP_METRICS],
        Request::CreateCollection { name, dim } => {
            let mut buf = Vec::with_capacity(7 + name.len());
            buf.push(OP_CREATE_COLLECTION);
            put_name(&mut buf, name);
            put_u32(&mut buf, *dim);
            buf
        }
        Request::DropCollection { name } => {
            let mut buf = Vec::with_capacity(3 + name.len());
            buf.push(OP_DROP_COLLECTION);
            put_name(&mut buf, name);
            buf
        }
        Request::ListCollections => vec![OP_LIST_COLLECTIONS],
        Request::InsertV2 { collection, tag, label, vector } => {
            let name = collection.as_deref().unwrap_or("");
            let mut buf = Vec::with_capacity(19 + name.len() + vector.len() * 4);
            buf.push(OP_INSERT_V2);
            put_name(&mut buf, name);
            put_u64(&mut buf, *tag);
            put_u32(&mut buf, *label);
            put_u32(&mut buf, vector.len() as u32);
            for x in vector {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            buf
        }
        Request::ReplSubscribe { replica, from_seq } => {
            let mut buf = Vec::with_capacity(11 + replica.len());
            buf.push(OP_REPL_SUBSCRIBE);
            put_name(&mut buf, replica);
            put_u64(&mut buf, *from_seq);
            buf
        }
        Request::ReplAck { applied_seq } => {
            let mut buf = Vec::with_capacity(9);
            buf.push(OP_REPL_ACK);
            put_u64(&mut buf, *applied_seq);
            buf
        }
    }
}

/// Encode one response payload (without the length prefix).
fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Pong => vec![OP_PONG],
        Response::TopK(nn) => {
            let mut buf = Vec::with_capacity(5 + nn.len() * 12);
            buf.push(OP_TOPK);
            put_u32(&mut buf, nn.len() as u32);
            for n in nn {
                put_u32(&mut buf, n.id);
                buf.extend_from_slice(&n.dist.to_le_bytes());
            }
            buf
        }
        Response::Overloaded => vec![OP_OVERLOADED],
        Response::DeadlineExceeded => vec![OP_DEADLINE],
        Response::StatsJson(json) => {
            let mut buf = Vec::with_capacity(1 + json.len());
            buf.push(OP_STATS_JSON);
            buf.extend_from_slice(json.as_bytes());
            buf
        }
        Response::ShutdownAck => vec![OP_SHUTDOWN_ACK],
        Response::InsertAck { oid, seq } => {
            let mut buf = Vec::with_capacity(13);
            buf.push(OP_INSERT_ACK);
            put_u32(&mut buf, *oid);
            buf.extend_from_slice(&seq.to_le_bytes());
            buf
        }
        Response::DeleteAck { oid, found, seq } => {
            let mut buf = Vec::with_capacity(14);
            buf.push(OP_DELETE_ACK);
            buf.push(u8::from(*found));
            put_u32(&mut buf, *oid);
            buf.extend_from_slice(&seq.to_le_bytes());
            buf
        }
        Response::TopKV2 { trace_id, neighbors, cost } => {
            let mut buf = Vec::with_capacity(14 + neighbors.len() * 12);
            buf.push(OP_TOPK_V2);
            put_u64(&mut buf, *trace_id);
            put_u32(&mut buf, neighbors.len() as u32);
            for n in neighbors {
                put_u32(&mut buf, n.id);
                buf.extend_from_slice(&n.dist.to_le_bytes());
            }
            match cost {
                Some(c) => {
                    buf.push(1);
                    encode_cost(&mut buf, c);
                }
                None => buf.push(0),
            }
            buf
        }
        Response::MetricsText(text) => {
            let mut buf = Vec::with_capacity(1 + text.len());
            buf.push(OP_METRICS_TEXT);
            buf.extend_from_slice(text.as_bytes());
            buf
        }
        Response::CollectionAck { existed } => vec![OP_COLLECTION_ACK, u8::from(*existed)],
        Response::CollectionList(infos) => {
            let mut buf = Vec::with_capacity(5 + infos.len() * 20);
            buf.push(OP_COLLECTION_LIST);
            put_u32(&mut buf, infos.len() as u32);
            for info in infos {
                put_name(&mut buf, &info.name);
                put_u32(&mut buf, info.dim);
                put_u64(&mut buf, info.objects);
            }
            buf
        }
        Response::Error(err) => {
            let msg = err.message();
            let mut buf = Vec::with_capacity(3 + msg.len());
            buf.push(OP_ERROR);
            buf.extend_from_slice(&err.kind().code().to_le_bytes());
            buf.extend_from_slice(msg.as_bytes());
            buf
        }
        Response::ReplBatch { last_seq, records } => {
            let mut buf = Vec::with_capacity(13 + records.len() * 32);
            buf.push(OP_REPL_BATCH);
            put_u64(&mut buf, *last_seq);
            put_u32(&mut buf, records.len() as u32);
            for rec in records {
                put_wal_record(&mut buf, rec);
            }
            buf
        }
    }
}

fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Send one request.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    write_frame(w, &encode_request(req))
}

/// Send one response.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    write_frame(w, &encode_response(resp))
}

/// Read one whole frame payload. `Ok(None)` on clean EOF at a frame
/// boundary (the peer closed between frames).
fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 {
        return Err(ProtoError::Malformed("empty payload".into()));
    }
    if len > MAX_FRAME {
        return Err(ProtoError::Malformed(format!("frame of {len} bytes exceeds {MAX_FRAME}")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Bounds-checked cursor over a frame payload.
struct Cur<'a> {
    buf: &'a [u8],
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() < n {
            return Err(ProtoError::Malformed(format!(
                "truncated payload: wanted {n} more bytes, {} left",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, ProtoError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn utf8_rest(&mut self) -> Result<String, ProtoError> {
        let bytes = std::mem::take(&mut self.buf);
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::Malformed("invalid UTF-8 text".into()))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::Malformed(format!("{} trailing bytes", self.buf.len())))
        }
    }
}

/// Read one request; `Ok(None)` on clean EOF between frames.
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, ProtoError> {
    let Some(payload) = read_frame(r)? else { return Ok(None) };
    let mut cur = Cur { buf: &payload[1..] };
    let req = match payload[0] {
        OP_PING => Request::Ping,
        OP_QUERY => {
            let k = cur.u32()?;
            let deadline_ms = cur.u32()?;
            let dim = cur.u32()? as usize;
            if dim == 0 || dim > MAX_FRAME / 4 {
                return Err(ProtoError::Malformed(format!("bad query dimensionality {dim}")));
            }
            let mut vector = Vec::with_capacity(dim);
            for _ in 0..dim {
                vector.push(cur.f32()?);
            }
            Request::Query { k, deadline_ms, vector }
        }
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        OP_INSERT => {
            let dim = cur.u32()? as usize;
            if dim == 0 || dim > MAX_FRAME / 4 {
                return Err(ProtoError::Malformed(format!("bad insert dimensionality {dim}")));
            }
            let mut vector = Vec::with_capacity(dim);
            for _ in 0..dim {
                vector.push(cur.f32()?);
            }
            Request::Insert { vector }
        }
        OP_DELETE => Request::Delete { oid: cur.u32()? },
        OP_QUERY_V2 => {
            let k = cur.u32()?;
            let deadline_ms = cur.u32()?;
            let flags = cur.u32()?;
            let dim = cur.u32()? as usize;
            if dim == 0 || dim > MAX_FRAME / 4 {
                return Err(ProtoError::Malformed(format!("bad query dimensionality {dim}")));
            }
            let mut vector = Vec::with_capacity(dim);
            for _ in 0..dim {
                vector.push(cur.f32()?);
            }
            let filter = if flags & FLAG_FILTER != 0 { Some(get_filter(&mut cur)?) } else { None };
            let collection =
                if flags & FLAG_COLLECTION != 0 { Some(get_name(&mut cur)?) } else { None };
            let min_seq = if flags & FLAG_MIN_SEQ != 0 { cur.u64()? } else { 0 };
            Request::QueryV2 {
                k,
                deadline_ms,
                want_stats: flags & FLAG_WANT_STATS != 0,
                want_trace: flags & FLAG_WANT_TRACE != 0,
                vector,
                filter,
                collection,
                min_seq,
            }
        }
        OP_METRICS => Request::Metrics,
        OP_CREATE_COLLECTION => {
            let name = get_name(&mut cur)?;
            let dim = cur.u32()?;
            Request::CreateCollection { name, dim }
        }
        OP_DROP_COLLECTION => Request::DropCollection { name: get_name(&mut cur)? },
        OP_LIST_COLLECTIONS => Request::ListCollections,
        OP_INSERT_V2 => {
            let name = get_name(&mut cur)?;
            let tag = cur.u64()?;
            let label = cur.u32()?;
            let dim = cur.u32()? as usize;
            if dim == 0 || dim > MAX_FRAME / 4 {
                return Err(ProtoError::Malformed(format!("bad insert dimensionality {dim}")));
            }
            let mut vector = Vec::with_capacity(dim);
            for _ in 0..dim {
                vector.push(cur.f32()?);
            }
            Request::InsertV2 { collection: (!name.is_empty()).then_some(name), tag, label, vector }
        }
        OP_REPL_SUBSCRIBE => {
            let replica = get_name(&mut cur)?;
            let from_seq = cur.u64()?;
            Request::ReplSubscribe { replica, from_seq }
        }
        OP_REPL_ACK => Request::ReplAck { applied_seq: cur.u64()? },
        op => return Err(ProtoError::Malformed(format!("unknown request opcode {op:#04x}"))),
    };
    cur.finish()?;
    Ok(Some(req))
}

/// Read one response; `Ok(None)` on clean EOF between frames.
pub fn read_response(r: &mut impl Read) -> Result<Option<Response>, ProtoError> {
    let Some(payload) = read_frame(r)? else { return Ok(None) };
    let mut cur = Cur { buf: &payload[1..] };
    let resp = match payload[0] {
        OP_PONG => Response::Pong,
        OP_TOPK => {
            let count = cur.u32()? as usize;
            if count > MAX_FRAME / 12 {
                return Err(ProtoError::Malformed(format!("bad result count {count}")));
            }
            let mut nn = Vec::with_capacity(count);
            for _ in 0..count {
                let id = cur.u32()?;
                let dist = cur.f64()?;
                nn.push(Neighbor::new(id, dist));
            }
            Response::TopK(nn)
        }
        OP_OVERLOADED => Response::Overloaded,
        OP_DEADLINE => Response::DeadlineExceeded,
        OP_STATS_JSON => Response::StatsJson(cur.utf8_rest()?),
        OP_SHUTDOWN_ACK => Response::ShutdownAck,
        OP_INSERT_ACK => {
            let oid = cur.u32()?;
            let seq = cur.u64()?;
            Response::InsertAck { oid, seq }
        }
        OP_DELETE_ACK => {
            let found = match cur.u8()? {
                0 => false,
                1 => true,
                x => return Err(ProtoError::Malformed(format!("bad found flag {x}"))),
            };
            let oid = cur.u32()?;
            let seq = cur.u64()?;
            Response::DeleteAck { oid, found, seq }
        }
        OP_TOPK_V2 => {
            let trace_id = cur.u64()?;
            let count = cur.u32()? as usize;
            if count > MAX_FRAME / 12 {
                return Err(ProtoError::Malformed(format!("bad result count {count}")));
            }
            let mut neighbors = Vec::with_capacity(count);
            for _ in 0..count {
                let id = cur.u32()?;
                let dist = cur.f64()?;
                neighbors.push(Neighbor::new(id, dist));
            }
            let cost = match cur.u8()? {
                0 => None,
                1 => Some(decode_cost(&mut cur)?),
                x => return Err(ProtoError::Malformed(format!("bad has_stats flag {x}"))),
            };
            Response::TopKV2 { trace_id, neighbors, cost }
        }
        OP_METRICS_TEXT => Response::MetricsText(cur.utf8_rest()?),
        OP_COLLECTION_ACK => {
            let existed = match cur.u8()? {
                0 => false,
                1 => true,
                x => return Err(ProtoError::Malformed(format!("bad existed flag {x}"))),
            };
            Response::CollectionAck { existed }
        }
        OP_COLLECTION_LIST => {
            let count = cur.u32()? as usize;
            if count > MAX_FRAME / 14 {
                return Err(ProtoError::Malformed(format!("bad collection count {count}")));
            }
            let mut infos = Vec::with_capacity(count);
            for _ in 0..count {
                let name = get_name(&mut cur)?;
                let dim = cur.u32()?;
                let objects = cur.u64()?;
                infos.push(CollectionInfo { name, dim, objects });
            }
            Response::CollectionList(infos)
        }
        OP_ERROR => {
            let kind = ErrorKind::from_code(cur.u16()?);
            Response::Error(Error::new(kind, cur.utf8_rest()?))
        }
        OP_REPL_BATCH => {
            let last_seq = cur.u64()?;
            let count = cur.u32()? as usize;
            if count > MAX_FRAME / 13 {
                return Err(ProtoError::Malformed(format!("bad record count {count}")));
            }
            let mut records = Vec::with_capacity(count);
            for _ in 0..count {
                records.push(get_wal_record(&mut cur)?);
            }
            Response::ReplBatch { last_seq, records }
        }
        op => return Err(ProtoError::Malformed(format!("unknown response opcode {op:#04x}"))),
    };
    cur.finish()?;
    Ok(Some(resp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip_request(req: Request) -> Request {
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        read_request(&mut Cursor::new(wire)).unwrap().unwrap()
    }

    fn round_trip_response(resp: Response) -> Response {
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        read_response(&mut Cursor::new(wire)).unwrap().unwrap()
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Query { k: 7, deadline_ms: 250, vector: vec![1.5, -2.25, 0.0, f32::MIN] },
            Request::Insert { vector: vec![0.25, -9.5, f32::MAX] },
            Request::Delete { oid: u32::MAX },
            Request::Metrics,
            Request::QueryV2 {
                k: 5,
                deadline_ms: 40,
                want_stats: true,
                want_trace: false,
                vector: vec![0.5, -1.25],
                filter: None,
                collection: None,
                min_seq: 0,
            },
            Request::QueryV2 {
                k: 1,
                deadline_ms: 0,
                want_stats: false,
                want_trace: true,
                vector: vec![9.0],
                filter: Some(Predicate::label(7).and_tag_any(0b1010).and_tag_all(u64::MAX)),
                collection: Some("tenant-a".into()),
                min_seq: u64::MAX,
            },
            Request::QueryV2 {
                k: 3,
                deadline_ms: 10,
                want_stats: false,
                want_trace: false,
                vector: vec![1.0, 2.0],
                filter: Some(Predicate::tag_any(1)),
                collection: None,
                min_seq: 417,
            },
            Request::ReplSubscribe { replica: "follower-1".into(), from_seq: 0 },
            Request::ReplSubscribe { replica: "f".into(), from_seq: u64::MAX },
            Request::ReplAck { applied_seq: 12345 },
            Request::CreateCollection { name: "images".into(), dim: 128 },
            Request::DropCollection { name: "images".into() },
            Request::ListCollections,
            Request::InsertV2 {
                collection: Some("images".into()),
                tag: u64::MAX,
                label: 42,
                vector: vec![0.5, -0.5],
            },
            Request::InsertV2 { collection: None, tag: 0, label: 0, vector: vec![3.0] },
        ] {
            assert_eq!(round_trip_request(req.clone()), req);
        }
    }

    #[test]
    fn unextended_query_v2_keeps_the_pre_collection_wire_shape() {
        // A request with neither filter nor collection must encode to
        // exactly the pre-extension layout: header + flags + vector,
        // nothing trailing, flag bits 2/3 clear.
        let req = Request::QueryV2 {
            k: 4,
            deadline_ms: 9,
            want_stats: true,
            want_trace: false,
            vector: vec![1.0, 2.0, 3.0],
            filter: None,
            collection: None,
            min_seq: 0,
        };
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        // len(4) + opcode(1) + k(4) + deadline(4) + flags(4) + dim(4) + 3 × f32.
        assert_eq!(wire.len(), 4 + 1 + 4 + 4 + 4 + 4 + 12);
        let flags = u32::from_le_bytes(wire[13..17].try_into().unwrap());
        assert_eq!(flags & (FLAG_FILTER | FLAG_COLLECTION | FLAG_MIN_SEQ), 0);
    }

    #[test]
    fn min_seq_rides_the_tail_of_the_query_frame() {
        // With the freshness bound set, the flag comes on and the u64
        // is the last eight payload bytes (after filter + collection).
        let req = Request::QueryV2 {
            k: 2,
            deadline_ms: 0,
            want_stats: false,
            want_trace: false,
            vector: vec![0.5],
            filter: Some(Predicate::label(1)),
            collection: Some("c".into()),
            min_seq: 0xDEAD_BEEF,
        };
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let flags = u32::from_le_bytes(wire[13..17].try_into().unwrap());
        assert_eq!(flags & FLAG_MIN_SEQ, FLAG_MIN_SEQ);
        let tail = &wire[wire.len() - 8..];
        assert_eq!(tail, &0xDEAD_BEEFu64.to_le_bytes());
        assert_eq!(round_trip_request(req.clone()), req);
    }

    #[test]
    fn repl_batches_round_trip() {
        use cc_storage::wal::{WalOp, WalRecord};
        for resp in [
            Response::ReplBatch { last_seq: 0, records: vec![] },
            Response::ReplBatch { last_seq: u64::MAX, records: vec![] },
            Response::ReplBatch {
                last_seq: 3,
                records: vec![
                    WalRecord {
                        seq: 1,
                        op: WalOp::Insert {
                            oid: 0,
                            vector: vec![1.5, -2.5, f32::MAX],
                            tag: u64::MAX,
                            label: 7,
                        },
                    },
                    WalRecord { seq: 2, op: WalOp::Delete { oid: 0 } },
                    WalRecord {
                        seq: 3,
                        op: WalOp::Insert { oid: 1, vector: vec![0.0], tag: 0, label: 0 },
                    },
                ],
            },
        ] {
            assert_eq!(round_trip_response(resp.clone()), resp);
        }
    }

    #[test]
    fn repl_batch_rejects_bad_record_kinds_and_truncations() {
        use cc_storage::wal::{WalOp, WalRecord};
        let resp = Response::ReplBatch {
            last_seq: 2,
            records: vec![
                WalRecord {
                    seq: 1,
                    op: WalOp::Insert { oid: 9, vector: vec![1.0, 2.0], tag: 3, label: 4 },
                },
                WalRecord { seq: 2, op: WalOp::Delete { oid: 9 } },
            ],
        };
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        for len in 0..wire.len() {
            match read_response(&mut Cursor::new(&wire[..len])) {
                Ok(None) | Err(_) => {}
                Ok(Some(got)) => panic!("truncation to {len} bytes parsed as {got:?}"),
            }
        }
        // The first record's kind byte follows len(4) + opcode(1) +
        // last_seq(8) + count(4) + seq(8).
        let kind_at = 4 + 1 + 8 + 4 + 8;
        assert_eq!(wire[kind_at], REC_INSERT);
        wire[kind_at] = 0x7E;
        assert!(matches!(
            read_response(&mut Cursor::new(&wire[..])),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_filter_clause_bits_are_malformed() {
        let req = Request::QueryV2 {
            k: 1,
            deadline_ms: 0,
            want_stats: false,
            want_trace: false,
            vector: vec![1.0],
            filter: Some(Predicate::label(3)),
            collection: None,
            min_seq: 0,
        };
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        // The clause mask sits right after the single f32 coordinate:
        // len(4) + opcode(1) + 3 × u32 header + dim(4) + f32(4).
        let mask_at = 4 + 1 + 12 + 4 + 4;
        assert_eq!(wire[mask_at], CLAUSE_LABEL);
        wire[mask_at] = 0x80;
        assert!(matches!(read_request(&mut Cursor::new(&wire[..])), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn collection_frames_round_trip() {
        for resp in [
            Response::CollectionAck { existed: false },
            Response::CollectionAck { existed: true },
            Response::CollectionList(vec![]),
            Response::CollectionList(vec![
                CollectionInfo { name: "a".into(), dim: 8, objects: 0 },
                CollectionInfo { name: "tenant-b_2".into(), dim: 512, objects: u64::MAX },
            ]),
        ] {
            assert_eq!(round_trip_response(resp.clone()), resp);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Pong,
            Response::Overloaded,
            Response::DeadlineExceeded,
            Response::ShutdownAck,
            Response::StatsJson("{\"queries\":3}".into()),
            Response::Error(Error::invalid("dim mismatch")),
            Response::Error(Error::new(ErrorKind::Draining, "shutting down")),
            Response::TopK(vec![Neighbor::new(3, 0.25), Neighbor::new(9, 1e300)]),
            Response::InsertAck { oid: 12, seq: u64::MAX },
            Response::DeleteAck { oid: 4, found: true, seq: 99 },
            Response::DeleteAck { oid: 5, found: false, seq: 0 },
            Response::MetricsText("# HELP cc_up 1\n".into()),
            Response::TopKV2 { trace_id: 0, neighbors: vec![Neighbor::new(1, 0.5)], cost: None },
            Response::TopKV2 {
                trace_id: 77,
                neighbors: vec![],
                cost: Some(QueryCost {
                    rounds: 3,
                    collisions: 1000,
                    verified: 42,
                    abandoned: 7,
                    filtered: 11,
                    io_reads: 5,
                    elapsed_nanos: 123_456,
                    snapshot_seq: 9,
                    hash_ns: 100,
                    count_ns: 2000,
                    verify_ns: 300,
                    rank_ns: 40,
                    spans: vec![
                        WireSpan {
                            name: "hash".into(),
                            start_ns: 0,
                            dur_ns: 100,
                            depth: 0,
                            detail: 0,
                        },
                        WireSpan {
                            name: "round".into(),
                            start_ns: 100,
                            dur_ns: 2300,
                            depth: 0,
                            detail: 16,
                        },
                    ],
                }),
            },
        ] {
            assert_eq!(round_trip_response(resp.clone()), resp);
        }
    }

    #[test]
    fn error_frames_carry_the_kind_code() {
        let mut wire = Vec::new();
        write_response(&mut wire, &Response::Error(Error::new(ErrorKind::Draining, "bye")))
            .unwrap();
        // len(4) | opcode(1) | u16 code — the Draining code is 6.
        assert_eq!(&wire[5..7], &6u16.to_le_bytes());
        // An unknown code from a future peer decodes as Internal, not an error.
        wire[5] = 0xEE;
        wire[6] = 0x01;
        match read_response(&mut Cursor::new(wire)).unwrap().unwrap() {
            Response::Error(e) => {
                assert_eq!(e.kind(), c2lsh::ErrorKind::Internal);
                assert_eq!(e.message(), "bye");
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn delete_ack_found_flag_must_be_boolean() {
        let mut wire = Vec::new();
        write_response(&mut wire, &Response::DeleteAck { oid: 1, found: true, seq: 2 }).unwrap();
        wire[5] = 2; // the `found` byte, right after len(4) + opcode(1)
        assert!(matches!(
            read_response(&mut Cursor::new(&wire[..])),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_request(&mut Cursor::new(Vec::new())).unwrap().is_none());
        assert!(read_response(&mut Cursor::new(Vec::new())).unwrap().is_none());
    }

    #[test]
    fn torn_frame_is_io_error() {
        let mut wire = Vec::new();
        write_request(&mut wire, &Request::Ping).unwrap();
        wire.pop(); // lose the opcode byte
        wire[0] = 1; // length still claims one byte
        let err = read_request(&mut Cursor::new(&wire[..4])).unwrap_err();
        assert!(matches!(err, ProtoError::Io(_)), "{err}");
    }

    #[test]
    fn garbage_never_panics() {
        // Every truncation of a valid query frame either errors or
        // reports clean EOF — no panics, no bogus successes.
        let mut wire = Vec::new();
        let req = Request::Query { k: 3, deadline_ms: 0, vector: vec![0.5; 6] };
        write_request(&mut wire, &req).unwrap();
        for len in 0..wire.len() {
            match read_request(&mut Cursor::new(&wire[..len])) {
                Ok(None) | Err(_) => {}
                Ok(Some(got)) => panic!("truncation to {len} bytes parsed as {got:?}"),
            }
        }
        // Unknown opcodes are malformed.
        let bogus = [1u8, 0, 0, 0, 0x7F];
        assert!(matches!(
            read_request(&mut Cursor::new(&bogus[..])),
            Err(ProtoError::Malformed(_))
        ));
        // Oversized length words are rejected without allocating.
        let huge = [0xFF, 0xFF, 0xFF, 0xFF, 0x01];
        assert!(matches!(read_request(&mut Cursor::new(&huge[..])), Err(ProtoError::Malformed(_))));
        // Trailing bytes after a well-formed body are rejected.
        let mut padded = Vec::new();
        write_request(&mut padded, &Request::Ping).unwrap();
        padded[0] = 2; // grow the declared length
        padded.push(0xAB);
        assert!(matches!(
            read_request(&mut Cursor::new(&padded[..])),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_topk_v2_never_panics() {
        let resp = Response::TopKV2 {
            trace_id: 42,
            neighbors: vec![Neighbor::new(1, 0.5), Neighbor::new(2, 1.5)],
            cost: Some(QueryCost {
                rounds: 2,
                spans: vec![WireSpan {
                    name: "rank".into(),
                    start_ns: 5,
                    dur_ns: 6,
                    depth: 1,
                    detail: 7,
                }],
                ..QueryCost::default()
            }),
        };
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        for len in 0..wire.len() {
            match read_response(&mut Cursor::new(&wire[..len])) {
                Ok(None) | Err(_) => {}
                Ok(Some(got)) => panic!("truncation to {len} bytes parsed as {got:?}"),
            }
        }
        assert_eq!(read_response(&mut Cursor::new(wire)).unwrap().unwrap(), resp);
    }
}

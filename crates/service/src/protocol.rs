//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is `u32` payload length (little-endian, excluding the
//! length word itself) followed by the payload; the payload's first
//! byte is the opcode. Requests use opcodes `0x01..=0x04`, responses
//! set the high bit. All multi-byte integers and floats are
//! little-endian, matching the persistence format of the core crate.
//!
//! ```text
//! request  0x01 Ping
//!          0x02 Query     u32 k | u32 deadline_ms (0 = none) |
//!                         u32 dim | dim × f32
//!          0x03 Stats
//!          0x04 Shutdown
//!          0x05 Insert    u32 dim | dim × f32
//!          0x06 Delete    u32 oid
//!
//! response 0x81 Pong
//!          0x82 TopK      u32 count | count × (u32 id, f64 dist)
//!          0x83 Overloaded          (admission queue full)
//!          0x84 DeadlineExceeded    (expired while queued)
//!          0x85 StatsJson utf-8 JSON document
//!          0x86 ShutdownAck
//!          0x87 InsertAck u32 oid | u64 seq
//!          0x88 DeleteAck u8 found (0/1) | u32 oid | u64 seq
//!          0x8F Error     utf-8 message
//! ```
//!
//! An `InsertAck`/`DeleteAck` is sent only after the mutation's WAL
//! record is fsynced, so receiving one certifies durability; `seq` is
//! the WAL sequence number (for a delete miss, `found = 0` and `seq`
//! is the server's current high-water mark).
//!
//! Distances travel as `f64` so a served answer is bit-identical to a
//! local [`cc_vector::gt::Neighbor`] — the integration tests compare
//! them with `total_cmp` equality, no tolerance.

use cc_vector::gt::Neighbor;
use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload (guards the length word against
/// garbage: 16 MiB comfortably holds a 1M-dimensional query).
pub const MAX_FRAME: usize = 16 << 20;

/// A client-to-server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// One c-k-ANN query.
    Query {
        /// Number of neighbors wanted.
        k: u32,
        /// Milliseconds the request may wait in the server's queue
        /// before the server gives up on it; 0 disables the deadline.
        deadline_ms: u32,
        /// The query vector.
        vector: Vec<f32>,
    },
    /// Ask for the aggregated service statistics as JSON.
    Stats,
    /// Begin graceful shutdown: the server stops admitting work,
    /// drains its queue, answers everything in flight, then exits.
    Shutdown,
    /// Insert a vector; answered with [`Response::InsertAck`] once the
    /// mutation is durable (or [`Response::Error`] if the engine is
    /// immutable or the vector invalid).
    Insert {
        /// The vector to insert.
        vector: Vec<f32>,
    },
    /// Delete an object by id; answered with [`Response::DeleteAck`].
    Delete {
        /// The object id to remove.
        oid: u32,
    },
}

/// A server-to-client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// The k nearest verified candidates, ascending by distance.
    TopK(Vec<Neighbor>),
    /// The admission queue was full; retry later.
    Overloaded,
    /// The request's deadline expired before the engine ran it.
    DeadlineExceeded,
    /// Aggregated service statistics, serialized by [`crate::json`].
    StatsJson(String),
    /// Shutdown acknowledged; the connection will close after the
    /// drain completes.
    ShutdownAck,
    /// The insert was applied and is durable.
    InsertAck {
        /// Object id the index assigned.
        oid: u32,
        /// WAL sequence number of the mutation.
        seq: u64,
    },
    /// The delete was processed and (when `found`) is durable.
    DeleteAck {
        /// The requested object id.
        oid: u32,
        /// `true` when the object existed and was removed.
        found: bool,
        /// WAL sequence number (high-water mark for a miss).
        seq: u64,
    },
    /// The request was rejected (bad dimensionality, k out of range,
    /// server draining, …).
    Error(String),
}

/// Why decoding a frame failed.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed (includes clean EOF mid-frame).
    Io(io::Error),
    /// The bytes don't parse as a frame of the expected direction.
    Malformed(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

const OP_PING: u8 = 0x01;
const OP_QUERY: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;
const OP_INSERT: u8 = 0x05;
const OP_DELETE: u8 = 0x06;
const OP_PONG: u8 = 0x81;
const OP_TOPK: u8 = 0x82;
const OP_OVERLOADED: u8 = 0x83;
const OP_DEADLINE: u8 = 0x84;
const OP_STATS_JSON: u8 = 0x85;
const OP_SHUTDOWN_ACK: u8 = 0x86;
const OP_INSERT_ACK: u8 = 0x87;
const OP_DELETE_ACK: u8 = 0x88;
const OP_ERROR: u8 = 0x8F;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encode one request payload (without the length prefix).
fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Ping => vec![OP_PING],
        Request::Query { k, deadline_ms, vector } => {
            let mut buf = Vec::with_capacity(13 + vector.len() * 4);
            buf.push(OP_QUERY);
            put_u32(&mut buf, *k);
            put_u32(&mut buf, *deadline_ms);
            put_u32(&mut buf, vector.len() as u32);
            for x in vector {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            buf
        }
        Request::Stats => vec![OP_STATS],
        Request::Shutdown => vec![OP_SHUTDOWN],
        Request::Insert { vector } => {
            let mut buf = Vec::with_capacity(5 + vector.len() * 4);
            buf.push(OP_INSERT);
            put_u32(&mut buf, vector.len() as u32);
            for x in vector {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            buf
        }
        Request::Delete { oid } => {
            let mut buf = Vec::with_capacity(5);
            buf.push(OP_DELETE);
            put_u32(&mut buf, *oid);
            buf
        }
    }
}

/// Encode one response payload (without the length prefix).
fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Pong => vec![OP_PONG],
        Response::TopK(nn) => {
            let mut buf = Vec::with_capacity(5 + nn.len() * 12);
            buf.push(OP_TOPK);
            put_u32(&mut buf, nn.len() as u32);
            for n in nn {
                put_u32(&mut buf, n.id);
                buf.extend_from_slice(&n.dist.to_le_bytes());
            }
            buf
        }
        Response::Overloaded => vec![OP_OVERLOADED],
        Response::DeadlineExceeded => vec![OP_DEADLINE],
        Response::StatsJson(json) => {
            let mut buf = Vec::with_capacity(1 + json.len());
            buf.push(OP_STATS_JSON);
            buf.extend_from_slice(json.as_bytes());
            buf
        }
        Response::ShutdownAck => vec![OP_SHUTDOWN_ACK],
        Response::InsertAck { oid, seq } => {
            let mut buf = Vec::with_capacity(13);
            buf.push(OP_INSERT_ACK);
            put_u32(&mut buf, *oid);
            buf.extend_from_slice(&seq.to_le_bytes());
            buf
        }
        Response::DeleteAck { oid, found, seq } => {
            let mut buf = Vec::with_capacity(14);
            buf.push(OP_DELETE_ACK);
            buf.push(u8::from(*found));
            put_u32(&mut buf, *oid);
            buf.extend_from_slice(&seq.to_le_bytes());
            buf
        }
        Response::Error(msg) => {
            let mut buf = Vec::with_capacity(1 + msg.len());
            buf.push(OP_ERROR);
            buf.extend_from_slice(msg.as_bytes());
            buf
        }
    }
}

fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Send one request.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    write_frame(w, &encode_request(req))
}

/// Send one response.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    write_frame(w, &encode_response(resp))
}

/// Read one whole frame payload. `Ok(None)` on clean EOF at a frame
/// boundary (the peer closed between frames).
fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 {
        return Err(ProtoError::Malformed("empty payload".into()));
    }
    if len > MAX_FRAME {
        return Err(ProtoError::Malformed(format!("frame of {len} bytes exceeds {MAX_FRAME}")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Bounds-checked cursor over a frame payload.
struct Cur<'a> {
    buf: &'a [u8],
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() < n {
            return Err(ProtoError::Malformed(format!(
                "truncated payload: wanted {n} more bytes, {} left",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, ProtoError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn utf8_rest(&mut self) -> Result<String, ProtoError> {
        let bytes = std::mem::take(&mut self.buf);
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::Malformed("invalid UTF-8 text".into()))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::Malformed(format!("{} trailing bytes", self.buf.len())))
        }
    }
}

/// Read one request; `Ok(None)` on clean EOF between frames.
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, ProtoError> {
    let Some(payload) = read_frame(r)? else { return Ok(None) };
    let mut cur = Cur { buf: &payload[1..] };
    let req = match payload[0] {
        OP_PING => Request::Ping,
        OP_QUERY => {
            let k = cur.u32()?;
            let deadline_ms = cur.u32()?;
            let dim = cur.u32()? as usize;
            if dim == 0 || dim > MAX_FRAME / 4 {
                return Err(ProtoError::Malformed(format!("bad query dimensionality {dim}")));
            }
            let mut vector = Vec::with_capacity(dim);
            for _ in 0..dim {
                vector.push(cur.f32()?);
            }
            Request::Query { k, deadline_ms, vector }
        }
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        OP_INSERT => {
            let dim = cur.u32()? as usize;
            if dim == 0 || dim > MAX_FRAME / 4 {
                return Err(ProtoError::Malformed(format!("bad insert dimensionality {dim}")));
            }
            let mut vector = Vec::with_capacity(dim);
            for _ in 0..dim {
                vector.push(cur.f32()?);
            }
            Request::Insert { vector }
        }
        OP_DELETE => Request::Delete { oid: cur.u32()? },
        op => return Err(ProtoError::Malformed(format!("unknown request opcode {op:#04x}"))),
    };
    cur.finish()?;
    Ok(Some(req))
}

/// Read one response; `Ok(None)` on clean EOF between frames.
pub fn read_response(r: &mut impl Read) -> Result<Option<Response>, ProtoError> {
    let Some(payload) = read_frame(r)? else { return Ok(None) };
    let mut cur = Cur { buf: &payload[1..] };
    let resp = match payload[0] {
        OP_PONG => Response::Pong,
        OP_TOPK => {
            let count = cur.u32()? as usize;
            if count > MAX_FRAME / 12 {
                return Err(ProtoError::Malformed(format!("bad result count {count}")));
            }
            let mut nn = Vec::with_capacity(count);
            for _ in 0..count {
                let id = cur.u32()?;
                let dist = cur.f64()?;
                nn.push(Neighbor::new(id, dist));
            }
            Response::TopK(nn)
        }
        OP_OVERLOADED => Response::Overloaded,
        OP_DEADLINE => Response::DeadlineExceeded,
        OP_STATS_JSON => Response::StatsJson(cur.utf8_rest()?),
        OP_SHUTDOWN_ACK => Response::ShutdownAck,
        OP_INSERT_ACK => {
            let oid = cur.u32()?;
            let seq = cur.u64()?;
            Response::InsertAck { oid, seq }
        }
        OP_DELETE_ACK => {
            let found = match cur.u8()? {
                0 => false,
                1 => true,
                x => return Err(ProtoError::Malformed(format!("bad found flag {x}"))),
            };
            let oid = cur.u32()?;
            let seq = cur.u64()?;
            Response::DeleteAck { oid, found, seq }
        }
        OP_ERROR => Response::Error(cur.utf8_rest()?),
        op => return Err(ProtoError::Malformed(format!("unknown response opcode {op:#04x}"))),
    };
    cur.finish()?;
    Ok(Some(resp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip_request(req: Request) -> Request {
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        read_request(&mut Cursor::new(wire)).unwrap().unwrap()
    }

    fn round_trip_response(resp: Response) -> Response {
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        read_response(&mut Cursor::new(wire)).unwrap().unwrap()
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Query { k: 7, deadline_ms: 250, vector: vec![1.5, -2.25, 0.0, f32::MIN] },
            Request::Insert { vector: vec![0.25, -9.5, f32::MAX] },
            Request::Delete { oid: u32::MAX },
        ] {
            assert_eq!(round_trip_request(req.clone()), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Pong,
            Response::Overloaded,
            Response::DeadlineExceeded,
            Response::ShutdownAck,
            Response::StatsJson("{\"queries\":3}".into()),
            Response::Error("dim mismatch".into()),
            Response::TopK(vec![Neighbor::new(3, 0.25), Neighbor::new(9, 1e300)]),
            Response::InsertAck { oid: 12, seq: u64::MAX },
            Response::DeleteAck { oid: 4, found: true, seq: 99 },
            Response::DeleteAck { oid: 5, found: false, seq: 0 },
        ] {
            assert_eq!(round_trip_response(resp.clone()), resp);
        }
    }

    #[test]
    fn delete_ack_found_flag_must_be_boolean() {
        let mut wire = Vec::new();
        write_response(&mut wire, &Response::DeleteAck { oid: 1, found: true, seq: 2 }).unwrap();
        wire[5] = 2; // the `found` byte, right after len(4) + opcode(1)
        assert!(matches!(
            read_response(&mut Cursor::new(&wire[..])),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_request(&mut Cursor::new(Vec::new())).unwrap().is_none());
        assert!(read_response(&mut Cursor::new(Vec::new())).unwrap().is_none());
    }

    #[test]
    fn torn_frame_is_io_error() {
        let mut wire = Vec::new();
        write_request(&mut wire, &Request::Ping).unwrap();
        wire.pop(); // lose the opcode byte
        wire[0] = 1; // length still claims one byte
        let err = read_request(&mut Cursor::new(&wire[..4])).unwrap_err();
        assert!(matches!(err, ProtoError::Io(_)), "{err}");
    }

    #[test]
    fn garbage_never_panics() {
        // Every truncation of a valid query frame either errors or
        // reports clean EOF — no panics, no bogus successes.
        let mut wire = Vec::new();
        let req = Request::Query { k: 3, deadline_ms: 0, vector: vec![0.5; 6] };
        write_request(&mut wire, &req).unwrap();
        for len in 0..wire.len() {
            match read_request(&mut Cursor::new(&wire[..len])) {
                Ok(None) | Err(_) => {}
                Ok(Some(got)) => panic!("truncation to {len} bytes parsed as {got:?}"),
            }
        }
        // Unknown opcodes are malformed.
        let bogus = [1u8, 0, 0, 0, 0x7F];
        assert!(matches!(
            read_request(&mut Cursor::new(&bogus[..])),
            Err(ProtoError::Malformed(_))
        ));
        // Oversized length words are rejected without allocating.
        let huge = [0xFF, 0xFF, 0xFF, 0xFF, 0x01];
        assert!(matches!(read_request(&mut Cursor::new(&huge[..])), Err(ProtoError::Malformed(_))));
        // Trailing bytes after a well-formed body are rejected.
        let mut padded = Vec::new();
        write_request(&mut padded, &Request::Ping).unwrap();
        padded[0] = 2; // grow the declared length
        padded.push(0xAB);
        assert!(matches!(
            read_request(&mut Cursor::new(&padded[..])),
            Err(ProtoError::Malformed(_))
        ));
    }
}

//! Live-server collections smoke driver (used by CI): connect to
//! `CC_ADDR`, create two collections, load each with metadata-bearing
//! inserts, apply a mixed filtered/unfiltered query load, and check
//! every answer against the predicate. Exits nonzero on any violated
//! expectation; pair it with a `/metrics` scrape to assert the
//! per-collection series render.
//!
//! ```text
//! cc-service --addr 127.0.0.1:7878 --metrics-addr 127.0.0.1:9184 &
//! CC_ADDR=127.0.0.1:7878 collections_smoke
//! curl -fsS http://127.0.0.1:9184/metrics | grep 'collection="alpha"'
//! ```

use c2lsh::Predicate;
use cc_service::{Client, QueryRequest};
use cc_vector::gen::{generate, Distribution};

const DIM: usize = 16;
const N: usize = 400;
const QUERIES: usize = 60;

fn main() {
    let addr = std::env::var("CC_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".into());
    let addr: std::net::SocketAddr = addr.parse().expect("CC_ADDR must be HOST:PORT");
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");

    // Labels `i % 3` are coprime to the 8 generator clusters, so every
    // cluster mixes all labels and the predicate below is selective.
    let data = generate(
        Distribution::GaussianMixture { clusters: 8, spread: 0.02, scale: 10.0 },
        N,
        DIM,
        5,
    );
    for name in ["alpha", "beta"] {
        let existed = client.create_collection(name, DIM as u32).expect("create collection");
        assert!(!existed, "collection {name} already present — stale server state?");
        for (i, v) in data.iter().enumerate() {
            client
                .insert_with_meta(Some(name), v, 1 << (i % 4), (i % 3) as u32)
                .expect("insert with meta");
        }
    }
    let listed = client.list_collections().expect("list collections");
    for name in ["alpha", "beta"] {
        let info = listed
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("{name} missing from {listed:?}"));
        assert_eq!((info.dim as usize, info.objects as usize), (DIM, N), "{info:?}");
    }

    // Mixed load: collection queries alternate between the two
    // collections, two in three carrying a label predicate; every
    // round also hits the server's default engine unfiltered.
    let mut rejected = 0u64;
    for (i, q) in data.iter().take(QUERIES).enumerate() {
        let name = if i % 2 == 0 { "alpha" } else { "beta" };
        let filtered = i % 3 != 0;
        let mut req = QueryRequest::new(q.to_vec()).k(5).collection(name).with_stats();
        if filtered {
            req = req.filter(Predicate::label(1));
        }
        let res = client.search_result(&req).expect("collection query");
        assert!(!res.neighbors.is_empty(), "query {i} served nothing");
        if filtered {
            for n in &res.neighbors {
                assert_eq!(n.id % 3, 1, "query {i}: label predicate violated by oid {}", n.id);
            }
        }
        rejected += res.cost.as_ref().map(|c| c.filtered).unwrap_or(0);

        let res = client
            .search_result(&QueryRequest::new(q.to_vec()).k(5))
            .expect("default-engine query");
        assert!(!res.neighbors.is_empty(), "default engine served nothing");
    }
    assert!(rejected > 0, "a selective predicate must reject some candidates");

    let snap = client.stats().expect("stats");
    assert_eq!(snap.collections, 2, "stats must count the live collections");
    assert!(snap.engine.filtered >= rejected, "stats fold the rejection counter");
    println!(
        "collections smoke ok: 2 collections x {N} objects, {QUERIES} mixed rounds, \
         {rejected} candidates rejected by predicates"
    );
}

//! The serving core: accept loop, per-connection handlers, and the
//! batching worker that coalesces queued queries into engine batches.
//!
//! ```text
//!             ┌────────────┐   bounded queue    ┌─────────────┐
//!  conn 1 ──▶ │ handler 1  │ ──┐                │   batcher   │
//!  conn 2 ──▶ │ handler 2  │ ──┼──▶ VecDeque ──▶│ (coalesces, │──▶ ShardedEngine
//!   ...       │    ...     │ ──┘   + Condvar    │  flushes)   │    ::query_batch
//!  conn C ──▶ │ handler C  │ ◀──── mpsc reply ──┴─────────────┘
//!             └────────────┘
//! ```
//!
//! Every connection gets a thread (scoped — [`serve`] returns only
//! after all of them joined). A handler never touches the engine
//! directly: it validates the request, pushes work onto the shared
//! queue and blocks on a private reply channel. The single batcher
//! thread drains the queue — waiting up to [`ServiceConfig::max_delay`]
//! for the batch to fill to [`ServiceConfig::max_batch`] — and answers
//! a whole batch with one [`ServeEngine::query_batch_with`] call, so
//! concurrent clients share the engine's scoped-parallel executor
//! instead of contending for it.
//!
//! The engine behind the queue is anything implementing
//! [`ServeEngine`]: the read-only [`ShardedEngine`] or the mutable,
//! WAL-backed [`c2lsh::MutableIndex`]. When a flush contains both
//! mutations and queries, the mutations are applied first — as one
//! group-committed [`c2lsh::MutableIndex::apply_batch`] — and the
//! queries then run against the post-batch snapshot. Acknowledgements
//! go out only after the batch's WAL fsync, so a client that received
//! an ack and then queries always sees its own write
//! (read-your-writes), and the write survives a crash.
//!
//! **Admission control** is a hard bound: when the queue already holds
//! [`ServiceConfig::queue_capacity`] requests, new queries are refused
//! with [`Response::Overloaded`] *immediately* (the handler never
//! blocks on a full queue — the client decides whether to retry).
//! **Deadlines** are per-request: a query carrying `deadline_ms` that
//! is still queued when the deadline passes is answered with
//! [`Response::DeadlineExceeded`] instead of occupying engine time.
//! **Shutdown** is graceful: the drain flag flips under the queue lock
//! (so no request can slip in behind the batcher's final sweep), the
//! queue is flushed, every waiting client gets its answer, and idle
//! connections are force-closed after [`ServiceConfig::drain_grace`].

use crate::collections::{Collection, CollectionsConfig, Registry};
use crate::json::JsonObject;
use crate::obs::ServerObs;
use crate::protocol::{self, ProtoError, QueryCost, Request, Response};
use c2lsh::engine::SearchOptions;
use c2lsh::stats::{BatchStats, MutationStats, QueryStats};
use c2lsh::{
    Error, ErrorKind, MutableIndex, MutationAck, MutationOp, PagedStore, PointMeta, Predicate,
    ShardedEngine,
};
use cc_obs::ObsConfig;
use cc_storage::wal::WalRecord;
use cc_vector::dataset::Dataset;
use cc_vector::gt::Neighbor;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What the serving layer needs from an engine. Implemented by the
/// read-only [`ShardedEngine`] (mutations rejected at admission) and by
/// [`MutableIndex`] (snapshot reads + WAL-backed mutations).
pub trait ServeEngine: Sync {
    /// Dataset dimensionality (used to validate requests).
    fn dim(&self) -> usize;

    /// Live objects served.
    fn len(&self) -> usize;

    /// Whether the engine currently serves no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shards behind this engine (1 for unsharded engines); reported in
    /// the stats document.
    fn num_shards(&self) -> usize {
        1
    }

    /// Answer a whole batch of queries; semantics of
    /// [`ShardedEngine::query_batch_with`].
    fn query_batch_with(
        &self,
        queries: &Dataset,
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats);

    /// `true` when [`ServeEngine::apply_mutations`] is supported; when
    /// `false`, insert/delete requests are refused at admission.
    fn supports_mutations(&self) -> bool {
        false
    }

    /// Apply one batch of mutations durably (WAL append + fsync before
    /// returning) and return per-op acknowledgements plus the batch's
    /// [`MutationStats`] delta.
    fn apply_mutations(
        &self,
        _ops: Vec<MutationOp>,
    ) -> io::Result<(Vec<MutationAck>, MutationStats)> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "engine is immutable"))
    }

    /// Cumulative write-path counters, `None` for immutable engines.
    fn mutation_stats(&self) -> Option<MutationStats> {
        None
    }

    /// Write a durable checkpoint and truncate the WAL once it has
    /// grown past `wal_bytes` (0 forces one), bounding recovery time.
    /// Returns whether a checkpoint ran; `Ok(false)` for engines
    /// without a WAL.
    fn checkpoint_if_wal_exceeds(&self, _wal_bytes: u64) -> io::Result<bool> {
        Ok(false)
    }

    /// Sequence number of the last applied mutation. Freshness-bounded
    /// queries (`min_seq`) compare against this at admission; engines
    /// without a mutation history report 0, so any positive bound is
    /// refused as stale there.
    fn current_seq(&self) -> u64 {
        0
    }

    /// The replication tail for a subscriber at `from_seq` (records
    /// strictly after it, capped at `max`) plus the engine's high-water
    /// mark. Engines without a replication log refuse with
    /// [`io::ErrorKind::Unsupported`], which the server surfaces to the
    /// subscriber as a typed error frame.
    fn replication_tail(&self, _from_seq: u64, _max: usize) -> io::Result<(u64, Vec<WalRecord>)> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "engine has no replication log"))
    }
}

impl ServeEngine for ShardedEngine<'_> {
    fn dim(&self) -> usize {
        ShardedEngine::dim(self)
    }

    fn len(&self) -> usize {
        ShardedEngine::len(self)
    }

    fn num_shards(&self) -> usize {
        ShardedEngine::num_shards(self)
    }

    fn query_batch_with(
        &self,
        queries: &Dataset,
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        ShardedEngine::query_batch_with(self, queries, k, opts)
    }
}

/// The out-of-core disk tier serves read-only, exactly like the
/// sharded engine: posting lists and vectors stream through the pinned
/// buffer pool, mutations are refused at admission.
impl ServeEngine for PagedStore {
    fn dim(&self) -> usize {
        PagedStore::dim(self)
    }

    fn len(&self) -> usize {
        PagedStore::len(self)
    }

    fn query_batch_with(
        &self,
        queries: &Dataset,
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        PagedStore::query_batch_with(self, queries, k, opts)
    }
}

impl ServeEngine for MutableIndex {
    fn dim(&self) -> usize {
        MutableIndex::dim(self)
    }

    fn len(&self) -> usize {
        MutableIndex::len(self)
    }

    fn query_batch_with(
        &self,
        queries: &Dataset,
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        MutableIndex::query_batch_with(self, queries, k, opts)
    }

    fn supports_mutations(&self) -> bool {
        true
    }

    fn apply_mutations(
        &self,
        ops: Vec<MutationOp>,
    ) -> io::Result<(Vec<MutationAck>, MutationStats)> {
        self.apply_batch(&ops)
    }

    fn mutation_stats(&self) -> Option<MutationStats> {
        Some(MutableIndex::mutation_stats(self))
    }

    fn checkpoint_if_wal_exceeds(&self, wal_bytes: u64) -> io::Result<bool> {
        MutableIndex::checkpoint_if_wal_exceeds(self, wal_bytes)
    }

    fn current_seq(&self) -> u64 {
        MutableIndex::last_seq(self)
    }

    fn replication_tail(&self, from_seq: u64, max: usize) -> io::Result<(u64, Vec<WalRecord>)> {
        MutableIndex::replication_tail(self, from_seq, max)
    }
}

/// Tunables of the serving layer (the engine has its own config).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Most queries answered by one engine batch; a flush triggers as
    /// soon as this many are queued.
    pub max_batch: usize,
    /// How long the batcher lingers for more work before flushing a
    /// partial batch (the latency cost of coalescing).
    pub max_delay: Duration,
    /// Admission bound: queries arriving while this many are already
    /// queued are refused with [`Response::Overloaded`].
    pub queue_capacity: usize,
    /// Largest accepted `k` (guards the per-request memory bound).
    pub k_max: usize,
    /// After the drain, how long to wait for idle connections to hang
    /// up on their own before force-closing them.
    pub drain_grace: Duration,
    /// Checkpoint policy: after a flush that applied mutations, the
    /// batcher writes a checkpoint and truncates the WAL once it
    /// exceeds this many bytes (so recovery time stays bounded instead
    /// of the log replaying the whole history — including any bulk
    /// seed — forever). A graceful drain always writes a final
    /// checkpoint regardless. `u64::MAX` disables the size trigger.
    pub checkpoint_wal_bytes: u64,
    /// Observability switches: histograms, trace sampling and the slow
    /// log. Off by default, so the query path pays nothing. (Ignored
    /// by [`serve_with_obs`], which takes a pre-built registry.)
    pub obs: ObsConfig,
    /// How named collections are provisioned: durable root directory
    /// (default none — ephemeral), index parameters and sizing.
    pub collections: CollectionsConfig,
    /// Refuse every direct mutation (insert/delete and collection
    /// create/drop/insert) with [`ErrorKind::Unsupported`]. Set on
    /// follower nodes, whose state may only advance through the
    /// replication stream — a direct write would fork the sequence
    /// history from the primary's.
    pub read_only: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_capacity: 1024,
            k_max: 1024,
            drain_grace: Duration::from_secs(5),
            checkpoint_wal_bytes: 16 << 20,
            obs: ObsConfig::default(),
            collections: CollectionsConfig::default(),
            read_only: false,
        }
    }
}

/// Aggregated service counters, served as JSON by the stats frame and
/// returned by [`serve`] as the final snapshot.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Queries answered with a [`Response::TopK`].
    pub queries: u64,
    /// Engine flushes performed.
    pub batches: u64,
    /// Largest number of queries coalesced into one flush.
    pub max_batch: usize,
    /// Queries refused at admission (queue full).
    pub overloaded: u64,
    /// Queries whose deadline expired while queued.
    pub deadline_expired: u64,
    /// Requests answered with [`Response::Error`].
    pub errors: u64,
    /// Inserts acknowledged.
    pub inserts: u64,
    /// Deletes acknowledged (found or not).
    pub deletes: u64,
    /// Flushes that applied at least one mutation.
    pub mutation_batches: u64,
    /// WAL-truncating checkpoints written (size-triggered plus the
    /// final one on a graceful drain).
    pub checkpoints: u64,
    /// Engine-side work, folded across all flushes with
    /// [`BatchStats::merge`]; includes the write path in
    /// [`BatchStats::mutations`].
    pub engine: BatchStats,
}

/// One admitted query waiting for the batcher.
struct Pending {
    vector: Vec<f32>,
    k: usize,
    /// Predicate evaluated inside the engine's counting loop; queries
    /// with equal filters still coalesce into one engine batch.
    filter: Option<Predicate>,
    deadline: Option<Instant>,
    /// When the query entered the queue (feeds the queue-wait
    /// histogram).
    enqueued_at: Instant,
    /// Reply with the v2 frame ([`Response::TopKV2`]).
    v2: bool,
    /// Attach a [`QueryCost`] block to the reply.
    want_stats: bool,
    /// Capture a span tree and assign a trace id.
    want_trace: bool,
    tx: mpsc::Sender<Response>,
}

/// One unit of admitted work.
enum Work {
    Query(Pending),
    /// An insert or delete plus its reply channel; acknowledged only
    /// after the flush's WAL fsync.
    Mutation {
        op: MutationOp,
        tx: mpsc::Sender<Response>,
    },
}

/// Queue state guarded by one mutex: the drain flag lives *inside* so
/// admission and the batcher's exit decision serialize — once a
/// handler admits a query under the lock, the batcher cannot already
/// have made its final sweep.
struct Queue {
    items: VecDeque<Work>,
    draining: bool,
}

/// Replication progress per connected subscriber, shared between the
/// connection handlers (which update it on every subscribe/ack) and
/// the metrics renderer (which turns it into the per-replica
/// `cc_replica_lag_seq` gauge).
struct ReplicaBoard {
    /// The primary's high-water mark as of the last replication
    /// interaction (kept here so the lag gauge needs no engine access).
    last_seq: AtomicU64,
    /// replica name → highest sequence number it acknowledged.
    acked: Mutex<HashMap<String, u64>>,
}

impl ReplicaBoard {
    fn lag_rows(&self) -> Vec<(String, u64)> {
        let last = self.last_seq.load(Ordering::Relaxed);
        let mut rows: Vec<(String, u64)> = self
            .acked
            .lock()
            .unwrap()
            .iter()
            .map(|(name, &acked)| (name.clone(), last.saturating_sub(acked)))
            .collect();
        rows.sort();
        rows
    }
}

struct Shared {
    queue: Mutex<Queue>,
    not_empty: Condvar,
    stopping: AtomicBool,
    stats: Mutex<ServiceStats>,
    conns: Mutex<Vec<(u64, TcpStream)>>,
    local_addr: SocketAddr,
    obs: Arc<ServerObs>,
    collections: Arc<Registry>,
    replicas: Arc<ReplicaBoard>,
}

/// Run the service until a [`Request::Shutdown`] arrives: accept
/// connections on `listener`, answer queries from `engine`, then drain
/// and return the final [`ServiceStats`] snapshot. All worker threads
/// are scoped — when this returns, none survive. Builds a private
/// metric registry from [`ServiceConfig::obs`]; use [`serve_with_obs`]
/// to share one with a scrape listener.
pub fn serve<E: ServeEngine>(
    engine: &E,
    listener: TcpListener,
    config: &ServiceConfig,
) -> io::Result<ServiceStats> {
    serve_with_obs(engine, listener, config, Arc::new(ServerObs::new(config.obs)))
}

/// Like [`serve`], but over a caller-owned [`ServerObs`] — the same
/// registry can then back a [`cc_obs::MetricsServer`] serving
/// `/metrics` while this function runs.
pub fn serve_with_obs<E: ServeEngine>(
    engine: &E,
    listener: TcpListener,
    config: &ServiceConfig,
    obs: Arc<ServerObs>,
) -> io::Result<ServiceStats> {
    let local_addr = listener.local_addr()?;
    obs.set_index_info(engine.len() as u64, engine.dim() as u64, engine.num_shards() as u64);
    let collections = Arc::new(Registry::open(config.collections.clone())?);
    // The scrape listener renders per-collection series through this
    // Arc; it stays valid after serve returns because the closure owns
    // its own clone.
    obs.set_collections_source({
        let registry = Arc::clone(&collections);
        Box::new(move || registry.metrics_rows())
    });
    let replicas = Arc::new(ReplicaBoard {
        last_seq: AtomicU64::new(engine.current_seq()),
        acked: Mutex::new(HashMap::new()),
    });
    obs.set_replicas_source({
        let board = Arc::clone(&replicas);
        Box::new(move || board.lag_rows())
    });
    let shared = Shared {
        queue: Mutex::new(Queue { items: VecDeque::new(), draining: false }),
        not_empty: Condvar::new(),
        stopping: AtomicBool::new(false),
        stats: Mutex::new(ServiceStats::default()),
        conns: Mutex::new(Vec::new()),
        local_addr,
        obs,
        collections,
        replicas,
    };
    let shared = &shared;
    let stats = crossbeam::scope(move |s| {
        let batcher = s.spawn(move |_| batcher_loop(engine, shared, config));
        let mut next_id = 0u64;
        for stream in listener.incoming() {
            if shared.stopping.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let id = next_id;
            next_id += 1;
            if let Ok(clone) = stream.try_clone() {
                shared.conns.lock().unwrap().push((id, clone));
            }
            s.spawn(move |_| handle_connection(engine, shared, config, stream, id));
        }
        drop(listener); // stop accepting before the drain
        batcher.join().expect("batch worker panicked");
        // Final checkpoint: a graceful drain leaves an empty WAL, so
        // the next start replays nothing. Acked writes are already
        // durable via the WAL, so a failure here only costs restart
        // time — report it, don't fail the drain.
        match engine.checkpoint_if_wal_exceeds(0) {
            Ok(true) => shared.stats.lock().unwrap().checkpoints += 1,
            Ok(false) => {}
            Err(e) => eprintln!("final checkpoint failed: {e}"),
        }
        // Same deal for every durable collection.
        let collection_ckpts = shared.collections.checkpoint_all(0);
        shared.stats.lock().unwrap().checkpoints += collection_ckpts;
        // Handlers deregister on exit; give stragglers (clients that
        // keep idle connections open across the shutdown) a grace
        // period, then sever them so the scope can join.
        let grace_end = Instant::now() + config.drain_grace;
        loop {
            if shared.conns.lock().unwrap().is_empty() {
                break;
            }
            if Instant::now() >= grace_end {
                for (_, conn) in shared.conns.lock().unwrap().iter() {
                    let _ = conn.shutdown(Shutdown::Both);
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        shared.stats.lock().unwrap().clone()
    })
    .expect("service worker panicked");
    Ok(stats)
}

fn handle_connection<E: ServeEngine>(
    engine: &E,
    shared: &Shared,
    config: &ServiceConfig,
    mut stream: TcpStream,
    id: u64,
) {
    let _ = stream.set_nodelay(true);
    let _ = serve_connection(engine, shared, config, &mut stream);
    shared.conns.lock().unwrap().retain(|(cid, _)| *cid != id);
}

/// How long a [`Request::ReplAck`] long-polls for fresh records before
/// answering with a heartbeat (an empty [`Response::ReplBatch`]).
const REPL_POLL: Duration = Duration::from_millis(250);
/// Poll granularity inside the long-poll window.
const REPL_POLL_STEP: Duration = Duration::from_millis(5);
/// Soft cap on the payload bytes of one [`Response::ReplBatch`].
const REPL_BATCH_BYTES: usize = 4 << 20;

/// Records per [`Response::ReplBatch`], derived from the engine's
/// dimensionality so a full batch stays under [`REPL_BATCH_BYTES`]
/// (each insert record is ~29 bytes + 4 per coordinate).
fn repl_batch_cap(dim: usize) -> usize {
    (REPL_BATCH_BYTES / (29 + dim * 4)).clamp(1, 1024)
}

/// Answer one replication pull: ship the tail after `from_seq`, update
/// the lag board, surface engine refusals as typed errors.
fn answer_repl_pull<E: ServeEngine>(
    engine: &E,
    shared: &Shared,
    replica: &str,
    from_seq: u64,
) -> Response {
    match engine.replication_tail(from_seq, repl_batch_cap(engine.dim())) {
        Ok((last_seq, records)) => {
            let last_seq = last_seq.max(engine.current_seq());
            shared.replicas.last_seq.store(last_seq, Ordering::Relaxed);
            shared.replicas.acked.lock().unwrap().insert(replica.to_string(), from_seq);
            Response::ReplBatch { last_seq, records }
        }
        Err(e) if e.kind() == io::ErrorKind::Unsupported => {
            Response::Error(Error::new(ErrorKind::Unsupported, e.to_string()))
        }
        Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
            // Below the retained floor: the subscriber must re-seed.
            Response::Error(Error::invalid(e.to_string()))
        }
        Err(e) => Response::Error(Error::new(ErrorKind::Io, e.to_string())),
    }
}

fn serve_connection<E: ServeEngine>(
    engine: &E,
    shared: &Shared,
    config: &ServiceConfig,
    stream: &mut TcpStream,
) -> Result<(), ProtoError> {
    // Set once this connection subscribes to the replication stream;
    // ReplAck frames are only meaningful afterwards.
    let mut repl_name: Option<String> = None;
    loop {
        let req = match protocol::read_request(stream) {
            Ok(None) => return Ok(()), // clean hang-up between frames
            Ok(Some(req)) => req,
            Err(ProtoError::Malformed(msg)) => {
                // Tell the peer why, then close: after a framing
                // violation the stream position is unreliable.
                shared.stats.lock().unwrap().errors += 1;
                shared.obs.errors.inc();
                let resp = Response::Error(Error::new(
                    ErrorKind::Protocol,
                    format!("malformed request: {msg}"),
                ));
                let _ = protocol::write_response(stream, &resp);
                return Err(ProtoError::Malformed(msg));
            }
            Err(e) => return Err(e),
        };
        let resp = match req {
            Request::Ping => Response::Pong,
            Request::Stats => Response::StatsJson(render_stats(engine, shared)),
            Request::Metrics => Response::MetricsText(shared.obs.render_prometheus()),
            Request::Shutdown => {
                protocol::write_response(stream, &Response::ShutdownAck)?;
                begin_shutdown(shared);
                return Ok(());
            }
            Request::Query { k, deadline_ms, vector } => {
                let ask = QueryAsk {
                    k,
                    deadline_ms,
                    vector,
                    v2: false,
                    want_stats: false,
                    want_trace: false,
                    filter: None,
                    min_seq: 0,
                };
                answer_query(engine, shared, config, ask)
            }
            Request::QueryV2 {
                k,
                deadline_ms,
                want_stats,
                want_trace,
                vector,
                filter,
                collection,
                min_seq,
            } => {
                let ask = QueryAsk {
                    k,
                    deadline_ms,
                    vector,
                    v2: true,
                    want_stats,
                    want_trace,
                    filter,
                    min_seq,
                };
                match collection {
                    Some(name) => answer_collection_query(shared, config, &name, ask),
                    None => answer_query(engine, shared, config, ask),
                }
            }
            Request::Insert { .. }
            | Request::InsertV2 { .. }
            | Request::Delete { .. }
            | Request::CreateCollection { .. }
            | Request::DropCollection { .. }
                if config.read_only =>
            {
                Response::Error(Error::new(
                    ErrorKind::Unsupported,
                    "node is a read-only follower; route writes to the primary",
                ))
            }
            Request::Insert { vector } => answer_mutation(
                engine,
                shared,
                config,
                MutationOp::Insert { vector, meta: PointMeta::default() },
            ),
            Request::InsertV2 { collection, tag, label, vector } => {
                let op = MutationOp::Insert { vector, meta: PointMeta::new(tag, label) };
                match collection {
                    Some(name) => answer_collection_mutation(shared, config, &name, op),
                    None => answer_mutation(engine, shared, config, op),
                }
            }
            Request::Delete { oid } => {
                answer_mutation(engine, shared, config, MutationOp::Delete { oid })
            }
            Request::CreateCollection { name, dim } => {
                match shared.collections.create(&name, dim as usize) {
                    Ok(existed) => Response::CollectionAck { existed },
                    Err(e) => Response::Error(e),
                }
            }
            Request::DropCollection { name } => match shared.collections.drop_collection(&name) {
                Ok(existed) => Response::CollectionAck { existed },
                Err(e) => Response::Error(Error::new(
                    ErrorKind::Io,
                    format!("cannot drop collection {name:?}: {e}"),
                )),
            },
            Request::ListCollections => Response::CollectionList(shared.collections.list()),
            Request::ReplSubscribe { replica, from_seq } => {
                // The first pull answers immediately (possibly empty):
                // the subscriber learns the high-water mark and keeps
                // the stream alive with acks.
                let resp = answer_repl_pull(engine, shared, &replica, from_seq);
                if !matches!(resp, Response::Error(_)) {
                    repl_name = Some(replica);
                }
                resp
            }
            Request::ReplAck { applied_seq } => match &repl_name {
                None => Response::Error(Error::new(
                    ErrorKind::Protocol,
                    "ReplAck without a ReplSubscribe on this connection",
                )),
                Some(replica) => {
                    // Long-poll: answer as soon as there are records
                    // past the acked position, or heartbeat after the
                    // poll window (also on drain, so subscribers notice
                    // shutdown promptly).
                    let deadline = Instant::now() + REPL_POLL;
                    loop {
                        if engine.current_seq() > applied_seq
                            || Instant::now() >= deadline
                            || shared.stopping.load(Ordering::SeqCst)
                        {
                            break;
                        }
                        std::thread::sleep(REPL_POLL_STEP);
                    }
                    answer_repl_pull(engine, shared, replica, applied_seq)
                }
            },
        };
        if matches!(resp, Response::Error(_)) {
            shared.stats.lock().unwrap().errors += 1;
            shared.obs.errors.inc();
        }
        protocol::write_response(stream, &resp)?;
    }
}

/// One validated-but-unadmitted query (both protocol versions funnel
/// through this).
struct QueryAsk {
    k: u32,
    deadline_ms: u32,
    vector: Vec<f32>,
    v2: bool,
    want_stats: bool,
    want_trace: bool,
    filter: Option<Predicate>,
    /// Read-your-writes bound: refuse (as [`ErrorKind::Stale`]) unless
    /// this node has applied at least this sequence. Zero disables.
    min_seq: u64,
}

/// Validate, admit and wait out one query. Never touches the engine —
/// the batcher answers through the reply channel.
fn answer_query<E: ServeEngine>(
    engine: &E,
    shared: &Shared,
    config: &ServiceConfig,
    ask: QueryAsk,
) -> Response {
    let QueryAsk { k, deadline_ms, vector, v2, want_stats, want_trace, filter, min_seq } = ask;
    // Freshness gate: the check runs before admission, and the batcher
    // only ever applies *more* writes between now and the flush, so
    // passing here is conservative-correct for read-your-writes.
    if min_seq > 0 && min_seq > engine.current_seq() {
        return Response::Error(Error::new(
            ErrorKind::Stale,
            format!(
                "replica is at seq {} but the query requires at least {min_seq}",
                engine.current_seq()
            ),
        ));
    }
    if vector.len() != engine.dim() {
        return Response::Error(Error::invalid(format!(
            "query dimensionality {} does not match the index ({})",
            vector.len(),
            engine.dim()
        )));
    }
    if k == 0 || k as usize > config.k_max {
        return Response::Error(Error::invalid(format!(
            "k = {k} out of range 1..={}",
            config.k_max
        )));
    }
    // The engine asserts finiteness; a NaN/inf coordinate reaching the
    // batcher would kill it and wedge every later query, so refuse here.
    if !vector.iter().all(|x| x.is_finite()) {
        return Response::Error(Error::invalid("query contains non-finite coordinates"));
    }
    let deadline =
        (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms.into()));
    let (tx, rx) = mpsc::channel();
    {
        let mut q = shared.queue.lock().unwrap();
        if q.draining {
            return Response::Error(Error::new(ErrorKind::Draining, "server is draining"));
        }
        if q.items.len() >= config.queue_capacity {
            shared.stats.lock().unwrap().overloaded += 1;
            shared.obs.overloaded.inc();
            return Response::Overloaded;
        }
        q.items.push_back(Work::Query(Pending {
            vector,
            k: k as usize,
            // Trivial predicates are dropped at admission so the flush
            // groups them with unfiltered traffic.
            filter: filter.filter(|p| !p.is_trivial()),
            deadline,
            enqueued_at: Instant::now(),
            v2,
            want_stats,
            want_trace,
            tx,
        }));
        shared.not_empty.notify_one();
    }
    // The batcher answers every admitted request, including during the
    // drain; a dead channel means it panicked.
    rx.recv().unwrap_or_else(|_| {
        Response::Error(Error::new(ErrorKind::Internal, "server shut down before answering"))
    })
}

/// Validate, admit and wait out one mutation. Rejected up front when
/// the engine is immutable or the payload invalid; otherwise the
/// batcher replies after the flush's group-commit fsync, so the
/// returned ack certifies durability.
fn answer_mutation<E: ServeEngine>(
    engine: &E,
    shared: &Shared,
    config: &ServiceConfig,
    op: MutationOp,
) -> Response {
    if !engine.supports_mutations() {
        return Response::Error(Error::new(
            ErrorKind::Unsupported,
            "engine is immutable: mutations are not supported",
        ));
    }
    if let MutationOp::Insert { vector, .. } = &op {
        if vector.len() != engine.dim() {
            return Response::Error(Error::invalid(format!(
                "insert dimensionality {} does not match the index ({})",
                vector.len(),
                engine.dim()
            )));
        }
        if !vector.iter().all(|x| x.is_finite()) {
            return Response::Error(Error::invalid("insert contains non-finite coordinates"));
        }
    }
    let (tx, rx) = mpsc::channel();
    {
        let mut q = shared.queue.lock().unwrap();
        if q.draining {
            return Response::Error(Error::new(ErrorKind::Draining, "server is draining"));
        }
        if q.items.len() >= config.queue_capacity {
            shared.stats.lock().unwrap().overloaded += 1;
            shared.obs.overloaded.inc();
            return Response::Overloaded;
        }
        q.items.push_back(Work::Mutation { op, tx });
        shared.not_empty.notify_one();
    }
    rx.recv().unwrap_or_else(|_| {
        Response::Error(Error::new(ErrorKind::Internal, "server shut down before answering"))
    })
}

fn lookup_collection(shared: &Shared, name: &str) -> Result<Arc<Collection>, Error> {
    shared
        .collections
        .get(name)
        .ok_or_else(|| Error::invalid(format!("unknown collection {name:?}")))
}

/// Answer one query against a named collection, synchronously in the
/// connection thread. Collection traffic skips the batching queue: the
/// default engine's batcher exists to coalesce load on *one* shared
/// index, while collections are many independent small indexes.
fn answer_collection_query(
    shared: &Shared,
    config: &ServiceConfig,
    name: &str,
    ask: QueryAsk,
) -> Response {
    let QueryAsk { k, vector, want_stats, want_trace, filter, min_seq, .. } = ask;
    let col = match lookup_collection(shared, name) {
        Ok(col) => col,
        Err(e) => return Response::Error(e),
    };
    if min_seq > 0 && min_seq > col.last_seq() {
        return Response::Error(Error::new(
            ErrorKind::Stale,
            format!(
                "collection {name:?} is at seq {} but the query requires at least {min_seq}",
                col.last_seq()
            ),
        ));
    }
    if vector.len() != col.dim() {
        return Response::Error(Error::invalid(format!(
            "query dimensionality {} does not match collection {name:?} ({})",
            vector.len(),
            col.dim()
        )));
    }
    if k == 0 || k as usize > config.k_max {
        return Response::Error(Error::invalid(format!(
            "k = {k} out of range 1..={}",
            config.k_max
        )));
    }
    if !vector.iter().all(|x| x.is_finite()) {
        return Response::Error(Error::invalid("query contains non-finite coordinates"));
    }
    let opts = SearchOptions {
        timing: true,
        stage_timing: want_stats || want_trace,
        capture_spans: want_trace,
        filter: filter.filter(|p| !p.is_trivial()),
        ..SearchOptions::default()
    };
    let queries = Dataset::from_rows(std::slice::from_ref(&vector));
    let (mut results, agg) = col.index.query_batch_with(&queries, k as usize, &opts);
    let (nn, qstats) = results.remove(0);
    col.queries.inc();
    col.filtered.add(qstats.candidates_filtered as u64);
    {
        let mut st = shared.stats.lock().unwrap();
        st.queries += 1;
        st.engine.merge(&agg);
    }
    shared.obs.queries.inc();
    let cost = (want_stats || want_trace).then(|| QueryCost::from_stats(&qstats));
    Response::TopKV2 { trace_id: 0, neighbors: nn, cost }
}

/// Apply one mutation to a named collection, synchronously (its own
/// WAL append + fsync — replies certify durability just like the
/// batched default-engine path).
fn answer_collection_mutation(
    shared: &Shared,
    config: &ServiceConfig,
    name: &str,
    op: MutationOp,
) -> Response {
    let col = match lookup_collection(shared, name) {
        Ok(col) => col,
        Err(e) => return Response::Error(e),
    };
    if let MutationOp::Insert { vector, .. } = &op {
        if vector.len() != col.dim() {
            return Response::Error(Error::invalid(format!(
                "insert dimensionality {} does not match collection {name:?} ({})",
                vector.len(),
                col.dim()
            )));
        }
        if !vector.iter().all(|x| x.is_finite()) {
            return Response::Error(Error::invalid("insert contains non-finite coordinates"));
        }
    }
    match col.index.apply_batch(std::slice::from_ref(&op)) {
        Ok((acks, delta)) => {
            col.inserts.add(delta.inserts);
            col.deletes.add(delta.deletes + delta.delete_misses);
            shared.obs.inserts.add(delta.inserts);
            shared.obs.deletes.add(delta.deletes + delta.delete_misses);
            {
                let mut st = shared.stats.lock().unwrap();
                st.inserts += delta.inserts;
                st.deletes += delta.deletes + delta.delete_misses;
                st.engine.mutations.merge(&delta);
            }
            match col.index.checkpoint_if_wal_exceeds(config.checkpoint_wal_bytes) {
                Ok(true) => shared.stats.lock().unwrap().checkpoints += 1,
                Ok(false) => {}
                Err(e) => eprintln!("collection {name:?} checkpoint failed: {e}"),
            }
            match acks.into_iter().next() {
                Some(MutationAck::Inserted { oid, seq }) => Response::InsertAck { oid, seq },
                Some(MutationAck::Deleted { oid, found, seq }) => {
                    Response::DeleteAck { oid, found, seq }
                }
                None => Response::Error(Error::new(ErrorKind::Internal, "empty ack batch")),
            }
        }
        Err(e) => Response::Error(Error::new(
            ErrorKind::Io,
            format!("mutation on collection {name:?} failed: {e}"),
        )),
    }
}

/// The single batching worker: wait for work, linger for coalescing,
/// flush through the engine. Exits once draining *and* empty — both
/// checked under the queue lock, so no admitted request is stranded.
fn batcher_loop<E: ServeEngine>(engine: &E, shared: &Shared, config: &ServiceConfig) {
    loop {
        let batch: Vec<Work> = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if q.items.is_empty() {
                    if q.draining {
                        return;
                    }
                    q = shared.not_empty.wait(q).unwrap();
                    continue;
                }
                if q.items.len() >= config.max_batch || q.draining {
                    break;
                }
                // Linger: hold the pending work (it keeps counting
                // against the admission bound) while waiting for the
                // batch to fill.
                let linger_end = Instant::now() + config.max_delay;
                loop {
                    let now = Instant::now();
                    if now >= linger_end || q.items.len() >= config.max_batch || q.draining {
                        break;
                    }
                    let (guard, _) = shared.not_empty.wait_timeout(q, linger_end - now).unwrap();
                    q = guard;
                }
                break;
            }
            let take = q.items.len().min(config.max_batch);
            q.items.drain(..take).collect()
        };
        flush(engine, shared, config, batch);
    }
}

/// Answer one drained batch: apply its mutations first (one durable
/// [`ServeEngine::apply_mutations`] call — group commit), acknowledge
/// them, then expire stale deadlines and run the remaining queries as
/// one engine batch at the largest requested `k`. Ordering mutations
/// before queries keeps a flush monotone: no query in the batch can
/// miss a mutation that was acknowledged before the query was sent.
fn flush<E: ServeEngine>(engine: &E, shared: &Shared, config: &ServiceConfig, batch: Vec<Work>) {
    let obs = &shared.obs;
    let now = Instant::now();
    let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
    let mut expired: Vec<Pending> = Vec::new();
    let mut ops: Vec<MutationOp> = Vec::new();
    let mut op_txs: Vec<mpsc::Sender<Response>> = Vec::new();
    for w in batch {
        match w {
            Work::Mutation { op, tx } => {
                ops.push(op);
                op_txs.push(tx);
            }
            Work::Query(p) => match p.deadline {
                Some(d) if d <= now => expired.push(p),
                _ => live.push(p),
            },
        }
    }

    let mut wal_ns: Option<u64> = None;
    if !ops.is_empty() {
        let wal_start = obs.on().then(Instant::now);
        match engine.apply_mutations(ops) {
            Ok((acks, delta)) => {
                wal_ns = wal_start.map(|s| s.elapsed().as_nanos() as u64);
                obs.inserts.add(delta.inserts);
                obs.deletes.add(delta.deletes + delta.delete_misses);
                obs.set_objects(engine.len() as u64);
                {
                    let mut st = shared.stats.lock().unwrap();
                    st.inserts += delta.inserts;
                    st.deletes += delta.deletes + delta.delete_misses;
                    st.mutation_batches += 1;
                    st.engine.mutations.merge(&delta);
                }
                // Replies only after the stats are recorded (and, more
                // importantly, after apply_mutations' fsync returned).
                for (tx, ack) in op_txs.iter().zip(acks) {
                    let resp = match ack {
                        MutationAck::Inserted { oid, seq } => Response::InsertAck { oid, seq },
                        MutationAck::Deleted { oid, found, seq } => {
                            Response::DeleteAck { oid, found, seq }
                        }
                    };
                    let _ = tx.send(resp);
                }
                // Size-triggered checkpoint, after the acks went out
                // (they are already WAL-durable; the checkpoint only
                // bounds recovery time). A failure is not a lost write,
                // so it is reported rather than propagated.
                match engine.checkpoint_if_wal_exceeds(config.checkpoint_wal_bytes) {
                    Ok(true) => shared.stats.lock().unwrap().checkpoints += 1,
                    Ok(false) => {}
                    Err(e) => eprintln!("checkpoint failed: {e}"),
                }
            }
            Err(e) => {
                let mut st = shared.stats.lock().unwrap();
                st.errors += op_txs.len() as u64;
                drop(st);
                obs.errors.add(op_txs.len() as u64);
                for tx in &op_txs {
                    let _ = tx.send(Response::Error(Error::new(
                        ErrorKind::Io,
                        format!("mutation failed: {e}"),
                    )));
                }
            }
        }
    }
    let batch_len = live.len();
    // Whole-batch trace capture when any client asked for a trace;
    // positional sampling (`trace_every`) when the observability layer
    // is on. Stage timing turns on for either — it is what feeds both
    // the per-stage histograms and the v2 cost blocks.
    let any_trace = live.iter().any(|p| p.want_trace);
    let any_stats = live.iter().any(|p| p.want_stats);
    let sample_every = if obs.on() { obs.config().trace_sample_every } else { 0 };
    let results = if batch_len > 0 {
        // The filter rides SearchOptions (whole-batch scope), so a
        // flush runs one engine call per distinct predicate. Queries
        // sharing a predicate — including the unfiltered majority —
        // still coalesce; answers scatter back to queue order.
        let mut groups: Vec<(Option<Predicate>, Vec<usize>)> = Vec::new();
        for (i, p) in live.iter().enumerate() {
            match groups.iter_mut().find(|(f, _)| *f == p.filter) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((p.filter, vec![i])),
            }
        }
        let mut results: Vec<Option<(Vec<Neighbor>, QueryStats)>> =
            (0..batch_len).map(|_| None).collect();
        let mut st_queries = 0u64;
        for (filter, idxs) in groups {
            let k_max = idxs.iter().map(|&i| live[i].k).max().unwrap();
            let rows: Vec<Vec<f32>> =
                idxs.iter().map(|&i| std::mem::take(&mut live[i].vector)).collect();
            let queries = Dataset::from_rows(&rows);
            let opts = SearchOptions {
                timing: true,
                stage_timing: obs.on() || any_stats || any_trace,
                capture_spans: any_trace,
                trace_every: sample_every,
                filter,
                ..SearchOptions::default()
            };
            let (group_results, agg) = engine.query_batch_with(&queries, k_max, &opts);
            let mut st = shared.stats.lock().unwrap();
            st.queries += idxs.len() as u64;
            st.batches += 1;
            st.max_batch = st.max_batch.max(idxs.len());
            st.engine.merge(&agg);
            drop(st);
            st_queries += idxs.len() as u64;
            obs.batches.inc();
            obs.filtered.add(agg.filtered);
            for (&i, r) in idxs.iter().zip(group_results) {
                results[i] = Some(r);
            }
        }
        obs.queries.add(st_queries);
        results.into_iter().map(|r| r.expect("every live query answered")).collect()
    } else {
        Vec::new()
    };
    shared.stats.lock().unwrap().deadline_expired += expired.len() as u64;
    obs.deadline_expired.add(expired.len() as u64);
    obs.record_flush(now.elapsed().as_nanos() as u64, batch_len as u64, wal_ns);
    // Reply only after every counter is recorded: a client holding its
    // answer must find it reflected in an immediate stats read.
    for p in expired {
        let _ = p.tx.send(Response::DeadlineExceeded);
    }
    let answered_at = Instant::now();
    for (p, (mut nn, qstats)) in live.into_iter().zip(results) {
        nn.truncate(p.k);
        let queue_wait_ns = now.saturating_duration_since(p.enqueued_at).as_nanos() as u64;
        let total_ns = answered_at.saturating_duration_since(p.enqueued_at).as_nanos() as u64;
        obs.record_query(queue_wait_ns, total_ns, &qstats.stage);
        // A query is *traced* when it has spans it is entitled to:
        // either it asked, or positional sampling picked it. (A
        // batchmate's `want_trace` forces whole-batch capture; spans
        // nobody asked for are dropped here.)
        let traced = !qstats.spans.is_empty() && (p.want_trace || (sample_every > 0 && !any_trace));
        let trace_id = if traced {
            obs.traces.inc();
            obs.alloc_trace_id()
        } else {
            0
        };
        if traced {
            obs.maybe_log_slow(trace_id, total_ns, p.k as u32, &qstats.spans);
        } else {
            obs.maybe_log_slow(0, total_ns, p.k as u32, &[]);
        }
        let resp = if p.v2 {
            let cost = (p.want_stats || p.want_trace).then(|| {
                let mut c = QueryCost::from_stats(&qstats);
                if !p.want_trace {
                    c.spans.clear();
                }
                c
            });
            Response::TopKV2 {
                trace_id: if p.want_trace { trace_id } else { 0 },
                neighbors: nn,
                cost,
            }
        } else {
            Response::TopK(nn)
        };
        let _ = p.tx.send(resp);
    }
}

fn begin_shutdown(shared: &Shared) {
    shared.queue.lock().unwrap().draining = true;
    shared.obs.set_draining();
    shared.stopping.store(true, Ordering::SeqCst);
    shared.not_empty.notify_all();
    // Unblock the accept loop: it re-checks `stopping` per connection,
    // so one throwaway local connection gets it past `accept`.
    let _ = TcpStream::connect(shared.local_addr);
}

/// Serialize the current counters (plus static index facts) for the
/// stats frame.
///
/// The document is the **schema 2** envelope: a `"schema": 2` marker
/// plus per-stage nanosecond totals (`engine.stage_*_nanos`) and,
/// when observability is on, a `latency` object with live quantiles.
/// Every v1 field keeps its exact name and place, so v1 consumers —
/// including the naive key scanners in [`crate::json`] — keep working
/// unchanged.
fn render_stats<E: ServeEngine>(engine: &E, shared: &Shared) -> String {
    let st = shared.stats.lock().unwrap().clone();
    let draining = shared.queue.lock().unwrap().draining;
    let e = &st.engine;
    let engine_obj = JsonObject::new()
        .field_u64("rounds", e.rounds)
        .field_u64("collisions", e.collisions)
        .field_u64("verified", e.verified)
        .field_u64("abandoned", e.abandoned)
        .field_u64("filtered", e.filtered)
        .field_u64("t1", e.t1 as u64)
        .field_u64("t2", e.t2 as u64)
        .field_u64("exhausted", e.exhausted as u64)
        .field_u64("io_reads", e.io.reads)
        .field_u64("elapsed_nanos", e.elapsed_nanos)
        .field_u64("stage_hash_nanos", e.stage.hash)
        .field_u64("stage_count_nanos", e.stage.count)
        .field_u64("stage_verify_nanos", e.stage.verify)
        .field_u64("stage_rank_nanos", e.stage.rank)
        .finish();
    let mut doc = JsonObject::new()
        .field_u64("schema", 2)
        .field_str("state", if draining { "draining" } else { "serving" })
        .field_u64("shards", engine.num_shards() as u64)
        .field_u64("objects", engine.len() as u64)
        .field_u64("dim", engine.dim() as u64)
        .field_u64("queries", st.queries)
        .field_u64("batches", st.batches)
        .field_u64("max_batch", st.max_batch as u64)
        .field_u64("overloaded", st.overloaded)
        .field_u64("deadline_expired", st.deadline_expired)
        .field_u64("errors", st.errors)
        .field_u64("inserts", st.inserts)
        .field_u64("deletes", st.deletes)
        .field_u64("mutation_batches", st.mutation_batches)
        .field_u64("checkpoints", st.checkpoints)
        .field_u64("collections", shared.collections.list().len() as u64)
        .field_obj("engine", &engine_obj);
    // Cumulative write-path counters straight from the engine (these
    // include recovery state — `last_seq` survives restarts — where the
    // ServiceStats counters above start at zero per process).
    if let Some(m) = engine.mutation_stats() {
        let mutations = JsonObject::new()
            .field_u64("inserts", m.inserts)
            .field_u64("deletes", m.deletes)
            .field_u64("delete_misses", m.delete_misses)
            .field_u64("batches", m.batches)
            .field_u64("wal_records", m.wal_records)
            .field_u64("wal_syncs", m.wal_syncs)
            .field_u64("wal_bytes", m.wal_bytes)
            .field_u64("last_seq", m.last_seq)
            .finish();
        doc = doc.field_obj("mutations", &mutations);
    }
    // Live latency quantiles, only when the histograms are being fed.
    if shared.obs.on() {
        let (p50, p99) = shared.obs.query_latency_quantiles();
        let latency = JsonObject::new()
            .field_u64("query_p50_nanos", p50)
            .field_u64("query_p99_nanos", p99)
            .finish();
        doc = doc.field_obj("latency", &latency);
    }
    doc.finish()
}

//! `cc-service` — stand up a collision-counting query server.
//!
//! Two modes:
//!
//! * `--mode sharded` (default): generate a synthetic clustered
//!   dataset, partition it across shards, build one read-only
//!   [`ShardedEngine`] and serve queries.
//! * `--mode dynamic`: serve a mutable [`MutableIndex`] that accepts
//!   insert/delete frames. With `--wal DIR` the index is durable —
//!   mutations are WAL-logged under `DIR` and recovered on restart; the
//!   synthetic dataset seeds the index only when `DIR` is empty.
//!   Without `--wal` the index is in-memory (acks do not survive a
//!   restart).
//! * `--mode paged`: build the out-of-core disk tier ([`PagedStore`])
//!   under `--paged-file PATH` (default: a scratch file in the temp
//!   dir, deleted on exit) and serve read-only queries through the
//!   pinned buffer pool (`--pool-pages N`, default ~5% of the page
//!   file). With `--metrics-addr` the pool exports the `cc_bufpool_*`
//!   Prometheus families.
//! * `--mode dynamic --replicate-from HOST:PORT`: run as a read-only
//!   **follower** — never seeds, refuses direct writes, and advances
//!   only by pulling the primary's WAL stream (`--node-name NAME`
//!   labels it on the primary's `cc_replica_lag_seq` gauge).
//! * `--mode router`: no engine at all — scatter-gather reads across
//!   `--replicas A,B[,…]` groups (repeat the flag per shard group)
//!   with per-leg `--node-deadline-ms` failover, and forward every
//!   write to `--primary HOST:PORT`.
//!
//! ```text
//! cargo run -p cc-service --release -- --shards 4
//! cargo run -p cc-service --release -- --mode dynamic --wal /tmp/cc-wal
//! cargo run -p cc-service --release -- --mode paged --pool-pages 512
//! cargo run -p cc-service --release -- --mode dynamic --wal /tmp/f1 \
//!     --replicate-from 127.0.0.1:7878 --node-name f1 --addr 127.0.0.1:7879
//! cargo run -p cc-service --release -- --mode router --primary 127.0.0.1:7878 \
//!     --replicas 127.0.0.1:7879,127.0.0.1:7880 --addr 127.0.0.1:7900
//! ```
//!
//! Flags (all optional): `--addr HOST:PORT` (default `127.0.0.1:7878`),
//! `--mode sharded|dynamic|paged` (sharded), `--wal DIR` (dynamic
//! only), `--paged-file PATH` / `--pool-pages N` (paged only),
//! `--collections-dir DIR` (persist named collections under `DIR`;
//! without it collections are in-memory),
//! `--shards S` (4), `--n N` (20000), `--dim D` (16), `--seed SEED`
//! (42), `--bucket-width W` (1.0), `--queue-cap Q` (1024),
//! `--max-batch B` (32), `--max-delay-us US` (2000), `--k-max K`
//! (1024), `--checkpoint-wal-bytes BYTES` (16 MiB; the batcher
//! checkpoints and truncates the WAL whenever it exceeds this).
//!
//! Observability: `--metrics-addr HOST:PORT` turns the metrics layer
//! on and serves `GET /metrics` (Prometheus text format), `/healthz`
//! and `/slowlog` there; `--slow-query-ms MS` (100, 0 disables the
//! slow log) sets the slow-log threshold and `--trace-sample N` (64)
//! captures a span tree for every Nth query. Without `--metrics-addr`
//! the service records nothing per query.
//!
//! Kernels: `--kernel auto|scalar|sse2|avx2|neon` (auto) pins the SIMD
//! kernel both hot loops dispatch through; `auto` honors
//! `CC_FORCE_SCALAR=1` and otherwise picks the best the CPU supports.
//! The selection is exported as the `cc_kernel_info` gauge.

use c2lsh::{
    C2lshConfig, DynamicIndex, MutableIndex, MutationOp, PagedStore, ShardedData, ShardedEngine,
};
use cc_obs::{MetricsServer, ObsConfig};
use cc_service::{BufpoolSnapshot, ServerObs, ServiceConfig};
use cc_vector::gen::{generate, Distribution};
use std::net::TcpListener;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    addr: String,
    mode: String,
    wal: Option<String>,
    paged_file: Option<String>,
    pool_pages: Option<usize>,
    collections_dir: Option<String>,
    shards: usize,
    n: usize,
    dim: usize,
    seed: u64,
    bucket_width: f64,
    queue_cap: usize,
    max_batch: usize,
    max_delay_us: u64,
    k_max: usize,
    checkpoint_wal_bytes: u64,
    metrics_addr: Option<String>,
    slow_query_ms: u64,
    trace_sample: u32,
    kernel: Option<c2lsh::Kernel>,
    replicate_from: Option<String>,
    node_name: Option<String>,
    primary: Option<String>,
    replicas: Vec<String>,
    node_deadline_ms: u64,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            addr: "127.0.0.1:7878".into(),
            mode: "sharded".into(),
            wal: None,
            paged_file: None,
            pool_pages: None,
            collections_dir: None,
            shards: 4,
            n: 20_000,
            dim: 16,
            seed: 42,
            bucket_width: 1.0,
            queue_cap: 1024,
            max_batch: 32,
            max_delay_us: 2000,
            k_max: 1024,
            checkpoint_wal_bytes: 16 << 20,
            metrics_addr: None,
            slow_query_ms: 100,
            trace_sample: 64,
            kernel: None,
            replicate_from: None,
            node_name: None,
            primary: None,
            replicas: Vec::new(),
            node_deadline_ms: 500,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    exit(2);
                })
            };
            match flag.as_str() {
                "--addr" => args.addr = value("--addr"),
                "--mode" => args.mode = value("--mode"),
                "--wal" => args.wal = Some(value("--wal")),
                "--paged-file" => args.paged_file = Some(value("--paged-file")),
                "--pool-pages" => {
                    args.pool_pages = Some(parse(&value("--pool-pages"), "--pool-pages"))
                }
                "--collections-dir" => args.collections_dir = Some(value("--collections-dir")),
                "--shards" => args.shards = parse(&value("--shards"), "--shards"),
                "--n" => args.n = parse(&value("--n"), "--n"),
                "--dim" => args.dim = parse(&value("--dim"), "--dim"),
                "--seed" => args.seed = parse(&value("--seed"), "--seed"),
                "--bucket-width" => {
                    args.bucket_width = parse(&value("--bucket-width"), "--bucket-width")
                }
                "--queue-cap" => args.queue_cap = parse(&value("--queue-cap"), "--queue-cap"),
                "--max-batch" => args.max_batch = parse(&value("--max-batch"), "--max-batch"),
                "--max-delay-us" => {
                    args.max_delay_us = parse(&value("--max-delay-us"), "--max-delay-us")
                }
                "--k-max" => args.k_max = parse(&value("--k-max"), "--k-max"),
                "--checkpoint-wal-bytes" => {
                    args.checkpoint_wal_bytes =
                        parse(&value("--checkpoint-wal-bytes"), "--checkpoint-wal-bytes")
                }
                "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")),
                "--slow-query-ms" => {
                    args.slow_query_ms = parse(&value("--slow-query-ms"), "--slow-query-ms")
                }
                "--trace-sample" => {
                    args.trace_sample = parse(&value("--trace-sample"), "--trace-sample")
                }
                "--replicate-from" => args.replicate_from = Some(value("--replicate-from")),
                "--node-name" => args.node_name = Some(value("--node-name")),
                "--primary" => args.primary = Some(value("--primary")),
                "--replicas" => {
                    // Comma-separated within a group; repeat the flag
                    // for more shard groups.
                    args.replicas.push(value("--replicas"));
                }
                "--node-deadline-ms" => {
                    args.node_deadline_ms =
                        parse(&value("--node-deadline-ms"), "--node-deadline-ms")
                }
                "--kernel" => {
                    args.kernel = c2lsh::Kernel::parse(&value("--kernel")).unwrap_or_else(|e| {
                        eprintln!("{e}");
                        exit(2);
                    })
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: cc-service [--addr HOST:PORT] \
                         [--mode sharded|dynamic|paged|router] \
                         [--wal DIR] [--paged-file PATH] [--pool-pages N] \
                         [--collections-dir DIR] [--shards S] [--n N] [--dim D] \
                         [--seed SEED] [--bucket-width W] [--queue-cap Q] [--max-batch B] \
                         [--max-delay-us US] [--k-max K] [--checkpoint-wal-bytes BYTES] \
                         [--metrics-addr HOST:PORT] [--slow-query-ms MS] [--trace-sample N] \
                         [--kernel auto|scalar|sse2|avx2|neon] \
                         [--replicate-from HOST:PORT] [--node-name NAME] \
                         [--primary HOST:PORT] [--replicas A,B[,…]]… \
                         [--node-deadline-ms MS]"
                    );
                    exit(0);
                }
                other => {
                    eprintln!("unknown flag {other} (try --help)");
                    exit(2);
                }
            }
        }
        args
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value {s:?} for {flag}");
        exit(2);
    })
}

fn main() {
    let args = Args::parse();
    if args.shards == 0 || args.n == 0 || args.dim == 0 {
        eprintln!("--shards, --n and --dim must all be at least 1");
        exit(2);
    }
    // Pin the SIMD kernel before anything hashes: index build, WAL
    // recovery and queries must all dispatch through the same kernel.
    let kd = match args.kernel {
        Some(k) => c2lsh::kernels::init(k).unwrap_or_else(|e| {
            eprintln!("--kernel: {e}");
            exit(2);
        }),
        None => c2lsh::kernels::dispatch(),
    };
    eprintln!("kernel: {}", kd.kernel());
    let config = C2lshConfig::builder().bucket_width(args.bucket_width).seed(args.seed).build();
    let mut service = ServiceConfig {
        max_batch: args.max_batch,
        max_delay: Duration::from_micros(args.max_delay_us),
        queue_capacity: args.queue_cap,
        k_max: args.k_max,
        checkpoint_wal_bytes: args.checkpoint_wal_bytes,
        ..ServiceConfig::default()
    };
    // Named collections share the server's hashing config; with a
    // root directory they are durable (each gets its own WAL under
    // `DIR/<name>/`), without one they live in memory.
    service.collections.config = config.clone();
    service.collections.root = args.collections_dir.as_ref().map(std::path::PathBuf::from);
    let listener = TcpListener::bind(&args.addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", args.addr);
        exit(1);
    });
    let shown_addr = listener.local_addr().map(|a| a.to_string()).unwrap_or(args.addr.clone());

    // Metrics are pay-for-what-you-ask: the registry only records
    // per-query latency (and samples traces) when --metrics-addr is
    // given. Counters are maintained either way — they are free.
    let obs = Arc::new(ServerObs::new(match args.metrics_addr {
        Some(_) => ObsConfig {
            enabled: true,
            trace_sample_every: args.trace_sample,
            slow_query_ms: args.slow_query_ms,
            slow_log_capacity: 64,
        },
        None => ObsConfig::default(),
    }));
    let _metrics_server = args.metrics_addr.as_ref().map(|addr| {
        let server = MetricsServer::bind(addr.as_str(), obs.clone()).unwrap_or_else(|e| {
            eprintln!("cannot bind metrics address {addr}: {e}");
            exit(1);
        });
        let shown = server.local_addr();
        eprintln!("metrics on http://{shown}/metrics (healthz, slowlog)");
        server
    });

    let stats = match args.mode.as_str() {
        "sharded" => {
            eprintln!("generating {} clustered vectors in R^{}…", args.n, args.dim);
            let data = generate(
                Distribution::GaussianMixture { clusters: 10, spread: 0.02, scale: 10.0 },
                args.n,
                args.dim,
                args.seed,
            );
            let sharded = ShardedData::partition(&data, args.shards);
            eprintln!("building {} shards…", args.shards);
            let engine = ShardedEngine::build(&sharded, &config);
            let params = engine.params();
            eprintln!(
                "cc-service listening on {shown_addr} — read-only, n = {}, d = {}, \
                 shards = {}, m = {}, l = {}",
                args.n, args.dim, args.shards, params.m, params.l,
            );
            cc_service::serve_with_obs(&engine, listener, &service, obs)
        }
        "paged" => {
            eprintln!("generating {} clustered vectors in R^{}…", args.n, args.dim);
            let data = generate(
                Distribution::GaussianMixture { clusters: 10, spread: 0.02, scale: 10.0 },
                args.n,
                args.dim,
                args.seed,
            );
            let scratch = args.paged_file.is_none();
            let path = args.paged_file.clone().map(std::path::PathBuf::from).unwrap_or_else(|| {
                std::env::temp_dir().join(format!("cc-service-paged-{}.ccpg", std::process::id()))
            });
            eprintln!("building the paged disk tier at {}…", path.display());
            let store = PagedStore::build(&data, &config, &path, 1).unwrap_or_else(|e| {
                eprintln!("cannot build page file {}: {e}", path.display());
                exit(1);
            });
            let mut store = if scratch { store.delete_file_on_drop() } else { store };
            let file_pages = (store.file_bytes() as usize).div_ceil(c2lsh::PAGE_SIZE);
            let pool_pages = args.pool_pages.unwrap_or((file_pages / 20).max(64));
            store.set_pool_pages(pool_pages);
            let store = Arc::new(store);
            // The scrape path snapshots the pool through a weak-free
            // clone of the Arc; plain counter reads, no query-path
            // cost.
            let pool_src = store.clone();
            obs.set_bufpool_source(Box::new(move || {
                let s = pool_src.pool_stats();
                BufpoolSnapshot {
                    requests: s.requests,
                    hits: s.hits,
                    misses: s.misses,
                    evictions: s.evictions,
                    capacity_pages: pool_src.pool_pages() as u64,
                    resident_pages: pool_src.pool_resident() as u64,
                }
            }));
            let params = store.params();
            eprintln!(
                "cc-service listening on {shown_addr} — paged (out-of-core, read-only), \
                 n = {}, d = {}, file pages = {file_pages}, pool pages = {pool_pages}, \
                 m = {}, l = {}",
                args.n, args.dim, params.m, params.l,
            );
            cc_service::serve_with_obs(&*store, listener, &service, obs)
        }
        "router" => {
            let primary = args.primary.clone().unwrap_or_else(|| {
                eprintln!("--mode router needs --primary HOST:PORT");
                exit(2);
            });
            if args.replicas.is_empty() {
                eprintln!("--mode router needs at least one --replicas A[,B,…] group");
                exit(2);
            }
            let router = cc_service::RouterConfig {
                primary,
                groups: args
                    .replicas
                    .iter()
                    .map(|g| g.split(',').map(str::to_string).collect())
                    .collect(),
                node_deadline: Duration::from_millis(args.node_deadline_ms),
                primary_reads: true,
            };
            eprintln!(
                "cc-service listening on {shown_addr} — router, primary = {}, groups = {:?}",
                router.primary, router.groups,
            );
            match cc_service::route_with_obs(listener, &router, obs) {
                Ok(stats) => {
                    eprintln!(
                        "router drained: {} queries, {} legs, {} failovers, \
                         {} node errors, {} forwards, {} errors",
                        stats.queries,
                        stats.fanout,
                        stats.failovers,
                        stats.node_errors,
                        stats.forwards,
                        stats.errors,
                    );
                    return;
                }
                Err(e) => {
                    eprintln!("router failed: {e}");
                    exit(1);
                }
            }
        }
        "dynamic" => {
            let engine = match &args.wal {
                Some(dir) => {
                    MutableIndex::open(dir, args.dim, args.n, &config).unwrap_or_else(|e| {
                        eprintln!("cannot open WAL directory {dir}: {e}");
                        exit(1);
                    })
                }
                None => MutableIndex::ephemeral(DynamicIndex::new(args.dim, args.n, &config)),
            };
            // A follower's state may only advance through the
            // replication stream: never seed it, and refuse direct
            // writes — either would fork its sequence history from the
            // primary's.
            let follower = args.replicate_from.is_some();
            if follower {
                service.read_only = true;
            }
            if !follower && engine.is_empty() && engine.last_seq() == 0 {
                // Fresh store: seed it with the synthetic dataset so
                // the server has something to answer about. A recovered
                // store keeps its own data untouched.
                eprintln!("seeding {} clustered vectors in R^{}…", args.n, args.dim);
                let data = generate(
                    Distribution::GaussianMixture { clusters: 10, spread: 0.02, scale: 10.0 },
                    args.n,
                    args.dim,
                    args.seed,
                );
                // Chunked batches keep the WAL group commits (and the
                // clone-per-batch cost) bounded during the bulk load.
                let rows: Vec<MutationOp> = data
                    .iter()
                    .map(|v| MutationOp::Insert { vector: v.to_vec(), meta: Default::default() })
                    .collect();
                for chunk in rows.chunks(4096) {
                    if let Err(e) = engine.apply_batch(chunk) {
                        eprintln!("bulk load failed: {e}");
                        exit(1);
                    }
                }
                // Fold the seed into a checkpoint immediately: without
                // this every restart replays the whole bulk load from
                // the WAL (no-op in ephemeral mode).
                if let Err(e) = engine.checkpoint() {
                    eprintln!("post-seed checkpoint failed: {e}");
                    exit(1);
                }
            }
            eprintln!(
                "cc-service listening on {shown_addr} — dynamic{}{}, n = {}, d = {}, seq = {}",
                if args.wal.is_some() { " (WAL-backed)" } else { " (ephemeral)" },
                if follower { ", read-only follower" } else { "" },
                engine.len(),
                args.dim,
                engine.last_seq(),
            );
            match &args.replicate_from {
                Some(primary) => {
                    // The pull loop runs next to the serve loop; once
                    // the serve loop drains, raise the stop flag and
                    // wait the loop out (bounded by its read timeout).
                    let name = args
                        .node_name
                        .clone()
                        .unwrap_or_else(|| format!("follower-{}", std::process::id()));
                    let repl = cc_service::ReplicationConfig::new(primary.clone(), name);
                    let stop = std::sync::atomic::AtomicBool::new(false);
                    let engine = &engine;
                    let repl = &repl;
                    let stop = &stop;
                    crossbeam::scope(move |s| {
                        let puller = s.spawn(move |_| cc_service::run_follower(engine, repl, stop));
                        let stats = cc_service::serve_with_obs(engine, listener, &service, obs);
                        stop.store(true, std::sync::atomic::Ordering::SeqCst);
                        let pulled = puller.join().expect("replication thread panicked");
                        eprintln!(
                            "replication stopped: {} batches, {} records, \
                             {} heartbeats, {} reconnects",
                            pulled.batches, pulled.records, pulled.heartbeats, pulled.reconnects,
                        );
                        stats
                    })
                    .expect("follower worker panicked")
                }
                None => cc_service::serve_with_obs(&engine, listener, &service, obs),
            }
        }
        other => {
            eprintln!("unknown --mode {other} (expected sharded, dynamic, paged or router)");
            exit(2);
        }
    };

    match stats {
        Ok(stats) => {
            eprintln!(
                "drained: {} queries in {} batches (largest {}), \
                 {} inserts, {} deletes, {} overloaded, {} expired, {} errors",
                stats.queries,
                stats.batches,
                stats.max_batch,
                stats.inserts,
                stats.deletes,
                stats.overloaded,
                stats.deadline_expired,
                stats.errors,
            );
        }
        Err(e) => {
            eprintln!("server failed: {e}");
            exit(1);
        }
    }
}

//! `cc-service` — stand up a sharded collision-counting query server.
//!
//! Generates a synthetic clustered dataset, partitions it across
//! shards, builds one [`ShardedEngine`] and serves it until a client
//! sends the shutdown frame:
//!
//! ```text
//! cargo run -p cc-service --release -- --shards 4
//! ```
//!
//! Flags (all optional): `--addr HOST:PORT` (default `127.0.0.1:7878`),
//! `--shards S` (4), `--n N` (20000), `--dim D` (16), `--seed SEED`
//! (42), `--bucket-width W` (1.0), `--queue-cap Q` (1024),
//! `--max-batch B` (32), `--max-delay-us US` (2000), `--k-max K`
//! (1024).

use c2lsh::{C2lshConfig, ShardedData, ShardedEngine};
use cc_service::ServiceConfig;
use cc_vector::gen::{generate, Distribution};
use std::net::TcpListener;
use std::process::exit;
use std::time::Duration;

struct Args {
    addr: String,
    shards: usize,
    n: usize,
    dim: usize,
    seed: u64,
    bucket_width: f64,
    queue_cap: usize,
    max_batch: usize,
    max_delay_us: u64,
    k_max: usize,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            addr: "127.0.0.1:7878".into(),
            shards: 4,
            n: 20_000,
            dim: 16,
            seed: 42,
            bucket_width: 1.0,
            queue_cap: 1024,
            max_batch: 32,
            max_delay_us: 2000,
            k_max: 1024,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    exit(2);
                })
            };
            match flag.as_str() {
                "--addr" => args.addr = value("--addr"),
                "--shards" => args.shards = parse(&value("--shards"), "--shards"),
                "--n" => args.n = parse(&value("--n"), "--n"),
                "--dim" => args.dim = parse(&value("--dim"), "--dim"),
                "--seed" => args.seed = parse(&value("--seed"), "--seed"),
                "--bucket-width" => {
                    args.bucket_width = parse(&value("--bucket-width"), "--bucket-width")
                }
                "--queue-cap" => args.queue_cap = parse(&value("--queue-cap"), "--queue-cap"),
                "--max-batch" => args.max_batch = parse(&value("--max-batch"), "--max-batch"),
                "--max-delay-us" => {
                    args.max_delay_us = parse(&value("--max-delay-us"), "--max-delay-us")
                }
                "--k-max" => args.k_max = parse(&value("--k-max"), "--k-max"),
                "--help" | "-h" => {
                    eprintln!(
                        "usage: cc-service [--addr HOST:PORT] [--shards S] [--n N] [--dim D] \
                         [--seed SEED] [--bucket-width W] [--queue-cap Q] [--max-batch B] \
                         [--max-delay-us US] [--k-max K]"
                    );
                    exit(0);
                }
                other => {
                    eprintln!("unknown flag {other} (try --help)");
                    exit(2);
                }
            }
        }
        args
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value {s:?} for {flag}");
        exit(2);
    })
}

fn main() {
    let args = Args::parse();
    if args.shards == 0 || args.n == 0 || args.dim == 0 {
        eprintln!("--shards, --n and --dim must all be at least 1");
        exit(2);
    }
    eprintln!("generating {} clustered vectors in R^{}…", args.n, args.dim);
    let data = generate(
        Distribution::GaussianMixture { clusters: 10, spread: 0.02, scale: 10.0 },
        args.n,
        args.dim,
        args.seed,
    );
    let config = C2lshConfig::builder().bucket_width(args.bucket_width).seed(args.seed).build();
    let sharded = ShardedData::partition(&data, args.shards);
    eprintln!("building {} shards…", args.shards);
    let engine = ShardedEngine::build(&sharded, &config);
    let params = engine.params();
    let service = ServiceConfig {
        max_batch: args.max_batch,
        max_delay: Duration::from_micros(args.max_delay_us),
        queue_capacity: args.queue_cap,
        k_max: args.k_max,
        ..ServiceConfig::default()
    };

    let listener = TcpListener::bind(&args.addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", args.addr);
        exit(1);
    });
    eprintln!(
        "cc-service listening on {} — n = {}, d = {}, shards = {}, m = {}, l = {}",
        listener.local_addr().map(|a| a.to_string()).unwrap_or(args.addr.clone()),
        args.n,
        args.dim,
        args.shards,
        params.m,
        params.l,
    );
    match cc_service::serve(&engine, listener, &service) {
        Ok(stats) => {
            eprintln!(
                "drained: {} queries in {} batches (largest {}), \
                 {} overloaded, {} expired, {} errors",
                stats.queries,
                stats.batches,
                stats.max_batch,
                stats.overloaded,
                stats.deadline_expired,
                stats.errors,
            );
        }
        Err(e) => {
            eprintln!("server failed: {e}");
            exit(1);
        }
    }
}

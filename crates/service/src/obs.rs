//! The service's live metric registry: counters, stage histograms,
//! the slow-query ring, and the Prometheus renderer behind both the
//! [`crate::Request::Metrics`] opcode and the `--metrics-addr` HTTP
//! listener.
//!
//! One [`ServerObs`] lives for the whole service lifetime and is
//! shared (via `Arc`) between the serving core — which feeds it from
//! the flush path — and the scrape listener, which renders it on
//! demand. Everything inside is lock-free or locked off the hot path:
//! counters are striped atomics, histograms are atomic bucket arrays,
//! and the slow log's mutex is only taken for queries already known to
//! be slow.
//!
//! The cheap monotone counters are maintained unconditionally (they
//! also back the stats frame); the per-query histograms, traces and
//! slow log are gated on [`ObsConfig::enabled`] so a service started
//! without observability pays nothing per query.

use crate::collections::CollectionMetricsRow;
use cc_obs::{Counter, Histogram, MetricsSource, ObsConfig, PromText, SlowLog, SlowQuery};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A provider of per-collection counter snapshots — the serving layer
/// installs one backed by its collection registry.
pub type CollectionsSource = Box<dyn Fn() -> Vec<CollectionMetricsRow> + Send + Sync>;

/// A snapshot of the paged tier's pinned buffer pool — a plain struct
/// (not the storage crate's stats type) so the registry stays free of
/// engine-layer dependencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufpoolSnapshot {
    /// Page lookups served (hits + misses).
    pub requests: u64,
    /// Lookups satisfied from a resident frame.
    pub hits: u64,
    /// Lookups that went to disk.
    pub misses: u64,
    /// Frames recycled by the clock sweep.
    pub evictions: u64,
    /// Pool capacity, in pages.
    pub capacity_pages: u64,
    /// Pages currently resident.
    pub resident_pages: u64,
}

impl BufpoolSnapshot {
    /// Hits over requests; 0 before any traffic.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// A provider of buffer-pool snapshots — installed by the serving
/// layer when the engine is the paged disk tier.
pub type BufpoolSource = Box<dyn Fn() -> BufpoolSnapshot + Send + Sync>;

/// A provider of per-replica lag rows `(replica, lag_in_seqs)` —
/// installed by the serving layer when this node is a replication
/// primary with at least one subscriber.
pub type ReplicasSource = Box<dyn Fn() -> Vec<(String, u64)> + Send + Sync>;

/// Live metric registry for one service instance.
pub struct ServerObs {
    config: ObsConfig,
    // Index facts mirrored for the scrape path (the listener has no
    // engine reference).
    objects: AtomicU64,
    dim: AtomicU64,
    shards: AtomicU64,
    draining: AtomicBool,
    // Monotone counters (also visible in the stats frame).
    /// Queries answered with a top-k response.
    pub queries: Counter,
    /// Engine flushes performed.
    pub batches: Counter,
    /// Requests answered with an error frame.
    pub errors: Counter,
    /// Queries refused at admission.
    pub overloaded: Counter,
    /// Queries expired while queued.
    pub deadline_expired: Counter,
    /// Inserts acknowledged.
    pub inserts: Counter,
    /// Deletes acknowledged (found or not).
    pub deletes: Counter,
    /// Candidates rejected by filter predicates before verification.
    pub filtered: Counter,
    /// Queries that had a span tree captured.
    pub traces: Counter,
    /// Queries recorded in the slow log.
    pub slow_queries: Counter,
    /// Router: per-node sub-queries fanned out (scatter legs issued).
    pub router_fanout: Counter,
    /// Router: queries that fell over to another replica after a node
    /// failed, timed out, or answered stale.
    pub router_failover: Counter,
    /// Router: individual node legs that errored (connect failure,
    /// deadline, stale, or error frame).
    pub router_node_errors: Counter,
    // Latency histograms, all in nanoseconds.
    queue_wait: Histogram,
    query_total: Histogram,
    stage_hash: Histogram,
    stage_count: Histogram,
    stage_verify: Histogram,
    stage_rank: Histogram,
    wal_apply: Histogram,
    flush_total: Histogram,
    // Unitless.
    batch_size: Histogram,
    slowlog: SlowLog,
    next_trace_id: AtomicU64,
    /// Per-collection snapshot provider; installed by the serving
    /// layer once its registry exists (the mutex is only taken at
    /// install and scrape time, never on the query path).
    collections: Mutex<Option<CollectionsSource>>,
    /// Buffer-pool snapshot provider; installed when the engine is the
    /// paged disk tier (same locking discipline as `collections`).
    bufpool: Mutex<Option<BufpoolSource>>,
    /// Per-replica lag provider; installed when this node ships its
    /// WAL to subscribers (same locking discipline as `collections`).
    replicas: Mutex<Option<ReplicasSource>>,
}

impl ServerObs {
    /// A registry under `config` (disabled configs still count the
    /// monotone counters; histograms and traces stay untouched).
    pub fn new(config: ObsConfig) -> Self {
        ServerObs {
            config,
            objects: AtomicU64::new(0),
            dim: AtomicU64::new(0),
            shards: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            queries: Counter::new(),
            batches: Counter::new(),
            errors: Counter::new(),
            overloaded: Counter::new(),
            deadline_expired: Counter::new(),
            inserts: Counter::new(),
            deletes: Counter::new(),
            filtered: Counter::new(),
            traces: Counter::new(),
            slow_queries: Counter::new(),
            router_fanout: Counter::new(),
            router_failover: Counter::new(),
            router_node_errors: Counter::new(),
            queue_wait: Histogram::new(),
            query_total: Histogram::new(),
            stage_hash: Histogram::new(),
            stage_count: Histogram::new(),
            stage_verify: Histogram::new(),
            stage_rank: Histogram::new(),
            wal_apply: Histogram::new(),
            flush_total: Histogram::new(),
            batch_size: Histogram::new(),
            slowlog: SlowLog::new(config.slow_log_capacity),
            next_trace_id: AtomicU64::new(1),
            collections: Mutex::new(None),
            bufpool: Mutex::new(None),
            replicas: Mutex::new(None),
        }
    }

    /// Install (or replace) the per-collection snapshot provider.
    pub fn set_collections_source(&self, source: CollectionsSource) {
        *self.collections.lock().unwrap() = Some(source);
    }

    /// Install (or replace) the buffer-pool snapshot provider.
    pub fn set_bufpool_source(&self, source: BufpoolSource) {
        *self.bufpool.lock().unwrap() = Some(source);
    }

    /// Install (or replace) the per-replica lag provider.
    pub fn set_replicas_source(&self, source: ReplicasSource) {
        *self.replicas.lock().unwrap() = Some(source);
    }

    /// A registry with everything off (the plain [`crate::serve`] path).
    pub fn disabled() -> Self {
        ServerObs::new(ObsConfig::default())
    }

    /// Whether per-query instrumentation (histograms, traces, slow
    /// log) is live.
    pub fn on(&self) -> bool {
        self.config.enabled
    }

    /// The config this registry was built with.
    pub fn config(&self) -> ObsConfig {
        self.config
    }

    /// Mirror the index facts the scrape endpoint reports as gauges.
    pub fn set_index_info(&self, objects: u64, dim: u64, shards: u64) {
        self.objects.store(objects, Ordering::Relaxed);
        self.dim.store(dim, Ordering::Relaxed);
        self.shards.store(shards, Ordering::Relaxed);
    }

    /// Refresh the live-object gauge after mutations.
    pub fn set_objects(&self, objects: u64) {
        self.objects.store(objects, Ordering::Relaxed);
    }

    /// Flip the drain flag (`/healthz` answers 503 from then on).
    pub fn set_draining(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }

    /// Allocate a fresh nonzero trace id.
    pub fn alloc_trace_id(&self) -> u64 {
        self.next_trace_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Record one answered query: queue wait, end-to-end latency and
    /// the per-stage breakdown from the engine's stats. No-op unless
    /// enabled.
    pub fn record_query(&self, queue_wait_ns: u64, total_ns: u64, stage: &c2lsh::StageNanos) {
        if !self.on() {
            return;
        }
        self.queue_wait.record(queue_wait_ns);
        self.query_total.record(total_ns);
        self.stage_hash.record(stage.hash);
        self.stage_count.record(stage.count);
        self.stage_verify.record(stage.verify);
        self.stage_rank.record(stage.rank);
    }

    /// Record one flush: its wall time, queries coalesced, and the WAL
    /// apply time when the flush carried mutations. No-op unless
    /// enabled.
    pub fn record_flush(&self, flush_ns: u64, batch_len: u64, wal_ns: Option<u64>) {
        if !self.on() {
            return;
        }
        self.flush_total.record(flush_ns);
        self.batch_size.record(batch_len);
        if let Some(ns) = wal_ns {
            self.wal_apply.record(ns);
        }
    }

    /// Consider a query for the slow log; returns whether it was
    /// retained.
    pub fn maybe_log_slow(
        &self,
        trace_id: u64,
        total_ns: u64,
        k: u32,
        spans: &[c2lsh::SpanRecord],
    ) -> bool {
        if !self.on() || self.config.slow_query_ms == 0 {
            return false;
        }
        if total_ns < self.config.slow_query_ms.saturating_mul(1_000_000) {
            return false;
        }
        self.slow_queries.inc();
        self.slowlog.push(SlowQuery { trace_id, total_ns, k, spans: spans.to_vec() });
        true
    }

    /// p50/p99 of end-to-end query latency in nanoseconds (for the
    /// stats frame's `latency` object).
    pub fn query_latency_quantiles(&self) -> (u64, u64) {
        let snap = self.query_total.snapshot();
        (snap.quantile(0.5), snap.quantile(0.99))
    }

    /// Render the full Prometheus text exposition document.
    pub fn render_prometheus(&self) -> String {
        let mut doc = PromText::new();
        doc.gauge("cc_up", "The service is running.", 1.0);
        doc.gauge(
            "cc_draining",
            "1 once graceful shutdown began.",
            if self.draining.load(Ordering::Relaxed) { 1.0 } else { 0.0 },
        );
        doc.gauge(
            "cc_objects",
            "Live objects served.",
            self.objects.load(Ordering::Relaxed) as f64,
        );
        doc.gauge("cc_dim", "Dataset dimensionality.", self.dim.load(Ordering::Relaxed) as f64);
        doc.gauge_labeled(
            "cc_kernel_info",
            "SIMD kernel both hot loops dispatch through (value is always 1).",
            "kernel",
            &[(c2lsh::kernels::dispatch().kernel().name().to_string(), 1.0)],
        );
        doc.gauge(
            "cc_shards",
            "Shards behind the engine.",
            self.shards.load(Ordering::Relaxed) as f64,
        );
        doc.counter(
            "cc_queries_total",
            "Queries answered with a top-k response.",
            self.queries.get(),
        );
        doc.counter("cc_batches_total", "Engine flushes performed.", self.batches.get());
        doc.counter("cc_errors_total", "Requests answered with an error frame.", self.errors.get());
        doc.counter("cc_overloaded_total", "Queries refused at admission.", self.overloaded.get());
        doc.counter(
            "cc_deadline_expired_total",
            "Queries whose deadline expired while queued.",
            self.deadline_expired.get(),
        );
        doc.counter("cc_inserts_total", "Inserts acknowledged.", self.inserts.get());
        doc.counter("cc_deletes_total", "Deletes acknowledged (found or not).", self.deletes.get());
        doc.counter(
            "cc_filtered_candidates_total",
            "Candidates rejected by filter predicates before verification.",
            self.filtered.get(),
        );
        doc.counter("cc_traces_total", "Queries with a captured span tree.", self.traces.get());
        doc.counter(
            "cc_slow_queries_total",
            "Queries retained in the slow log.",
            self.slow_queries.get(),
        );
        doc.counter(
            "cc_router_fanout_total",
            "Scatter legs issued by the router (one per node per query).",
            self.router_fanout.get(),
        );
        doc.counter(
            "cc_router_failover_total",
            "Queries that fell over to another replica after a node failure.",
            self.router_failover.get(),
        );
        doc.counter(
            "cc_router_node_errors_total",
            "Individual node legs that errored (connect, deadline, stale, error frame).",
            self.router_node_errors.get(),
        );
        doc.summary_seconds(
            "cc_queue_wait_seconds",
            "Time from admission to engine dispatch.",
            &self.queue_wait.snapshot(),
        );
        doc.summary_seconds(
            "cc_query_seconds",
            "End-to-end query latency (queue wait + execution).",
            &self.query_total.snapshot(),
        );
        doc.summary_seconds(
            "cc_stage_hash_seconds",
            "Per-query time hashing into table keys.",
            &self.stage_hash.snapshot(),
        );
        doc.summary_seconds(
            "cc_stage_count_seconds",
            "Per-query time expanding windows and counting collisions.",
            &self.stage_count.snapshot(),
        );
        doc.summary_seconds(
            "cc_stage_verify_seconds",
            "Per-query time verifying candidate distances.",
            &self.stage_verify.snapshot(),
        );
        doc.summary_seconds(
            "cc_stage_rank_seconds",
            "Per-query time ranking candidates.",
            &self.stage_rank.snapshot(),
        );
        doc.summary_seconds(
            "cc_wal_apply_seconds",
            "Per-flush time applying mutations durably (WAL append + fsync).",
            &self.wal_apply.snapshot(),
        );
        doc.summary_seconds(
            "cc_flush_seconds",
            "Wall time of one whole flush (mutations + query batch).",
            &self.flush_total.snapshot(),
        );
        doc.summary_units(
            "cc_batch_size",
            "Queries coalesced per engine flush.",
            &self.batch_size.snapshot(),
        );
        // Buffer-pool families, present only when the paged disk tier
        // is behind the server.
        if let Some(source) = self.bufpool.lock().unwrap().as_ref() {
            let s = source();
            doc.counter(
                "cc_bufpool_requests_total",
                "Buffer-pool page lookups (hits + misses).",
                s.requests,
            );
            doc.counter(
                "cc_bufpool_hits_total",
                "Buffer-pool lookups served from a resident frame.",
                s.hits,
            );
            doc.counter(
                "cc_bufpool_misses_total",
                "Buffer-pool lookups that read the page from disk.",
                s.misses,
            );
            doc.counter(
                "cc_bufpool_evictions_total",
                "Frames recycled by the clock sweep.",
                s.evictions,
            );
            doc.gauge(
                "cc_bufpool_capacity_pages",
                "Buffer-pool capacity in pages.",
                s.capacity_pages as f64,
            );
            doc.gauge(
                "cc_bufpool_resident_pages",
                "Pages currently resident in the buffer pool.",
                s.resident_pages as f64,
            );
            doc.gauge(
                "cc_bufpool_hit_ratio",
                "Buffer-pool hit ratio since start (hits / requests).",
                s.hit_ratio(),
            );
        }
        // Per-replica lag, labeled `replica="<name>"`. Present once the
        // serving layer installed the board (i.e. this node is a
        // primary) and at least one subscriber has pulled.
        if let Some(source) = self.replicas.lock().unwrap().as_ref() {
            let rows = source();
            if !rows.is_empty() {
                doc.gauge_labeled(
                    "cc_replica_lag_seq",
                    "Sequences the replica still trails the primary by (0 = caught up).",
                    "replica",
                    &rows.iter().map(|(name, lag)| (name.clone(), *lag as f64)).collect::<Vec<_>>(),
                );
            }
        }
        // Per-collection series, labeled `collection="<name>"`. Only
        // present once the serving layer installed its registry and at
        // least one collection exists.
        if let Some(source) = self.collections.lock().unwrap().as_ref() {
            let rows = source();
            let pick = |f: &dyn Fn(&CollectionMetricsRow) -> u64| -> Vec<(String, u64)> {
                rows.iter().map(|r| (r.name.clone(), f(r))).collect()
            };
            doc.gauge_labeled(
                "cc_collection_objects",
                "Live objects per collection.",
                "collection",
                &rows.iter().map(|r| (r.name.clone(), r.objects as f64)).collect::<Vec<_>>(),
            );
            doc.counter_labeled(
                "cc_collection_queries_total",
                "Queries answered per collection.",
                "collection",
                &pick(&|r| r.queries),
            );
            doc.counter_labeled(
                "cc_collection_inserts_total",
                "Inserts acknowledged per collection.",
                "collection",
                &pick(&|r| r.inserts),
            );
            doc.counter_labeled(
                "cc_collection_deletes_total",
                "Deletes acknowledged per collection.",
                "collection",
                &pick(&|r| r.deletes),
            );
            doc.counter_labeled(
                "cc_collection_filtered_candidates_total",
                "Filter-rejected candidates per collection.",
                "collection",
                &pick(&|r| r.filtered),
            );
        }
        doc.finish()
    }
}

impl MetricsSource for ServerObs {
    fn render_metrics(&self) -> String {
        self.render_prometheus()
    }

    fn render_slowlog(&self) -> String {
        self.slowlog.render()
    }

    fn healthy(&self) -> bool {
        !self.draining.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2lsh::StageNanos;

    #[test]
    fn disabled_registry_records_nothing_per_query() {
        let obs = ServerObs::disabled();
        obs.record_query(1_000, 2_000, &StageNanos::default());
        obs.record_flush(5_000, 4, Some(100));
        assert!(!obs.maybe_log_slow(1, u64::MAX, 10, &[]));
        let text = obs.render_prometheus();
        assert!(text.contains("cc_query_seconds_count 0"), "{text}");
        assert!(text.contains("cc_flush_seconds_count 0"), "{text}");
    }

    #[test]
    fn enabled_registry_feeds_histograms_and_slowlog() {
        let obs =
            ServerObs::new(ObsConfig { enabled: true, slow_query_ms: 1, ..ObsConfig::default() });
        let stage = StageNanos { hash: 100, count: 4_000, verify: 900, rank: 50 };
        obs.record_query(10_000, 5_000_000, &stage);
        obs.record_flush(6_000_000, 1, None);
        assert!(obs.maybe_log_slow(3, 5_000_000, 7, &[]));
        assert_eq!(obs.slow_queries.get(), 1);
        let text = obs.render_prometheus();
        assert!(text.contains("cc_query_seconds_count 1"), "{text}");
        assert!(text.contains("cc_stage_count_seconds_count 1"), "{text}");
        assert!(text.contains("cc_slow_queries_total 1"), "{text}");
        let kernel = c2lsh::kernels::dispatch().kernel().name();
        assert!(text.contains(&format!("cc_kernel_info{{kernel=\"{kernel}\"}} 1")), "{text}");
        assert!(obs.render_slowlog().contains("trace_id=3"), "{}", obs.render_slowlog());
    }

    #[test]
    fn trace_ids_are_nonzero_and_unique() {
        let obs = ServerObs::disabled();
        let a = obs.alloc_trace_id();
        let b = obs.alloc_trace_id();
        assert!(a > 0 && b > a);
    }

    #[test]
    fn collection_series_are_labeled_per_collection() {
        let obs = ServerObs::disabled();
        obs.set_collections_source(Box::new(|| {
            vec![
                CollectionMetricsRow {
                    name: "alpha".into(),
                    objects: 10,
                    queries: 3,
                    inserts: 10,
                    deletes: 0,
                    filtered: 7,
                },
                CollectionMetricsRow {
                    name: "beta".into(),
                    objects: 2,
                    queries: 0,
                    inserts: 2,
                    deletes: 1,
                    filtered: 0,
                },
            ]
        }));
        let text = obs.render_prometheus();
        assert!(text.contains("cc_collection_objects{collection=\"alpha\"} 10"), "{text}");
        assert!(text.contains("cc_collection_queries_total{collection=\"alpha\"} 3"), "{text}");
        assert!(text.contains("cc_collection_queries_total{collection=\"beta\"} 0"), "{text}");
        assert!(
            text.contains("cc_collection_filtered_candidates_total{collection=\"alpha\"} 7"),
            "{text}"
        );
        assert_eq!(text.matches("# TYPE cc_collection_queries_total counter").count(), 1);
    }

    #[test]
    fn bufpool_series_appear_once_installed() {
        let obs = ServerObs::disabled();
        let before = obs.render_prometheus();
        assert!(!before.contains("cc_bufpool_"), "{before}");
        obs.set_bufpool_source(Box::new(|| BufpoolSnapshot {
            requests: 100,
            hits: 90,
            misses: 10,
            evictions: 4,
            capacity_pages: 64,
            resident_pages: 60,
        }));
        let text = obs.render_prometheus();
        assert!(text.contains("cc_bufpool_requests_total 100"), "{text}");
        assert!(text.contains("cc_bufpool_hits_total 90"), "{text}");
        assert!(text.contains("cc_bufpool_misses_total 10"), "{text}");
        assert!(text.contains("cc_bufpool_evictions_total 4"), "{text}");
        assert!(text.contains("cc_bufpool_capacity_pages 64"), "{text}");
        assert!(text.contains("cc_bufpool_resident_pages 60"), "{text}");
        assert!(text.contains("cc_bufpool_hit_ratio 0.9"), "{text}");
    }

    #[test]
    fn exposition_has_help_and_type_for_every_series() {
        let obs = ServerObs::new(ObsConfig::all_on());
        obs.set_index_info(1000, 16, 4);
        obs.set_bufpool_source(Box::new(|| BufpoolSnapshot {
            requests: 1,
            ..BufpoolSnapshot::default()
        }));
        let text = obs.render_prometheus();
        // Every non-comment series name must have HELP and TYPE.
        for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let name = line.split(['{', ' ']).next().unwrap();
            let family =
                name.strip_suffix("_sum").or_else(|| name.strip_suffix("_count")).unwrap_or(name);
            assert!(text.contains(&format!("# HELP {family} ")), "no HELP for {name}");
            assert!(text.contains(&format!("# TYPE {family} ")), "no TYPE for {name}");
        }
        assert!(text.contains("cc_objects 1000"), "{text}");
    }
}

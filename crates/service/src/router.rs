//! The scatter-gather router: one process speaking the ordinary wire
//! protocol in front of a fleet of cc-service nodes.
//!
//! ```text
//!                        ┌──────────┐ group 0  ┌───────────┐
//!  client ── QueryV2 ──▶ │  router  │ ───────▶ │ replica A │ (or B, or primary)
//!                        │          │ group 1  ├───────────┤
//!                        │ (merge   │ ───────▶ │ replica C │ …
//!                        │  top-k)  │          └───────────┘
//!                        └────┬─────┘
//!            writes, stats ───┴──────────────▶ primary
//! ```
//!
//! **Reads** scatter one sub-query per [`RouterConfig::groups`] entry —
//! each group holds one shard of the data, served by any of its
//! replicas — and the per-group answers are merged by distance
//! (`f64::total_cmp`, ties by id) and truncated to `k`. Within a
//! group the router rotates across replicas for load balance and
//! **fails over** on anything transient: connect failure, a leg
//! exceeding [`RouterConfig::node_deadline`], an
//! [`ErrorKind::Stale`] refusal (the replica lags the query's
//! `min_seq` bound), or admission-control pushback. When
//! [`RouterConfig::primary_reads`] is set (the default, correct
//! whenever the primary holds all the data, i.e. replication rather
//! than sharding topologies) the primary is appended to every group as
//! the last-resort leg — it is always fresh, so a freshness-bounded
//! read succeeds even when every follower lags. Deterministic
//! rejections (bad dimensionality, `k` out of range) are returned to
//! the client unchanged — retrying them elsewhere cannot help.
//!
//! **Writes**, collection operations and stats forward verbatim to
//! [`RouterConfig::primary`] over a fresh connection per request, so a
//! primary restart never wedges the router. `Ping` and `Metrics` are
//! answered locally (the router exports its own `cc_router_*`
//! counters); `Shutdown` stops the router itself, never the fleet.

use crate::obs::ServerObs;
use crate::protocol::{self, ProtoError, QueryCost, Request, Response};
use c2lsh::{Error, ErrorKind};
use cc_vector::gt::Neighbor;
use std::io;
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Topology and tunables of one router process.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The write path: every mutation, collection op and stats request
    /// forwards here (`HOST:PORT`).
    pub primary: String,
    /// The read path: one entry per shard group, each listing the
    /// replicas that can answer for that group. A single group whose
    /// replicas are followers of [`RouterConfig::primary`] is the
    /// replication topology; multiple groups partition the data.
    pub groups: Vec<Vec<String>>,
    /// Per-leg budget: connect + request + response on one node. A leg
    /// exceeding it is abandoned and the query fails over to the next
    /// replica in the group.
    pub node_deadline: Duration,
    /// Append the primary as the last-resort read leg of every group.
    /// Correct when the primary holds all the data (replication
    /// topologies); turn off when groups shard the data and the
    /// primary holds none of it.
    pub primary_reads: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            primary: "127.0.0.1:7878".into(),
            groups: Vec::new(),
            node_deadline: Duration::from_millis(500),
            primary_reads: true,
        }
    }
}

/// Final counter snapshot returned by [`route`] after the drain.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Queries answered (merged scatter-gathers).
    pub queries: u64,
    /// Scatter legs issued (one per node actually contacted).
    pub fanout: u64,
    /// Queries that needed at least one failover to answer.
    pub failovers: u64,
    /// Individual legs that errored (connect, deadline, stale,
    /// overloaded, or an error frame).
    pub node_errors: u64,
    /// Requests forwarded to the primary (writes, collections, stats).
    pub forwards: u64,
    /// Requests answered with an error frame.
    pub errors: u64,
}

struct RouterShared {
    config: RouterConfig,
    stopping: AtomicBool,
    stats: Mutex<RouterStats>,
    conns: Mutex<Vec<(u64, TcpStream)>>,
    local_addr: SocketAddr,
    /// Round-robin cursor so consecutive queries start at different
    /// replicas within a group.
    rr: AtomicU64,
    obs: Arc<ServerObs>,
}

/// Run the router until a [`Request::Shutdown`] arrives, with a
/// private metric registry. See [`route_with_obs`] to share one with a
/// scrape listener.
pub fn route(listener: TcpListener, config: &RouterConfig) -> io::Result<RouterStats> {
    route_with_obs(listener, config, Arc::new(ServerObs::disabled()))
}

/// Like [`route`], but exporting the `cc_router_*` counters through a
/// caller-owned [`ServerObs`] (so `--metrics-addr` can scrape them).
pub fn route_with_obs(
    listener: TcpListener,
    config: &RouterConfig,
    obs: Arc<ServerObs>,
) -> io::Result<RouterStats> {
    if config.groups.is_empty() || config.groups.iter().any(|g| g.is_empty()) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "router needs at least one group with at least one replica",
        ));
    }
    let shared = RouterShared {
        config: config.clone(),
        stopping: AtomicBool::new(false),
        stats: Mutex::new(RouterStats::default()),
        conns: Mutex::new(Vec::new()),
        local_addr: listener.local_addr()?,
        rr: AtomicU64::new(0),
        obs,
    };
    let shared = &shared;
    let stats = crossbeam::scope(move |s| {
        let mut next_id = 0u64;
        for stream in listener.incoming() {
            if shared.stopping.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let id = next_id;
            next_id += 1;
            if let Ok(clone) = stream.try_clone() {
                shared.conns.lock().unwrap().push((id, clone));
            }
            s.spawn(move |_| {
                let mut stream = stream;
                let _ = stream.set_nodelay(true);
                let _ = serve_connection(shared, &mut stream);
                shared.conns.lock().unwrap().retain(|(cid, _)| *cid != id);
            });
        }
        drop(listener);
        // Sever every client so the scope can join; the router holds no
        // durable state, there is nothing to drain.
        for (_, conn) in shared.conns.lock().unwrap().iter() {
            let _ = conn.shutdown(NetShutdown::Both);
        }
        shared.stats.lock().unwrap().clone()
    })
    .expect("router worker panicked");
    Ok(stats)
}

fn serve_connection(shared: &RouterShared, stream: &mut TcpStream) -> Result<(), ProtoError> {
    loop {
        let req = match protocol::read_request(stream) {
            Ok(None) => return Ok(()),
            Ok(Some(req)) => req,
            Err(ProtoError::Malformed(msg)) => {
                shared.stats.lock().unwrap().errors += 1;
                let resp = Response::Error(Error::new(
                    ErrorKind::Protocol,
                    format!("malformed request: {msg}"),
                ));
                let _ = protocol::write_response(stream, &resp);
                return Err(ProtoError::Malformed(msg));
            }
            Err(e) => return Err(e),
        };
        let resp = match req {
            Request::Ping => Response::Pong,
            Request::Metrics => Response::MetricsText(shared.obs.render_prometheus()),
            Request::Shutdown => {
                protocol::write_response(stream, &Response::ShutdownAck)?;
                shared.stopping.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(shared.local_addr);
                return Ok(());
            }
            Request::Query { k, deadline_ms, vector } => {
                let resp = scatter_query(
                    shared,
                    Request::QueryV2 {
                        k,
                        deadline_ms,
                        want_stats: false,
                        want_trace: false,
                        vector,
                        filter: None,
                        collection: None,
                        min_seq: 0,
                    },
                );
                // The client spoke v1; answer in kind.
                match resp {
                    Response::TopKV2 { neighbors, .. } => Response::TopK(neighbors),
                    other => other,
                }
            }
            // Collection queries are not replicated across the read
            // fleet — collections live on the primary.
            req @ Request::QueryV2 { collection: Some(_), .. } => forward_to_primary(shared, req),
            req @ Request::QueryV2 { .. } => scatter_query(shared, req),
            req @ (Request::Stats
            | Request::Insert { .. }
            | Request::InsertV2 { .. }
            | Request::Delete { .. }
            | Request::CreateCollection { .. }
            | Request::DropCollection { .. }
            | Request::ListCollections) => forward_to_primary(shared, req),
            Request::ReplSubscribe { .. } | Request::ReplAck { .. } => Response::Error(Error::new(
                ErrorKind::Unsupported,
                "the router does not serve the replication stream; subscribe to the primary",
            )),
        };
        if matches!(resp, Response::Error(_)) {
            shared.stats.lock().unwrap().errors += 1;
        }
        protocol::write_response(stream, &resp)?;
    }
}

/// Scatter one default-engine query across every group, failing over
/// within each group, and merge the per-group answers to one top-k.
fn scatter_query(shared: &RouterShared, req: Request) -> Response {
    let Request::QueryV2 { k, .. } = &req else { unreachable!("caller matched QueryV2") };
    let k = *k as usize;
    shared.stats.lock().unwrap().queries += 1;
    let mut merged: Vec<Neighbor> = Vec::new();
    let mut carried: Option<(u64, Option<QueryCost>)> = None;
    let groups = shared.config.groups.len();
    for group in &shared.config.groups {
        match query_group(shared, group, &req) {
            Ok(Response::TopKV2 { trace_id, neighbors, cost }) => {
                merged.extend(neighbors);
                // Cost blocks describe one engine's work; they only
                // survive the merge when there is exactly one source.
                carried = (groups == 1).then_some((trace_id, cost));
            }
            Ok(other) => return other, // deterministic rejection, verbatim
            Err(e) => return Response::Error(e),
        }
    }
    merged.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    merged.truncate(k);
    let (trace_id, cost) = carried.unwrap_or((0, None));
    Response::TopKV2 { trace_id, neighbors: merged, cost }
}

/// Ask one group: rotate across its replicas (primary appended last
/// when [`RouterConfig::primary_reads`]), failing over on transient
/// outcomes. `Ok` carries the first authoritative answer — including
/// deterministic rejections; `Err` means the whole group is down.
fn query_group(shared: &RouterShared, group: &[String], req: &Request) -> Result<Response, Error> {
    let start = (shared.rr.fetch_add(1, Ordering::Relaxed) as usize) % group.len();
    let mut legs: Vec<&str> =
        (0..group.len()).map(|i| group[(start + i) % group.len()].as_str()).collect();
    if shared.config.primary_reads && !group.contains(&shared.config.primary) {
        legs.push(shared.config.primary.as_str());
    }
    let mut attempts = 0u64;
    let mut last_failure = String::new();
    for node in legs {
        attempts += 1;
        shared.stats.lock().unwrap().fanout += 1;
        shared.obs.router_fanout.inc();
        match ask_node(node, req, shared.config.node_deadline) {
            Ok(resp @ Response::TopKV2 { .. }) => {
                if attempts > 1 {
                    shared.stats.lock().unwrap().failovers += 1;
                    shared.obs.router_failover.inc();
                }
                return Ok(resp);
            }
            // Transient: the next replica may well succeed.
            Ok(Response::Overloaded) => last_failure = format!("{node}: overloaded"),
            Ok(Response::DeadlineExceeded) => last_failure = format!("{node}: deadline"),
            Ok(Response::Error(e)) if e.kind() == ErrorKind::Stale => {
                last_failure = format!("{node}: {e}")
            }
            Ok(Response::Error(e)) if e.kind() == ErrorKind::Draining => {
                last_failure = format!("{node}: {e}")
            }
            // Deterministic: bad dimensionality, k out of range, … —
            // every replica would refuse identically.
            Ok(resp @ Response::Error(_)) => return Ok(resp),
            Ok(other) => last_failure = format!("{node}: unexpected response {other:?}"),
            Err(e) => last_failure = format!("{node}: {e}"),
        }
        shared.stats.lock().unwrap().node_errors += 1;
        shared.obs.router_node_errors.inc();
        eprintln!("router: leg failed ({last_failure}); failing over");
    }
    Err(Error::new(
        ErrorKind::Io,
        format!("no replica in the group answered ({attempts} tried; last: {last_failure})"),
    ))
}

/// One leg: fresh connection, per-leg timeouts, one request/response.
fn ask_node(node: &str, req: &Request, deadline: Duration) -> io::Result<Response> {
    let addr = node
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, deadline)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(deadline))?;
    stream.set_write_timeout(Some(deadline))?;
    protocol::write_request(&mut stream, req)?;
    match protocol::read_response(&mut stream) {
        Ok(Some(resp)) => Ok(resp),
        Ok(None) => Err(io::Error::new(io::ErrorKind::UnexpectedEof, "node closed the connection")),
        Err(ProtoError::Io(e)) => Err(e),
        Err(ProtoError::Malformed(msg)) => {
            Err(io::Error::new(io::ErrorKind::InvalidData, format!("malformed frame: {msg}")))
        }
    }
}

/// Forward one request verbatim to the primary; failures come back as
/// typed error frames rather than dropped connections, so the client
/// can tell "primary down" from "router down". The forward deadline is
/// deliberately generous — group-commit fsyncs and stats rendering are
/// slower than a read leg.
fn forward_to_primary(shared: &RouterShared, req: Request) -> Response {
    shared.stats.lock().unwrap().forwards += 1;
    let deadline = shared.config.node_deadline.max(Duration::from_secs(2)) * 5;
    match ask_node(&shared.config.primary, &req, deadline) {
        Ok(resp) => resp,
        Err(e) => Response::Error(Error::new(
            ErrorKind::Io,
            format!("primary {} unreachable: {e}", shared.config.primary),
        )),
    }
}

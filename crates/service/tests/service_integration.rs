//! End-to-end service tests against a live 4-shard server on loopback:
//! correctness under concurrency (32 client threads, answers compared
//! bit-exactly with a single unsharded index), request coalescing
//! evidence, admission control, deadline expiry, protocol-violation
//! handling, and graceful drain with a leaked-thread watchdog.

use c2lsh::config::Beta;
use c2lsh::{C2lshConfig, C2lshIndex, ShardedData, ShardedEngine};
use cc_service::json::find_u64;
use cc_service::{Client, Response, ServiceConfig};
use cc_vector::dataset::Dataset;
use cc_vector::gen::{generate, Distribution};
use cc_vector::gt::Neighbor;
use std::net::TcpListener;
use std::sync::{mpsc, Barrier};
use std::time::Duration;

fn clustered(n: usize, d: usize, seed: u64) -> Dataset {
    generate(Distribution::GaussianMixture { clusters: 8, spread: 0.02, scale: 10.0 }, n, d, seed)
}

/// T2 disabled (budget ≥ n): the regime where sharded answers are
/// bit-identical to the unsharded index, so the test can demand exact
/// equality of served results (ids *and* f64 distances).
fn cfg_exact(n: usize) -> C2lshConfig {
    C2lshConfig::builder().bucket_width(1.0).seed(13).beta(Beta::Count(n as u64)).build()
}

/// Abort the whole test process if `f` does not finish in time — a
/// hung drain or leaked handler thread must fail CI, not stall it.
fn with_watchdog(label: &'static str, limit: Duration, f: impl FnOnce()) {
    let (done_tx, done_rx) = mpsc::channel::<()>();
    std::thread::spawn(move || {
        if done_rx.recv_timeout(limit).is_err() {
            eprintln!("[{label}] did not finish within {limit:?} — leaked threads or hung drain");
            std::process::abort();
        }
    });
    f();
    let _ = done_tx.send(());
}

/// 32 concurrent connections against a 4-shard server: every served
/// answer must equal the single unsharded index's answer exactly;
/// coalescing must show up in the stats; shutdown must drain cleanly
/// (the server thread joins, proving no worker survived).
#[test]
fn concurrent_clients_match_single_index_ground_truth() {
    const N: usize = 2000;
    const D: usize = 16;
    const K: u32 = 5;
    const CLIENTS: usize = 32;
    const ROUNDS: usize = 8;

    let data = clustered(N, D, 3);
    let queries = clustered(64, D, 4);
    let cfg = cfg_exact(N);

    // Ground truth from the unsharded index over the same data.
    let single = C2lshIndex::build(&data, &cfg);
    let expected: Vec<Vec<Neighbor>> =
        (0..queries.len()).map(|qi| single.query(queries.get(qi), K as usize).0).collect();

    let sharded = ShardedData::partition(&data, 4);
    let engine = ShardedEngine::build(&sharded, &cfg);
    let service = ServiceConfig {
        max_batch: 16,
        max_delay: Duration::from_millis(50),
        queue_capacity: 1024,
        k_max: 64,
        drain_grace: Duration::from_secs(5),
    };

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    with_watchdog("concurrent_clients", Duration::from_secs(120), || {
        let barrier = Barrier::new(CLIENTS);
        let (engine, service, queries, expected, barrier) =
            (&engine, &service, &queries, &expected, &barrier);
        crossbeam::scope(move |s| {
            let server = s.spawn(move |_| cc_service::serve(engine, listener, service).unwrap());

            let mut control = Client::connect(addr).unwrap();
            control.ping().unwrap();

            let clients: Vec<_> = (0..CLIENTS)
                .map(|t| {
                    s.spawn(move |_| {
                        let mut client = Client::connect(addr).unwrap();
                        for i in 0..ROUNDS {
                            // All clients fire together each round so the
                            // batcher has something to coalesce.
                            barrier.wait();
                            let qi = (t * ROUNDS + i) % queries.len();
                            let got = client.top_k(queries.get(qi), K).unwrap();
                            assert_eq!(got, expected[qi], "client {t} round {i} query {qi}");
                        }
                    })
                })
                .collect();
            for handle in clients {
                handle.join().unwrap();
            }

            let json = control.stats_json().unwrap();
            let answered = (CLIENTS * ROUNDS) as u64;
            assert_eq!(find_u64(&json, "queries"), Some(answered), "{json}");
            assert_eq!(find_u64(&json, "errors"), Some(0), "{json}");
            assert_eq!(find_u64(&json, "shards"), Some(4), "{json}");
            let max_batch = find_u64(&json, "max_batch").unwrap();
            assert!(max_batch >= 2, "no coalescing observed (max_batch = {max_batch}): {json}");
            let batches = find_u64(&json, "batches").unwrap();
            assert!(batches < answered, "every query got its own batch: {json}");

            // Graceful drain: serve() returns only after every worker
            // thread joined, so a successful join IS the leak check.
            control.shutdown().unwrap();
            let stats = server.join().unwrap();
            assert_eq!(stats.queries, answered);
            assert_eq!(stats.max_batch as u64, max_batch);
        })
        .unwrap();
    });
}

/// Admission control and deadlines, pinned deterministically by a long
/// linger: a queued request occupies the (capacity-1) queue for the
/// full linger window, so a second concurrent query must be refused
/// with `Overloaded`, and the first one's 50 ms deadline expires
/// before the 400 ms flush → `DeadlineExceeded`.
#[test]
fn admission_control_and_deadlines() {
    const N: usize = 300;
    const D: usize = 8;

    let data = clustered(N, D, 5);
    let cfg = cfg_exact(N);
    let sharded = ShardedData::partition(&data, 2);
    let engine = ShardedEngine::build(&sharded, &cfg);
    let service = ServiceConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(400),
        queue_capacity: 1,
        k_max: 16,
        drain_grace: Duration::from_secs(2),
    };

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    with_watchdog("admission_and_deadlines", Duration::from_secs(60), || {
        let (engine, service, data) = (&engine, &service, &data);
        crossbeam::scope(move |s| {
            let server = s.spawn(move |_| cc_service::serve(engine, listener, service).unwrap());

            // A: admitted, then sits out the 400 ms linger with a 50 ms
            // deadline → expires while queued.
            let slow = s.spawn(move |_| {
                let mut client = Client::connect(addr).unwrap();
                client.query(data.get(0), 3, 50).unwrap()
            });

            // B: arrives mid-linger while A occupies the whole queue.
            std::thread::sleep(Duration::from_millis(150));
            let mut client = Client::connect(addr).unwrap();
            let refused = client.query(data.get(1), 3, 0).unwrap();
            assert_eq!(refused, Response::Overloaded);

            let expired = slow.join().unwrap();
            assert_eq!(expired, Response::DeadlineExceeded);

            // The queue is free again: a plain query succeeds end-to-end.
            let neighbors = client.top_k(data.get(2), 3).unwrap();
            assert_eq!(neighbors[0].id, 2, "the query vector is row 2 of the data");
            assert_eq!(neighbors[0].dist, 0.0);

            // Bad requests are answered, not dropped.
            let wrong_dim = client.query(&[0.0f32; D + 1], 3, 0).unwrap();
            assert!(matches!(wrong_dim, Response::Error(_)), "{wrong_dim:?}");
            let bad_k = client.query(data.get(0), 0, 0).unwrap();
            assert!(matches!(bad_k, Response::Error(_)), "{bad_k:?}");
            // Non-finite coordinates must be refused at admission — the
            // engine asserts finiteness, and a NaN reaching the batcher
            // thread would kill it and wedge the whole service.
            let nan = client.query(&[f32::NAN; D], 3, 0).unwrap();
            assert!(matches!(nan, Response::Error(_)), "{nan:?}");
            let survived = client.top_k(data.get(2), 3).unwrap();
            assert_eq!(survived[0].id, 2);

            let json = client.stats_json().unwrap();
            assert_eq!(find_u64(&json, "overloaded"), Some(1), "{json}");
            assert_eq!(find_u64(&json, "deadline_expired"), Some(1), "{json}");
            assert_eq!(find_u64(&json, "errors"), Some(3), "{json}");
            assert_eq!(find_u64(&json, "queries"), Some(2), "{json}");

            client.shutdown().unwrap();
            let stats = server.join().unwrap();
            assert_eq!(stats.overloaded, 1);
            assert_eq!(stats.deadline_expired, 1);
        })
        .unwrap();
    });
}

/// Protocol violations get an explicit `Error` frame and a closed
/// connection — never a hang, never a crash of the server.
#[test]
fn malformed_frames_are_rejected_and_connection_closed() {
    use std::io::{Read, Write};

    const N: usize = 200;
    let data = clustered(N, 8, 6);
    let cfg = cfg_exact(N);
    let sharded = ShardedData::partition(&data, 2);
    let engine = ShardedEngine::build(&sharded, &cfg);
    let service = ServiceConfig::default();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    with_watchdog("malformed_frames", Duration::from_secs(60), || {
        let (engine, service) = (&engine, &service);
        crossbeam::scope(move |s| {
            let server = s.spawn(move |_| cc_service::serve(engine, listener, service).unwrap());

            // Raw socket: a frame with an unknown opcode.
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            raw.write_all(&[1, 0, 0, 0, 0x7F]).unwrap();
            let mut reply = Vec::new();
            raw.read_to_end(&mut reply).unwrap(); // server replies then closes
            let resp = cc_service::protocol::read_response(&mut &reply[..]).unwrap().unwrap();
            assert!(matches!(resp, Response::Error(_)), "{resp:?}");

            // The server survived: a well-formed session still works.
            let mut client = Client::connect(addr).unwrap();
            client.ping().unwrap();
            let json = client.stats_json().unwrap();
            assert_eq!(find_u64(&json, "errors"), Some(1), "{json}");

            client.shutdown().unwrap();
            server.join().unwrap();
        })
        .unwrap();
    });
}

//! End-to-end service tests against a live 4-shard server on loopback:
//! correctness under concurrency (32 client threads, answers compared
//! bit-exactly with a single unsharded index), request coalescing
//! evidence, admission control, deadline expiry, protocol-violation
//! handling, and graceful drain with a leaked-thread watchdog.
//!
//! The second half drives the mutable engine over the same wire:
//! durable insert/delete acks with racing readers, mutation rejection
//! on a read-only engine, and — against the real `cc-service` binary —
//! SIGKILL mid-service followed by a restart that must recover every
//! acknowledged mutation from the WAL.

use c2lsh::config::Beta;
use c2lsh::{
    C2lshConfig, C2lshIndex, DynamicIndex, MutableIndex, MutationOp, PointMeta, Predicate,
    ShardedData, ShardedEngine,
};
use cc_service::json::find_u64;
use cc_service::{Client, CollectionsConfig, QueryRequest, Response, SearchOutcome, ServiceConfig};
use cc_vector::dataset::Dataset;
use cc_vector::gen::{generate, Distribution};
use cc_vector::gt::Neighbor;
use std::net::TcpListener;
use std::sync::{mpsc, Barrier};
use std::time::Duration;

#[path = "harness/mod.rs"]
mod harness;
use harness::{with_watchdog, ClusterHarness, NodeSpec};

fn clustered(n: usize, d: usize, seed: u64) -> Dataset {
    generate(Distribution::GaussianMixture { clusters: 8, spread: 0.02, scale: 10.0 }, n, d, seed)
}

/// The "neighbors-or-bust" query these tests make constantly.
fn top_k(client: &mut Client, vector: &[f32], k: u32) -> Vec<Neighbor> {
    client.search_result(&QueryRequest::new(vector.to_vec()).k(k)).unwrap().neighbors
}

/// T2 disabled (budget ≥ n): the regime where sharded answers are
/// bit-identical to the unsharded index, so the test can demand exact
/// equality of served results (ids *and* f64 distances).
fn cfg_exact(n: usize) -> C2lshConfig {
    C2lshConfig::builder().bucket_width(1.0).seed(13).beta(Beta::Count(n as u64)).build()
}

/// 32 concurrent connections against a 4-shard server: every served
/// answer must equal the single unsharded index's answer exactly;
/// coalescing must show up in the stats; shutdown must drain cleanly
/// (the server thread joins, proving no worker survived).
#[test]
fn concurrent_clients_match_single_index_ground_truth() {
    const N: usize = 2000;
    const D: usize = 16;
    const K: u32 = 5;
    const CLIENTS: usize = 32;
    const ROUNDS: usize = 8;

    let data = clustered(N, D, 3);
    let queries = clustered(64, D, 4);
    let cfg = cfg_exact(N);

    // Ground truth from the unsharded index over the same data.
    let single = C2lshIndex::build(&data, &cfg);
    let expected: Vec<Vec<Neighbor>> =
        (0..queries.len()).map(|qi| single.query(queries.get(qi), K as usize).0).collect();

    let sharded = ShardedData::partition(&data, 4);
    let engine = ShardedEngine::build(&sharded, &cfg);
    let service = ServiceConfig {
        max_batch: 16,
        max_delay: Duration::from_millis(50),
        queue_capacity: 1024,
        k_max: 64,
        ..ServiceConfig::default()
    };

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    with_watchdog("concurrent_clients", Duration::from_secs(120), || {
        let barrier = Barrier::new(CLIENTS);
        let (engine, service, queries, expected, barrier) =
            (&engine, &service, &queries, &expected, &barrier);
        crossbeam::scope(move |s| {
            let server = s.spawn(move |_| cc_service::serve(engine, listener, service).unwrap());

            let mut control = Client::connect(addr).unwrap();
            control.ping().unwrap();

            let clients: Vec<_> = (0..CLIENTS)
                .map(|t| {
                    s.spawn(move |_| {
                        let mut client = Client::connect(addr).unwrap();
                        for i in 0..ROUNDS {
                            // All clients fire together each round so the
                            // batcher has something to coalesce.
                            barrier.wait();
                            let qi = (t * ROUNDS + i) % queries.len();
                            let got = top_k(&mut client, queries.get(qi), K);
                            assert_eq!(got, expected[qi], "client {t} round {i} query {qi}");
                        }
                    })
                })
                .collect();
            for handle in clients {
                handle.join().unwrap();
            }

            let json = control.stats_json().unwrap();
            let answered = (CLIENTS * ROUNDS) as u64;
            assert_eq!(find_u64(&json, "queries"), Some(answered), "{json}");
            assert_eq!(find_u64(&json, "errors"), Some(0), "{json}");
            assert_eq!(find_u64(&json, "shards"), Some(4), "{json}");
            let max_batch = find_u64(&json, "max_batch").unwrap();
            assert!(max_batch >= 2, "no coalescing observed (max_batch = {max_batch}): {json}");
            let batches = find_u64(&json, "batches").unwrap();
            assert!(batches < answered, "every query got its own batch: {json}");

            // Graceful drain: serve() returns only after every worker
            // thread joined, so a successful join IS the leak check.
            control.shutdown().unwrap();
            let stats = server.join().unwrap();
            assert_eq!(stats.queries, answered);
            assert_eq!(stats.max_batch as u64, max_batch);
        })
        .unwrap();
    });
}

/// Admission control and deadlines, pinned deterministically by a long
/// linger: a queued request occupies the (capacity-1) queue for the
/// full linger window, so a second concurrent query must be refused
/// with `Overloaded`, and the first one's 50 ms deadline expires
/// before the 400 ms flush → `DeadlineExceeded`.
#[test]
fn admission_control_and_deadlines() {
    const N: usize = 300;
    const D: usize = 8;

    let data = clustered(N, D, 5);
    let cfg = cfg_exact(N);
    let sharded = ShardedData::partition(&data, 2);
    let engine = ShardedEngine::build(&sharded, &cfg);
    let service = ServiceConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(400),
        queue_capacity: 1,
        k_max: 16,
        drain_grace: Duration::from_secs(2),
        ..ServiceConfig::default()
    };

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    with_watchdog("admission_and_deadlines", Duration::from_secs(60), || {
        let (engine, service, data) = (&engine, &service, &data);
        crossbeam::scope(move |s| {
            let server = s.spawn(move |_| cc_service::serve(engine, listener, service).unwrap());

            // A: admitted, then sits out the 400 ms linger with a 50 ms
            // deadline → expires while queued.
            let slow = s.spawn(move |_| {
                let mut client = Client::connect(addr).unwrap();
                client
                    .search(&QueryRequest::new(data.get(0).to_vec()).k(3).deadline_ms(50))
                    .unwrap()
            });

            // B: arrives mid-linger while A occupies the whole queue.
            std::thread::sleep(Duration::from_millis(150));
            let mut client = Client::connect(addr).unwrap();
            let refused = client.search(&QueryRequest::new(data.get(1).to_vec()).k(3)).unwrap();
            assert_eq!(refused, SearchOutcome::Overloaded);
            assert!(refused.into_result().is_err(), "overload maps to Err for strict callers");

            let expired = slow.join().unwrap();
            assert_eq!(expired, SearchOutcome::DeadlineExceeded);

            // The queue is free again: a plain query succeeds end-to-end.
            let neighbors = top_k(&mut client, data.get(2), 3);
            assert_eq!(neighbors[0].id, 2, "the query vector is row 2 of the data");
            assert_eq!(neighbors[0].dist, 0.0);

            // The v1 frame must keep answering old clients verbatim.
            // The typed client dropped its v1 shim, so speak the old
            // frame at the wire level: encode a `Request::Query`, read
            // back the bare `Response::TopK`.
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            let v1 = cc_service::protocol::Request::Query {
                k: 3,
                deadline_ms: 0,
                vector: data.get(2).to_vec(),
            };
            cc_service::protocol::write_request(&mut raw, &v1).unwrap();
            match cc_service::protocol::read_response(&mut raw).unwrap().unwrap() {
                Response::TopK(nn) => assert_eq!(nn[0].id, 2),
                other => panic!("v1 query answered with {other:?}"),
            }
            drop(raw);

            // Bad requests are answered with an error frame, which the
            // client surfaces as `Err` — never dropped.
            let wrong_dim = client.search(&QueryRequest::new(vec![0.0f32; D + 1]).k(3));
            assert!(wrong_dim.is_err(), "{wrong_dim:?}");
            let bad_k = client.search(&QueryRequest::new(data.get(0).to_vec()).k(0));
            assert!(bad_k.is_err(), "{bad_k:?}");
            // Non-finite coordinates must be refused at admission — the
            // engine asserts finiteness, and a NaN reaching the batcher
            // thread would kill it and wedge the whole service.
            let nan = client.search(&QueryRequest::new(vec![f32::NAN; D]).k(3));
            assert!(nan.is_err(), "{nan:?}");
            let survived = top_k(&mut client, data.get(2), 3);
            assert_eq!(survived[0].id, 2);

            let json = client.stats_json().unwrap();
            assert_eq!(find_u64(&json, "overloaded"), Some(1), "{json}");
            assert_eq!(find_u64(&json, "deadline_expired"), Some(1), "{json}");
            assert_eq!(find_u64(&json, "errors"), Some(3), "{json}");
            assert_eq!(find_u64(&json, "queries"), Some(3), "{json}");
            // The typed snapshot view agrees with the raw extraction.
            let snap = client.stats().unwrap();
            assert_eq!(snap.schema, 2);
            assert_eq!(snap.overloaded, 1);
            assert_eq!(snap.deadline_expired, 1);
            assert_eq!(snap.errors, 3);
            assert_eq!(snap.queries, 3);

            client.shutdown().unwrap();
            let stats = server.join().unwrap();
            assert_eq!(stats.overloaded, 1);
            assert_eq!(stats.deadline_expired, 1);
        })
        .unwrap();
    });
}

/// Protocol violations get an explicit `Error` frame and a closed
/// connection — never a hang, never a crash of the server.
#[test]
fn malformed_frames_are_rejected_and_connection_closed() {
    use std::io::{Read, Write};

    const N: usize = 200;
    let data = clustered(N, 8, 6);
    let cfg = cfg_exact(N);
    let sharded = ShardedData::partition(&data, 2);
    let engine = ShardedEngine::build(&sharded, &cfg);
    let service = ServiceConfig::default();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    with_watchdog("malformed_frames", Duration::from_secs(60), || {
        let (engine, service) = (&engine, &service);
        crossbeam::scope(move |s| {
            let server = s.spawn(move |_| cc_service::serve(engine, listener, service).unwrap());

            // Raw socket: a frame with an unknown opcode.
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            raw.write_all(&[1, 0, 0, 0, 0x7F]).unwrap();
            let mut reply = Vec::new();
            raw.read_to_end(&mut reply).unwrap(); // server replies then closes
            let resp = cc_service::protocol::read_response(&mut &reply[..]).unwrap().unwrap();
            assert!(matches!(resp, Response::Error(_)), "{resp:?}");

            // The server survived: a well-formed session still works.
            let mut client = Client::connect(addr).unwrap();
            client.ping().unwrap();
            let json = client.stats_json().unwrap();
            assert_eq!(find_u64(&json, "errors"), Some(1), "{json}");

            client.shutdown().unwrap();
            server.join().unwrap();
        })
        .unwrap();
    });
}

/// A read-only (sharded) engine must refuse mutation frames at
/// admission with an `Error` response — and keep serving queries.
#[test]
fn sharded_engine_rejects_mutations() {
    const N: usize = 200;
    const D: usize = 8;
    let data = clustered(N, D, 9);
    let cfg = cfg_exact(N);
    let sharded = ShardedData::partition(&data, 2);
    let engine = ShardedEngine::build(&sharded, &cfg);
    let service = ServiceConfig::default();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    with_watchdog("sharded_rejects_mutations", Duration::from_secs(60), || {
        let (engine, service) = (&engine, &service);
        crossbeam::scope(move |s| {
            let server = s.spawn(move |_| cc_service::serve(engine, listener, service).unwrap());

            let mut client = Client::connect(addr).unwrap();
            assert!(client.insert(&[0.5f32; D]).is_err(), "insert must be refused");
            assert!(client.delete(3).is_err(), "delete must be refused");

            // Still alive and still read-correct.
            let nn = top_k(&mut client, data.get(4), 1);
            assert_eq!(nn[0].id, 4);
            let json = client.stats_json().unwrap();
            assert_eq!(find_u64(&json, "errors"), Some(2), "{json}");
            assert_eq!(find_u64(&json, "inserts"), Some(0), "{json}");

            client.shutdown().unwrap();
            server.join().unwrap();
        })
        .unwrap();
    });
}

/// The mutable engine over the wire: writers insert distinctive
/// vectors and delete seeded objects while readers hammer queries.
/// Every ack must prove read-your-writes on the next query,
/// the stats frame must expose the write path, and after a graceful
/// drain the WAL directory must reopen to exactly the acknowledged
/// state (durability without even needing a crash).
#[test]
fn mutable_server_applies_durable_mutations_under_racing_readers() {
    const SEED_N: usize = 300;
    const D: usize = 8;
    const WRITERS: usize = 4;
    const READERS: usize = 2;
    const READS: usize = 20;

    let dir = cc_storage::wal::scratch_dir("svc-mutable");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = cfg_exact(SEED_N);
    let data = clustered(SEED_N, D, 7);

    let engine = MutableIndex::open(&dir, D, SEED_N, &cfg).unwrap();
    let seed_ops: Vec<MutationOp> = data
        .iter()
        .map(|v| MutationOp::Insert { vector: v.to_vec(), meta: Default::default() })
        .collect();
    engine.apply_batch(&seed_ops).unwrap();
    assert_eq!(engine.last_seq(), SEED_N as u64);

    let service = ServiceConfig {
        max_batch: 16,
        max_delay: Duration::from_millis(5),
        queue_capacity: 256,
        k_max: 64,
        ..ServiceConfig::default()
    };
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let acked = std::sync::Mutex::new(Vec::<(u32, Vec<f32>)>::new());
    with_watchdog("mutable_server", Duration::from_secs(120), || {
        let (engine, service, data, acked) = (&engine, &service, &data, &acked);
        let (ack_tx, ack_rx) = mpsc::channel::<(u32, Vec<f32>)>();
        crossbeam::scope(move |s| {
            let server = s.spawn(move |_| cc_service::serve(engine, listener, service).unwrap());
            let mut control = Client::connect(addr).unwrap();
            control.ping().unwrap();

            let writers: Vec<_> = (0..WRITERS)
                .map(|t| {
                    let ack_tx = ack_tx.clone();
                    s.spawn(move |_| {
                        let mut client = Client::connect(addr).unwrap();
                        // A vector far outside the seeded clusters,
                        // unique per writer.
                        let novel: Vec<f32> = (0..D).map(|j| 2000.0 + (t * D + j) as f32).collect();
                        let (oid, seq) = client.insert(&novel).unwrap();
                        assert!(seq > SEED_N as u64, "acked seq must follow the seed history");
                        // Read-your-writes: the ack precedes this query,
                        // and the batcher applies mutations before the
                        // queries of any later flush.
                        let nn = top_k(&mut client, &novel, 1);
                        assert_eq!(nn[0].id, oid, "writer {t} cannot see its own insert");
                        assert_eq!(nn[0].dist, 0.0);
                        ack_tx.send((oid, novel)).unwrap();

                        // Delete a distinct seeded object and prove it gone:
                        // no exact duplicate exists, so top-1 distance to the
                        // deleted vector must become nonzero.
                        let victim = (t * 2) as u32;
                        let (found, _) = client.delete(victim).unwrap();
                        assert!(found, "seeded oid {victim} must exist");
                        let nn = top_k(&mut client, data.get(victim as usize), 1);
                        assert!(
                            nn[0].id != victim && nn[0].dist > 0.0,
                            "deleted object {victim} still served: {nn:?}"
                        );
                    })
                })
                .collect();
            let readers: Vec<_> = (0..READERS)
                .map(|r| {
                    s.spawn(move |_| {
                        let mut client = Client::connect(addr).unwrap();
                        for i in 0..READS {
                            let qi = (r * READS + i) % SEED_N;
                            // Concurrent with deletes, so only sanity is
                            // checkable: a well-formed, ordered answer.
                            let nn = top_k(&mut client, data.get(qi), 3);
                            assert!(!nn.is_empty());
                            assert!(nn.windows(2).all(|w| w[0].dist <= w[1].dist));
                        }
                    })
                })
                .collect();
            for h in writers.into_iter().chain(readers) {
                h.join().unwrap();
            }

            let json = control.stats_json().unwrap();
            assert_eq!(find_u64(&json, "inserts"), Some(WRITERS as u64), "{json}");
            assert_eq!(find_u64(&json, "deletes"), Some(WRITERS as u64), "{json}");
            assert_eq!(
                find_u64(&json, "wal_records"),
                Some((SEED_N + 2 * WRITERS) as u64),
                "{json}"
            );
            assert_eq!(find_u64(&json, "last_seq"), Some((SEED_N + 2 * WRITERS) as u64), "{json}");
            assert_eq!(find_u64(&json, "delete_misses"), Some(0), "{json}");
            let batches = find_u64(&json, "mutation_batches").unwrap();
            assert!(batches >= 1 && batches <= 2 * WRITERS as u64, "{json}");

            control.shutdown().unwrap();
            let stats = server.join().unwrap();
            assert_eq!(stats.inserts, WRITERS as u64);
            assert_eq!(stats.deletes, WRITERS as u64);
            drop(ack_tx);
            acked.lock().unwrap().extend(ack_rx);
        })
        .unwrap();
    });

    // Durability, the gentle way: a fresh process-equivalent reopen of
    // the directory must reconstruct exactly the acknowledged state.
    drop(engine);
    let reopened = MutableIndex::open(&dir, D, SEED_N, &cfg).unwrap();
    assert_eq!(reopened.last_seq(), (SEED_N + 2 * WRITERS) as u64);
    assert_eq!(reopened.len(), SEED_N, "each writer added one and removed one");
    let acked = acked.into_inner().unwrap();
    for (oid, novel) in &acked {
        let (nn, _) = reopened.query(novel, 1);
        assert_eq!(nn[0].id, *oid, "acked insert lost across reopen");
        assert_eq!(nn[0].dist, 0.0);
    }
    for t in 0..WRITERS {
        let victim = (t * 2) as u32;
        let (nn, _) = reopened.query(data.get(victim as usize), 1);
        assert!(nn[0].id != victim, "acked delete resurrected across reopen");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The checkpoint policy over the wire: with a tiny
/// `checkpoint_wal_bytes` the batcher must fold acknowledged mutations
/// into checkpoints as it goes (the WAL never grows without bound), the
/// drain must leave an empty, header-only log, and a reopen of the
/// directory must serve every acknowledged write from the checkpoint
/// alone.
#[test]
fn checkpoint_policy_bounds_the_wal_and_preserves_acks() {
    const SEED_N: usize = 100;
    const D: usize = 6;
    const INSERTS: usize = 40;

    let dir = cc_storage::wal::scratch_dir("svc-ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = cfg_exact(SEED_N);
    let data = clustered(SEED_N, D, 21);

    let engine = MutableIndex::open(&dir, D, SEED_N, &cfg).unwrap();
    let seed_ops: Vec<MutationOp> = data
        .iter()
        .map(|v| MutationOp::Insert { vector: v.to_vec(), meta: Default::default() })
        .collect();
    engine.apply_batch(&seed_ops).unwrap();
    let seeded_wal = engine.wal_size_bytes().unwrap();

    let service = ServiceConfig {
        max_batch: 4,
        max_delay: Duration::from_millis(1),
        k_max: 16,
        // Any mutation flush finds the log over this threshold, so
        // every flush checkpoints — the most aggressive policy.
        checkpoint_wal_bytes: 0,
        ..ServiceConfig::default()
    };
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let acked = std::sync::Mutex::new(Vec::<(u32, Vec<f32>)>::new());
    with_watchdog("checkpoint_policy", Duration::from_secs(60), || {
        let (engine, service, acked) = (&engine, &service, &acked);
        crossbeam::scope(move |s| {
            let server = s.spawn(move |_| cc_service::serve(engine, listener, service).unwrap());
            let mut client = Client::connect(addr).unwrap();
            for i in 0..INSERTS {
                let novel: Vec<f32> = (0..D).map(|j| 5000.0 + (i * D + j) as f32).collect();
                let (oid, _) = client.insert(&novel).unwrap();
                acked.lock().unwrap().push((oid, novel));
            }
            // The log was truncated along the way: it cannot still hold
            // the seed plus every insert.
            assert!(
                engine.wal_size_bytes().unwrap() < seeded_wal,
                "WAL grew past the seeded size despite the checkpoint policy"
            );
            let json = client.stats_json().unwrap();
            let checkpoints = find_u64(&json, "checkpoints").unwrap();
            assert!(checkpoints >= 1, "no checkpoint recorded: {json}");
            client.shutdown().unwrap();
            let stats = server.join().unwrap();
            assert!(stats.checkpoints >= checkpoints, "drain adds the final checkpoint");
        })
        .unwrap();
    });

    // After the drain the log holds nothing but its header …
    let wal_len = std::fs::metadata(dir.join(c2lsh::mutable::WAL_FILE)).unwrap().len();
    assert_eq!(wal_len, cc_storage::wal::WAL_HEADER_BYTES, "drain leaves an empty WAL");
    // … and the checkpoint alone reproduces every ack.
    drop(engine);
    let reopened = MutableIndex::open(&dir, D, SEED_N, &cfg).unwrap();
    assert_eq!(reopened.last_seq(), (SEED_N + INSERTS) as u64);
    assert_eq!(reopened.len(), SEED_N + INSERTS);
    for (oid, novel) in acked.into_inner().unwrap().iter() {
        let (nn, _) = reopened.query(novel, 1);
        assert_eq!((nn[0].id, nn[0].dist), (*oid, 0.0), "acked insert lost");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Collections and filtered search over one wire session: named
/// collections are created, listed and dropped by opcode; inserts into
/// a collection carry per-point metadata; filtered queries honor the
/// predicate against both a named collection and the default engine;
/// and the cost block reports predicate rejections (`filtered`)
/// separately from verification work.
#[test]
fn collections_and_filtered_search_over_the_wire() {
    const N: usize = 600;
    const D: usize = 8;
    let data = clustered(N, D, 17);
    let cfg = cfg_exact(N);

    // Default engine seeded with labels `i % 3` — coprime to the
    // generator's 8 clusters, so every cluster mixes all labels and a
    // selective predicate must reject close points.
    let engine = MutableIndex::ephemeral(DynamicIndex::new(D, N, &cfg));
    let seed: Vec<MutationOp> = data
        .iter()
        .enumerate()
        .map(|(i, v)| MutationOp::Insert {
            vector: v.to_vec(),
            meta: PointMeta::new(1 << (i % 5), (i % 3) as u32),
        })
        .collect();
    engine.apply_batch(&seed).unwrap();

    let col_data = clustered(90, D, 31);
    let service = ServiceConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(2),
        k_max: 64,
        collections: CollectionsConfig { config: cfg_exact(128), ..CollectionsConfig::default() },
        ..ServiceConfig::default()
    };
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    with_watchdog("collections_wire", Duration::from_secs(120), || {
        let (engine, service, data, col_data) = (&engine, &service, &data, &col_data);
        crossbeam::scope(move |s| {
            let server = s.spawn(move |_| cc_service::serve(engine, listener, service).unwrap());
            let mut client = Client::connect(addr).unwrap();

            // Lifecycle: create is idempotent-with-signal, bad names
            // are refused outright.
            assert!(!client.create_collection("alpha", D as u32).unwrap(), "fresh create");
            assert!(client.create_collection("alpha", D as u32).unwrap(), "second create exists");
            assert!(!client.create_collection("beta", 4).unwrap());
            assert!(client.create_collection("no spaces!", D as u32).is_err());
            assert!(client.create_collection("", D as u32).is_err());

            // Per-collection inserts carry metadata; oid == insertion
            // order, so `oid % 3` recovers the label below.
            for (i, v) in col_data.iter().enumerate() {
                let (oid, seq) = client
                    .insert_with_meta(Some("alpha"), v, 1 << (i % 4), (i % 3) as u32)
                    .unwrap();
                assert_eq!(oid as usize, i);
                assert_eq!(seq as usize, i + 1);
            }
            // Dimension mismatches are refused per collection.
            assert!(client.insert_with_meta(Some("beta"), col_data.get(0), 0, 0).is_err());

            let listed = client.list_collections().unwrap();
            assert_eq!(listed.len(), 2, "{listed:?}");
            let alpha = listed.iter().find(|c| c.name == "alpha").unwrap();
            assert_eq!((alpha.dim, alpha.objects), (D as u32, 90));
            let beta = listed.iter().find(|c| c.name == "beta").unwrap();
            assert_eq!((beta.dim, beta.objects), (4, 0));

            // Filtered query against the collection: row 3 has label 0,
            // so asking for label 1 must skip it (distance-0 rejection
            // shows up in `filtered`) and serve only label-1 points.
            let res = client
                .search_result(
                    &QueryRequest::new(col_data.get(3).to_vec())
                        .k(5)
                        .collection("alpha")
                        .filter(Predicate::label(1))
                        .with_stats(),
                )
                .unwrap();
            assert!(!res.neighbors.is_empty());
            for n in &res.neighbors {
                assert_eq!(n.id % 3, 1, "label predicate violated by oid {}", n.id);
                assert!(n.dist > 0.0, "row 3 itself must be filtered out");
            }
            let cost = res.cost.expect("with_stats populates the cost block");
            assert!(cost.filtered >= 1, "the exact match was label-0: {cost:?}");

            // Same predicate against the default engine.
            let res = client
                .search_result(
                    &QueryRequest::new(data.get(5).to_vec())
                        .k(5)
                        .filter(Predicate::label(1))
                        .with_stats(),
                )
                .unwrap();
            assert!(!res.neighbors.is_empty());
            for n in &res.neighbors {
                assert_eq!(n.id % 3, 1, "label predicate violated by oid {}", n.id);
            }
            let cost = res.cost.expect("cost block");
            assert!(cost.filtered >= 1, "row 5 (label 2) must be rejected: {cost:?}");

            // An unfiltered query on the default engine is untouched by
            // all of the above.
            let nn = top_k(&mut client, data.get(5), 1);
            assert_eq!((nn[0].id, nn[0].dist), (5, 0.0));

            // Unknown collections are an error, not a hang.
            assert!(client
                .search_result(&QueryRequest::new(data.get(0).to_vec()).k(1).collection("nope"))
                .is_err());

            // Drop: first call deletes, second reports absence; queries
            // against the dropped name fail cleanly.
            assert!(client.drop_collection("beta").unwrap());
            assert!(!client.drop_collection("beta").unwrap());
            assert_eq!(client.list_collections().unwrap().len(), 1);
            assert!(client.insert_with_meta(Some("beta"), col_data.get(0), 0, 0).is_err());

            // The stats document counts live collections and folds the
            // collection queries into the engine filter counter.
            let snap = client.stats().unwrap();
            assert_eq!(snap.collections, 1, "alpha survives");
            assert!(snap.engine.filtered >= 2, "both filtered queries counted: {snap:?}");

            client.shutdown().unwrap();
            server.join().unwrap();
        })
        .unwrap();
    });
}

/// The full crash story against the real binary: seed a WAL-backed
/// server, acknowledge mutations over TCP, SIGKILL the process with no
/// warning, restart it on the same directory, and demand every
/// acknowledged mutation back. This is the live-server variant of the
/// kill-at-any-offset proptest — the offset here is wherever the OS
/// happened to be when the KILL landed.
#[test]
fn killed_server_recovers_every_acknowledged_mutation() {
    const N: usize = 400;
    const D: usize = 8;
    const SEED: u64 = 42;

    // Must match the binary's --mode dynamic seeding parameters.
    let data = generate(
        Distribution::GaussianMixture { clusters: 10, spread: 0.02, scale: 10.0 },
        N,
        D,
        SEED,
    );

    with_watchdog("kill_and_restart", Duration::from_secs(120), || {
        let cluster = ClusterHarness::new("svc-kill");
        let wal = cluster.wal_dir("primary");
        let spec = NodeSpec::new("primary").args(&[
            "--mode",
            "dynamic",
            "--wal",
            wal.to_str().unwrap(),
            "--n",
            &N.to_string(),
            "--dim",
            &D.to_string(),
            "--seed",
            &SEED.to_string(),
            "--max-delay-us",
            "500",
        ]);
        let mut node = cluster.spawn(spec);
        let mut client = node.client();
        client.ping().unwrap();

        // Two acknowledged inserts and one acknowledged delete.
        let novel_a: Vec<f32> = (0..D).map(|j| 3000.0 + j as f32).collect();
        let novel_b: Vec<f32> = (0..D).map(|j| -3000.0 - j as f32).collect();
        let (oid_a, seq_a) = client.insert(&novel_a).unwrap();
        let (oid_b, seq_b) = client.insert(&novel_b).unwrap();
        assert_eq!(oid_a as usize, N, "first insert follows the seeded rows");
        assert_eq!(oid_b, oid_a + 1);
        assert!(seq_b > seq_a);
        let (found, seq_del) = client.delete(0).unwrap();
        assert!(found, "seeded oid 0 must exist");
        assert_eq!(seq_del, (N + 3) as u64, "dense sequence: seed + 2 inserts + 1 delete");

        // SIGKILL: no drain, no flush beyond what the acks certified.
        node.kill();

        let mut node = cluster.restart(node);
        let mut client = node.client();

        // Every ack must have survived.
        let nn = top_k(&mut client, &novel_a, 1);
        assert_eq!((nn[0].id, nn[0].dist), (oid_a, 0.0), "insert A lost in the crash");
        let nn = top_k(&mut client, &novel_b, 1);
        assert_eq!((nn[0].id, nn[0].dist), (oid_b, 0.0), "insert B lost in the crash");
        let nn = top_k(&mut client, data.get(0), 1);
        assert!(nn[0].id != 0 && nn[0].dist > 0.0, "delete of oid 0 resurrected: {nn:?}");

        // The recovered engine reports the pre-crash high-water mark,
        // and a post-restart mutation continues the sequence densely.
        let json = client.stats_json().unwrap();
        assert_eq!(find_u64(&json, "last_seq"), Some((N + 3) as u64), "{json}");
        let (_, seq) = client.insert(&[9000.0; D]).unwrap();
        assert_eq!(seq, (N + 4) as u64, "sequence must resume after recovery");

        node.shutdown();
    });
}

//! Property tests for the wire protocol, centred on the mutation
//! frames: insert/delete requests and their acks round-trip for
//! arbitrary payloads, every truncation of a valid frame is rejected
//! (or reported as clean EOF) rather than mis-parsed, unknown opcodes
//! are refused in both directions, and arbitrary garbage never panics
//! the decoder.

use cc_service::protocol::{read_request, read_response, write_request, write_response};
use cc_service::{ProtoError, Request, Response};
use proptest::prelude::*;
use std::io::Cursor;

fn coord() -> impl Strategy<Value = f32> {
    -1.0e6f32..1.0e6
}

fn request_wire(req: &Request) -> Vec<u8> {
    let mut wire = Vec::new();
    write_request(&mut wire, req).unwrap();
    wire
}

fn response_wire(resp: &Response) -> Vec<u8> {
    let mut wire = Vec::new();
    write_response(&mut wire, resp).unwrap();
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn insert_request_round_trips(vector in proptest::collection::vec(coord(), 1..32)) {
        let req = Request::Insert { vector };
        let got = read_request(&mut Cursor::new(request_wire(&req))).unwrap().unwrap();
        prop_assert_eq!(got, req);
    }

    #[test]
    fn delete_request_round_trips(oid in 0u32..u32::MAX) {
        let req = Request::Delete { oid };
        let got = read_request(&mut Cursor::new(request_wire(&req))).unwrap().unwrap();
        prop_assert_eq!(got, req);
    }

    #[test]
    fn ack_responses_round_trip(oid in 0u32..u32::MAX, seq in 0u64..u64::MAX, found in 0u8..2) {
        for resp in [
            Response::InsertAck { oid, seq },
            Response::DeleteAck { oid, found: found == 1, seq },
        ] {
            let got = read_response(&mut Cursor::new(response_wire(&resp))).unwrap().unwrap();
            prop_assert_eq!(got, resp);
        }
    }

    /// Every strict truncation of a valid mutation frame must surface
    /// as an error or a clean EOF — decoding a different value from a
    /// torn frame would let a half-written ack certify a mutation that
    /// never became durable.
    #[test]
    fn truncated_mutation_frames_never_misparse(
        vector in proptest::collection::vec(coord(), 1..16),
        oid in 0u32..u32::MAX,
        seq in 0u64..u64::MAX,
    ) {
        for wire in [
            request_wire(&Request::Insert { vector: vector.clone() }),
            request_wire(&Request::Delete { oid }),
        ] {
            for len in 0..wire.len() {
                match read_request(&mut Cursor::new(&wire[..len])) {
                    Ok(None) | Err(_) => {}
                    Ok(Some(got)) => panic!(
                        "request truncated to {len}/{} bytes parsed as {got:?}",
                        wire.len()
                    ),
                }
            }
        }
        for wire in [
            response_wire(&Response::InsertAck { oid, seq }),
            response_wire(&Response::DeleteAck { oid, found: true, seq }),
        ] {
            for len in 0..wire.len() {
                match read_response(&mut Cursor::new(&wire[..len])) {
                    Ok(None) | Err(_) => {}
                    Ok(Some(got)) => panic!(
                        "response truncated to {len}/{} bytes parsed as {got:?}",
                        wire.len()
                    ),
                }
            }
        }
    }

    /// Opcodes `0x09..=0x7E` name no request and `0x8B..=0x8E` name no
    /// response (`0x07`/`0x08` and `0x89`/`0x8A` are the v2
    /// query/metrics frames): both directions must refuse them as
    /// malformed no matter what body follows.
    #[test]
    fn unknown_opcodes_are_rejected(
        req_op in 0x09u8..0x7F,
        resp_op in 0x8Bu8..0x8F,
        body in proptest::collection::vec(0u8..255, 0..32),
    ) {
        let mut wire = ((body.len() + 1) as u32).to_le_bytes().to_vec();
        wire.push(req_op);
        wire.extend_from_slice(&body);
        prop_assert!(matches!(
            read_request(&mut Cursor::new(&wire[..])),
            Err(ProtoError::Malformed(_))
        ), "request opcode {req_op:#04x} must be unknown");

        wire[4] = resp_op;
        prop_assert!(matches!(
            read_response(&mut Cursor::new(&wire[..])),
            Err(ProtoError::Malformed(_))
        ), "response opcode {resp_op:#04x} must be unknown");
    }

    /// Arbitrary bytes through either decoder: error or clean EOF only,
    /// never a panic.
    #[test]
    fn arbitrary_garbage_never_panics(bytes in proptest::collection::vec(0u8..255, 0..64)) {
        let _ = read_request(&mut Cursor::new(&bytes[..]));
        let _ = read_response(&mut Cursor::new(&bytes[..]));
    }
}

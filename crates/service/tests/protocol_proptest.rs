//! Property tests for the wire protocol, centred on the mutation
//! frames: insert/delete requests and their acks round-trip for
//! arbitrary payloads, every truncation of a valid frame is rejected
//! (or reported as clean EOF) rather than mis-parsed, unknown opcodes
//! are refused in both directions, and arbitrary garbage never panics
//! the decoder.

use cc_service::protocol::{read_request, read_response, write_request, write_response};
use cc_service::{ProtoError, Request, Response};
use cc_storage::wal::{WalOp, WalRecord};
use proptest::prelude::*;
use std::io::Cursor;

fn coord() -> impl Strategy<Value = f32> {
    -1.0e6f32..1.0e6
}

/// Replica names over `[a-z0-9]` (the vendored shim has no regex
/// strategies, so spell the alphabet out).
fn name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..36, 1..24)
        .prop_map(|v| v.into_iter().map(|b| char::from_digit(b as u32, 36).unwrap()).collect())
}

/// One replication record: an insert (vector + metadata) or a delete.
fn wal_record() -> impl Strategy<Value = WalRecord> {
    (
        0u64..u64::MAX,
        0u8..2,
        proptest::collection::vec(coord(), 1..12),
        0u64..u64::MAX,
        0u32..u32::MAX,
        0u32..u32::MAX,
    )
        .prop_map(|(seq, kind, vector, tag, label, oid)| {
            let op = if kind == 0 {
                WalOp::Insert { oid, vector, tag, label }
            } else {
                WalOp::Delete { oid }
            };
            WalRecord { seq, op }
        })
}

fn request_wire(req: &Request) -> Vec<u8> {
    let mut wire = Vec::new();
    write_request(&mut wire, req).unwrap();
    wire
}

fn response_wire(resp: &Response) -> Vec<u8> {
    let mut wire = Vec::new();
    write_response(&mut wire, resp).unwrap();
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn insert_request_round_trips(vector in proptest::collection::vec(coord(), 1..32)) {
        let req = Request::Insert { vector };
        let got = read_request(&mut Cursor::new(request_wire(&req))).unwrap().unwrap();
        prop_assert_eq!(got, req);
    }

    #[test]
    fn delete_request_round_trips(oid in 0u32..u32::MAX) {
        let req = Request::Delete { oid };
        let got = read_request(&mut Cursor::new(request_wire(&req))).unwrap().unwrap();
        prop_assert_eq!(got, req);
    }

    #[test]
    fn ack_responses_round_trip(oid in 0u32..u32::MAX, seq in 0u64..u64::MAX, found in 0u8..2) {
        for resp in [
            Response::InsertAck { oid, seq },
            Response::DeleteAck { oid, found: found == 1, seq },
        ] {
            let got = read_response(&mut Cursor::new(response_wire(&resp))).unwrap().unwrap();
            prop_assert_eq!(got, resp);
        }
    }

    /// Every strict truncation of a valid mutation frame must surface
    /// as an error or a clean EOF — decoding a different value from a
    /// torn frame would let a half-written ack certify a mutation that
    /// never became durable.
    #[test]
    fn truncated_mutation_frames_never_misparse(
        vector in proptest::collection::vec(coord(), 1..16),
        oid in 0u32..u32::MAX,
        seq in 0u64..u64::MAX,
    ) {
        for wire in [
            request_wire(&Request::Insert { vector: vector.clone() }),
            request_wire(&Request::Delete { oid }),
        ] {
            for len in 0..wire.len() {
                match read_request(&mut Cursor::new(&wire[..len])) {
                    Ok(None) | Err(_) => {}
                    Ok(Some(got)) => panic!(
                        "request truncated to {len}/{} bytes parsed as {got:?}",
                        wire.len()
                    ),
                }
            }
        }
        for wire in [
            response_wire(&Response::InsertAck { oid, seq }),
            response_wire(&Response::DeleteAck { oid, found: true, seq }),
        ] {
            for len in 0..wire.len() {
                match read_response(&mut Cursor::new(&wire[..len])) {
                    Ok(None) | Err(_) => {}
                    Ok(Some(got)) => panic!(
                        "response truncated to {len}/{} bytes parsed as {got:?}",
                        wire.len()
                    ),
                }
            }
        }
    }

    /// Opcodes `0x0F..=0x7E` name no request and `0x8D`/`0x8E` plus
    /// `0x91..` name no response (requests run through `0x0E` ReplAck;
    /// responses skip to `0x8F` Error and `0x90` ReplBatch): both
    /// directions must refuse them as malformed no matter what body
    /// follows.
    #[test]
    fn unknown_opcodes_are_rejected(
        req_op in 0x0Fu8..0x7F,
        sampled_resp_op in 0x91u8..0xFF,
        body in proptest::collection::vec(0u8..255, 0..32),
    ) {
        let mut wire = ((body.len() + 1) as u32).to_le_bytes().to_vec();
        wire.push(req_op);
        wire.extend_from_slice(&body);
        prop_assert!(matches!(
            read_request(&mut Cursor::new(&wire[..])),
            Err(ProtoError::Malformed(_))
        ), "request opcode {req_op:#04x} must be unknown");

        // 0x8D/0x8E are the only holes below Error (0x8F) and
        // ReplBatch (0x90); everything past 0x90 is unassigned.
        for resp_op in [0x8D, 0x8E, sampled_resp_op] {
            wire[4] = resp_op;
            prop_assert!(matches!(
                read_response(&mut Cursor::new(&wire[..])),
                Err(ProtoError::Malformed(_))
            ), "response opcode {resp_op:#04x} must be unknown");
        }
    }

    /// Arbitrary bytes through either decoder: error or clean EOF only,
    /// never a panic.
    #[test]
    fn arbitrary_garbage_never_panics(bytes in proptest::collection::vec(0u8..255, 0..64)) {
        let _ = read_request(&mut Cursor::new(&bytes[..]));
        let _ = read_response(&mut Cursor::new(&bytes[..]));
    }

    /// The replication control frames round-trip for arbitrary replica
    /// names and sequence positions.
    #[test]
    fn repl_control_frames_round_trip(
        replica in name(),
        from_seq in 0u64..u64::MAX,
        applied_seq in 0u64..u64::MAX,
    ) {
        for req in [
            Request::ReplSubscribe { replica, from_seq },
            Request::ReplAck { applied_seq },
        ] {
            let got = read_request(&mut Cursor::new(request_wire(&req))).unwrap().unwrap();
            prop_assert_eq!(got, req);
        }
    }

    /// A replication batch — the frame that actually carries state
    /// between processes — round-trips record-exactly for arbitrary
    /// insert/delete mixes, including the empty heartbeat.
    #[test]
    fn repl_batches_round_trip(
        last_seq in 0u64..u64::MAX,
        records in proptest::collection::vec(wal_record(), 0..8),
    ) {
        let resp = Response::ReplBatch { last_seq, records };
        let got = read_response(&mut Cursor::new(response_wire(&resp))).unwrap().unwrap();
        prop_assert_eq!(got, resp);
    }

    /// Every strict truncation of a replication frame is refused (or
    /// reads as clean EOF) — a torn batch that decoded to *fewer*
    /// records than shipped would silently lose acknowledged writes on
    /// the follower.
    #[test]
    fn truncated_repl_frames_never_misparse(
        replica in name(),
        seqs in (0u64..u64::MAX, 0u64..u64::MAX),
        records in proptest::collection::vec(wal_record(), 1..4),
    ) {
        for wire in [
            request_wire(&Request::ReplSubscribe { replica, from_seq: seqs.0 }),
            request_wire(&Request::ReplAck { applied_seq: seqs.1 }),
        ] {
            for len in 0..wire.len() {
                match read_request(&mut Cursor::new(&wire[..len])) {
                    Ok(None) | Err(_) => {}
                    Ok(Some(got)) => panic!(
                        "request truncated to {len}/{} bytes parsed as {got:?}",
                        wire.len()
                    ),
                }
            }
        }
        let wire = response_wire(&Response::ReplBatch { last_seq: seqs.0, records });
        for len in 0..wire.len() {
            match read_response(&mut Cursor::new(&wire[..len])) {
                Ok(None) | Err(_) => {}
                Ok(Some(got)) => panic!(
                    "batch truncated to {len}/{} bytes parsed as {got:?}",
                    wire.len()
                ),
            }
        }
    }
}

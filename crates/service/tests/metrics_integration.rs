//! The observability layer against live servers.
//!
//! In-process: a mutable engine served with metrics on — mixed
//! read/write load, `/metrics` scraped twice over real HTTP and checked
//! for monotone counters that agree with the client-side tally, the
//! exposition linted (unique series, `# HELP`/`# TYPE` for every
//! family), traces and the slow log exercised end-to-end.
//!
//! Against the real binary: `--metrics-addr` must announce itself on
//! stderr, serve `/metrics` and `/healthz`, and count the queries the
//! client sends.

use c2lsh::config::Beta;
use c2lsh::{C2lshConfig, DynamicIndex, MutableIndex, MutationOp};
use cc_obs::{http_get, MetricsServer, ObsConfig};
use cc_service::{Client, QueryRequest, ServerObs, ServiceConfig};
use cc_vector::gen::{generate, Distribution};
use std::collections::HashSet;
use std::net::TcpListener;
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Abort the whole process if `f` does not finish in time — a panic
/// inside a crossbeam scope would otherwise leave the server thread
/// unjoined and hang the suite instead of failing it.
fn with_watchdog(label: &'static str, limit: Duration, f: impl FnOnce()) {
    let (done_tx, done_rx) = mpsc::channel::<()>();
    std::thread::spawn(move || {
        if done_rx.recv_timeout(limit).is_err() {
            eprintln!("[{label}] did not finish within {limit:?}");
            std::process::abort();
        }
    });
    f();
    let _ = done_tx.send(());
}

/// Pull the value of a single-sample series (`name value`) out of an
/// exposition document.
fn metric(text: &str, name: &str) -> f64 {
    let line = text
        .lines()
        .find(|l| l.strip_prefix(name).map(|r| r.starts_with(' ')).unwrap_or(false))
        .unwrap_or_else(|| panic!("series {name} missing from exposition:\n{text}"));
    line.split_whitespace().nth(1).unwrap().parse().unwrap()
}

/// The exposition lint CI also applies: every sample line belongs to a
/// family with `# HELP` and `# TYPE`, and no series name (including its
/// labels) appears twice.
fn lint_exposition(text: &str) {
    let mut help = HashSet::new();
    let mut ty = HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let family = rest.split_whitespace().next().unwrap().to_string();
            assert!(help.insert(family.clone()), "duplicate HELP for {family}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let family = rest.split_whitespace().next().unwrap().to_string();
            assert!(ty.insert(family.clone()), "duplicate TYPE for {family}");
        }
    }
    assert_eq!(help, ty, "HELP and TYPE must cover the same families");
    let mut series = HashSet::new();
    for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let name = line.split(' ').next().unwrap().to_string();
        assert!(series.insert(name.clone()), "duplicate series {name}:\n{text}");
        // The family is the series name with labels and the summary
        // aggregate suffixes stripped.
        let family = name.split('{').next().unwrap();
        let family = family.strip_suffix("_sum").unwrap_or(family);
        let family = family.strip_suffix("_count").unwrap_or(family);
        assert!(ty.contains(family), "series {name} has no # TYPE (family {family}):\n{text}");
    }
    assert!(!series.is_empty(), "empty exposition");
}

/// Mixed read/write load against an in-process server with the full
/// observability stack on, scraped over real HTTP.
#[test]
fn live_scrape_is_monotone_and_consistent_with_load() {
    const D: usize = 8;
    const SEED_N: usize = 200;
    const QUERIES_1: usize = 12;
    const QUERIES_2: usize = 9;
    const INSERTS: usize = 5;
    const DELETES: usize = 3;

    let cfg =
        C2lshConfig::builder().bucket_width(1.0).seed(11).beta(Beta::Count(SEED_N as u64)).build();
    let data = generate(
        Distribution::GaussianMixture { clusters: 6, spread: 0.02, scale: 10.0 },
        SEED_N,
        D,
        17,
    );
    let engine = MutableIndex::ephemeral(DynamicIndex::new(D, SEED_N, &cfg));
    let seed: Vec<MutationOp> = data
        .iter()
        .map(|v| MutationOp::Insert { vector: v.to_vec(), meta: Default::default() })
        .collect();
    engine.apply_batch(&seed).unwrap();

    let obs = Arc::new(ServerObs::new(ObsConfig {
        enabled: true,
        trace_sample_every: 1,
        slow_query_ms: 1,
        slow_log_capacity: 8,
    }));
    let metrics = MetricsServer::bind("127.0.0.1:0", obs.clone()).unwrap();
    let scrape = metrics.local_addr();

    // A 5 ms linger with a lone client means every query waits out the
    // full batching delay — so each one crosses the 1 ms slow-query
    // threshold and the ring gets exercised.
    let service = ServiceConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(5),
        k_max: 32,
        ..ServiceConfig::default()
    };
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    with_watchdog("live_scrape", Duration::from_secs(120), || {
        let obs = obs.clone();
        crossbeam::scope(|s| {
            let (engine, service) = (&engine, &service);
            let server = s.spawn(move |_| {
                cc_service::serve_with_obs(engine, listener, service, obs).unwrap()
            });
            let mut client = Client::connect(addr).unwrap();

            assert_eq!(http_get(scrape, "/healthz").unwrap(), "ok\n");

            for i in 0..QUERIES_1 {
                let r = client
                    .search_result(&QueryRequest::new(data.get(i % SEED_N).to_vec()).k(3))
                    .unwrap();
                assert_eq!(r.neighbors[0].id, (i % SEED_N) as u32);
                assert!(r.cost.is_none(), "stats not requested");
                assert_eq!(r.trace_id, 0, "trace not requested");
            }
            let first = http_get(scrape, "/metrics").unwrap();
            lint_exposition(&first);
            assert_eq!(metric(&first, "cc_up"), 1.0);
            assert_eq!(metric(&first, "cc_queries_total"), QUERIES_1 as f64);
            assert_eq!(metric(&first, "cc_dim"), D as f64);
            assert_eq!(metric(&first, "cc_objects"), SEED_N as f64);
            // The per-stage histograms saw exactly the answered queries.
            assert_eq!(metric(&first, "cc_query_seconds_count"), QUERIES_1 as f64);
            assert_eq!(metric(&first, "cc_stage_count_seconds_count"), QUERIES_1 as f64);
            assert!(metric(&first, "cc_query_seconds_sum") > 0.0);
            // p50 ≤ p99 by construction.
            let p50 = metric(&first, "cc_query_seconds{quantile=\"0.5\"}");
            let p99 = metric(&first, "cc_query_seconds{quantile=\"0.99\"}");
            assert!(p50 <= p99, "p50 {p50} > p99 {p99}");

            // Second wave: writes plus traced/stats queries.
            let mut inserted = Vec::new();
            for i in 0..INSERTS {
                let novel: Vec<f32> = (0..D).map(|j| 900.0 + (i * D + j) as f32).collect();
                inserted.push(client.insert(&novel).unwrap().0);
            }
            for oid in 0..DELETES {
                let (found, _) = client.delete(oid as u32).unwrap();
                assert!(found);
            }
            let mut traced_ids = Vec::new();
            for i in 0..QUERIES_2 {
                let r = client
                    .search_result(&QueryRequest::new(data.get(50 + i).to_vec()).k(2).with_trace())
                    .unwrap();
                let cost = r.cost.expect("trace implies a cost block");
                assert!(cost.rounds > 0, "{cost:?}");
                assert!(!cost.spans.is_empty(), "traced query lost its spans: {cost:?}");
                assert!(r.trace_id > 0, "traced query got no id");
                traced_ids.push(r.trace_id);
            }
            let unique: HashSet<u64> = traced_ids.iter().copied().collect();
            assert_eq!(unique.len(), traced_ids.len(), "trace ids must be unique");

            let second = http_get(scrape, "/metrics").unwrap();
            lint_exposition(&second);
            assert_eq!(metric(&second, "cc_queries_total"), (QUERIES_1 + QUERIES_2) as f64);
            assert_eq!(metric(&second, "cc_inserts_total"), INSERTS as f64);
            assert_eq!(metric(&second, "cc_deletes_total"), DELETES as f64);
            assert_eq!(metric(&second, "cc_objects"), (SEED_N + INSERTS - DELETES) as f64);
            assert!(metric(&second, "cc_traces_total") >= QUERIES_2 as f64);
            // One WAL-apply observation per flush that carried mutations:
            // at least one (something was written), at most one per request.
            let wal_flushes = metric(&second, "cc_wal_apply_seconds_count");
            assert!(
                (1.0..=(INSERTS + DELETES) as f64).contains(&wal_flushes),
                "wal flushes {wal_flushes}"
            );
            // Monotonicity across the two scrapes, counter by counter.
            for family in [
                "cc_queries_total",
                "cc_batches_total",
                "cc_errors_total",
                "cc_inserts_total",
                "cc_deletes_total",
                "cc_traces_total",
                "cc_slow_queries_total",
                "cc_query_seconds_count",
                "cc_flush_seconds_count",
            ] {
                assert!(
                    metric(&second, family) >= metric(&first, family),
                    "{family} went backwards"
                );
            }

            // Every query outlasted the 1 ms threshold (the linger alone
            // guarantees it), so the ring retained the most recent ones —
            // and the traced ids are cross-referenced.
            let slowlog = http_get(scrape, "/slowlog").unwrap();
            assert!(slowlog.contains("slow queries"), "{slowlog}");
            let last_id = *traced_ids.last().unwrap();
            assert!(slowlog.contains(&format!("trace_id={last_id} ")), "{slowlog}");

            // The same document is served over the binary protocol.
            let inband = client.metrics_text().unwrap();
            lint_exposition(&inband);
            assert!(metric(&inband, "cc_queries_total") >= (QUERIES_1 + QUERIES_2) as f64);

            client.shutdown().unwrap();
            server.join().unwrap();
        })
        .unwrap();
    });
    metrics.stop();
}

/// The real binary: `--metrics-addr` announces the scrape endpoint on
/// stderr and serves a lintable exposition that tracks served queries.
#[test]
fn binary_serves_metrics_endpoint() {
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    const N: usize = 300;
    const D: usize = 8;

    let mut child = Command::new(env!("CARGO_BIN_EXE_cc-service"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--metrics-addr",
            "127.0.0.1:0",
            "--slow-query-ms",
            "0",
            "--trace-sample",
            "1",
            "--n",
            &N.to_string(),
            "--dim",
            &D.to_string(),
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cc-service");
    let stderr = child.stderr.take().unwrap();
    let mut lines = BufReader::new(stderr).lines();
    let mut serve_addr = None;
    let mut scrape_addr = None;
    while serve_addr.is_none() || scrape_addr.is_none() {
        let line = lines
            .next()
            .expect("server exited before announcing its addresses")
            .expect("read server stderr");
        if let Some(rest) = line.split("metrics on http://").nth(1) {
            let addr = rest.split('/').next().unwrap();
            scrape_addr = Some(addr.parse().expect("parse metrics address"));
        } else if let Some(rest) = line.split("listening on ").nth(1) {
            let addr = rest.split_whitespace().next().unwrap();
            serve_addr = Some(addr.parse::<std::net::SocketAddr>().expect("parse address"));
        }
    }
    std::thread::spawn(move || for _ in lines {});
    let (serve_addr, scrape_addr) = (serve_addr.unwrap(), scrape_addr.unwrap());

    assert_eq!(http_get(scrape_addr, "/healthz").unwrap(), "ok\n");
    let before = http_get(scrape_addr, "/metrics").unwrap();
    lint_exposition(&before);
    assert_eq!(metric(&before, "cc_up"), 1.0);
    assert_eq!(metric(&before, "cc_queries_total"), 0.0);

    let mut client = Client::connect(serve_addr).unwrap();
    for i in 0..7u32 {
        let q: Vec<f32> = (0..D).map(|j| (i + j as u32) as f32).collect();
        let r = client.search_result(&QueryRequest::new(q).k(3).with_stats()).unwrap();
        assert!(!r.neighbors.is_empty());
        assert!(r.cost.is_some());
    }
    let after = http_get(scrape_addr, "/metrics").unwrap();
    lint_exposition(&after);
    assert_eq!(metric(&after, "cc_queries_total"), 7.0);
    assert!(metric(&after, "cc_query_seconds_count") >= 7.0);

    client.shutdown().unwrap();
    child.wait().expect("server drains after shutdown");
}

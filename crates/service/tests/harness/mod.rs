//! A reusable multi-process cluster harness for live `cc-service`
//! tests: spawn real server binaries (primary, followers, router) as
//! child processes, capture their stderr to per-node log files, kill
//! them without warning, restart them on the same WAL directory, and
//! poll for replication catch-up.
//!
//! Design points the tests rely on:
//!
//! * **No ad-hoc ports.** Every node binds `127.0.0.1:0` and the
//!   harness reads the kernel-assigned address back from the node's
//!   own `listening on <addr>` stderr line — tests never race over a
//!   hard-coded port, and any number of clusters can run in parallel.
//! * **Logs are artifacts.** Each spawn tees the child's stderr to
//!   `<root>/logs/<name>-<attempt>.log`. On success the root is
//!   removed; on panic it is kept, and because the root lives under
//!   `CC_FAULT_DIR` (when set) the CI job uploads it for post-mortem.
//! * **Kill means SIGKILL.** [`Node::kill`] gives the process no
//!   chance to flush or drain — exactly the crash the WAL's
//!   group-commit acks are supposed to survive.
//! * **Respawn is a first-class operation.** [`ClusterHarness::restart`]
//!   relaunches the same spec (same WAL directory, same flags) and
//!   re-reads the new address, which models a crashed node rejoining
//!   the cluster.

#![allow(dead_code)] // shared by several test binaries; each uses a subset

use cc_service::json::find_u64;
use cc_service::Client;
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Abort the whole test process if `f` does not finish in time — a
/// hung drain, a wedged child process or a leaked handler thread must
/// fail CI, not stall it.
pub fn with_watchdog(label: &'static str, limit: Duration, f: impl FnOnce()) {
    let (done_tx, done_rx) = mpsc::channel::<()>();
    std::thread::spawn(move || {
        if done_rx.recv_timeout(limit).is_err() {
            eprintln!("[{label}] did not finish within {limit:?} — leaked threads or hung drain");
            std::process::abort();
        }
    });
    f();
    let _ = done_tx.send(());
}

/// How to launch one node: a name (labels its WAL dir and log files)
/// plus the `cc-service` flags beyond the harness-owned `--addr`.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    name: String,
    args: Vec<String>,
    envs: Vec<(String, String)>,
}

impl NodeSpec {
    /// A spec named `name` with no flags yet.
    pub fn new(name: impl Into<String>) -> Self {
        NodeSpec { name: name.into(), args: Vec::new(), envs: Vec::new() }
    }

    /// Append one flag (or flag value).
    pub fn arg(mut self, a: impl Into<String>) -> Self {
        self.args.push(a.into());
        self
    }

    /// Append several flags at once.
    pub fn args(mut self, list: &[&str]) -> Self {
        self.args.extend(list.iter().map(|s| s.to_string()));
        self
    }

    /// Set an environment variable on the child (failpoints live here).
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }
}

/// One live child process plus everything needed to talk to it, kill
/// it, and respawn it.
pub struct Node {
    /// The spec this node was launched from (reused by restart).
    spec: NodeSpec,
    /// The kernel-assigned serving address.
    pub addr: SocketAddr,
    child: Child,
    /// Where this attempt's stderr is teed.
    pub log_path: PathBuf,
}

impl Node {
    /// The node's name (from its spec).
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Connect a fresh protocol client to this node.
    pub fn client(&self) -> Client {
        Client::connect(self.addr)
            .unwrap_or_else(|e| panic!("connect to {} at {}: {e}", self.spec.name, self.addr))
    }

    /// SIGKILL the process and reap it — no drain, no flush, no
    /// goodbye. Anything not already durable is gone.
    pub fn kill(&mut self) {
        self.child.kill().expect("kill node");
        self.child.wait().expect("reap killed node");
    }

    /// Ask the node to drain gracefully (protocol `Shutdown`) and wait
    /// for the process to exit.
    pub fn shutdown(&mut self) {
        self.client().shutdown().expect("shutdown ack");
        let status = self.child.wait().expect("node exits after drain");
        assert!(status.success(), "{} exited with {status}", self.spec.name);
    }

    /// Wait for the process to exit on its own.
    pub fn wait(&mut self) {
        self.child.wait().expect("node exits");
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        // Never leak a child past the test: if it still runs, kill it.
        if self.child.try_wait().ok().flatten().is_none() {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// The harness: a scratch root holding every node's WAL directory and
/// log file, plus the spawn/restart machinery.
pub struct ClusterHarness {
    root: PathBuf,
    attempts: AtomicUsize,
}

impl ClusterHarness {
    /// A fresh harness rooted in a scratch directory labeled `label`
    /// (under `CC_FAULT_DIR` when set, so CI uploads it on failure).
    pub fn new(label: &str) -> Self {
        let root = cc_storage::wal::scratch_dir(&format!("cluster-{label}"));
        std::fs::create_dir_all(root.join("logs")).expect("create harness root");
        ClusterHarness { root, attempts: AtomicUsize::new(0) }
    }

    /// A per-node WAL directory under the harness root (created).
    pub fn wal_dir(&self, name: &str) -> PathBuf {
        let dir = self.root.join(format!("{name}-wal"));
        std::fs::create_dir_all(&dir).expect("create wal dir");
        dir
    }

    /// Launch one node: bind `127.0.0.1:0`, read the bound address
    /// back from its announcement line, tee stderr to a log file.
    /// Panics (with the log so far) if the process exits first.
    pub fn spawn(&self, spec: NodeSpec) -> Node {
        self.spawn_at(&spec, "127.0.0.1:0", true).expect("spawn_at(must) returned")
    }

    fn spawn_at(&self, spec: &NodeSpec, addr: &str, must: bool) -> Option<Node> {
        let attempt = self.attempts.fetch_add(1, Ordering::Relaxed);
        let log_path = self.root.join("logs").join(format!("{}-{attempt}.log", spec.name));
        let mut log = std::fs::File::create(&log_path).expect("create node log");
        let mut child = Command::new(env!("CARGO_BIN_EXE_cc-service"))
            .args(["--addr", addr])
            .args(&spec.args)
            .envs(spec.envs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn cc-service");
        let stderr = child.stderr.take().unwrap();
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let Some(line) = lines.next() else {
                let _ = child.wait();
                if must {
                    panic!(
                        "node {} exited before announcing its address; log at {}",
                        spec.name,
                        log_path.display()
                    );
                }
                return None; // e.g. the requested port is still held
            };
            let line = line.expect("read node stderr");
            writeln!(log, "{line}").ok();
            if let Some(rest) = line.split("listening on ").nth(1) {
                let addr = rest.split_whitespace().next().unwrap();
                break addr.parse().expect("parse announced address");
            }
        };
        // Keep draining stderr into the log so the child never blocks
        // on a full pipe; the thread dies with the pipe.
        std::thread::spawn(move || {
            for line in lines.map_while(Result::ok) {
                writeln!(log, "{line}").ok();
            }
        });
        Some(Node { spec: spec.clone(), addr, child, log_path })
    }

    /// Relaunch a (killed) node from its own spec: same WAL directory,
    /// same flags — and preferably the **same port**, so fleet configs
    /// pointing at the node keep working across the restart. Lingering
    /// TIME_WAIT peers can briefly hold the old port; retry for a few
    /// seconds, then fall back to a fresh kernel-assigned one.
    pub fn restart(&self, mut node: Node) -> Node {
        if node.child.try_wait().ok().flatten().is_none() {
            node.kill();
        }
        let spec = node.spec.clone();
        let old = node.addr;
        drop(node);
        for _ in 0..25 {
            if let Some(node) = self.spawn_at(&spec, &old.to_string(), false) {
                return node;
            }
            std::thread::sleep(Duration::from_millis(200));
        }
        self.spawn(spec)
    }

    /// The harness scratch root (for direct filesystem assertions).
    pub fn root(&self) -> &Path {
        &self.root
    }
}

impl Drop for ClusterHarness {
    fn drop(&mut self) {
        // Keep the logs and WALs of a failing test for post-mortem;
        // clean up after a passing one.
        if !std::thread::panicking() {
            std::fs::remove_dir_all(&self.root).ok();
        }
    }
}

/// Poll a node's stats until its applied sequence reaches `min_seq`,
/// panicking after `limit`. The replication catch-up assertions all
/// funnel through this.
pub fn wait_for_seq(addr: SocketAddr, min_seq: u64, limit: Duration) {
    let deadline = Instant::now() + limit;
    let mut last = 0;
    loop {
        // Reconnect per probe: the node may be mid-restart.
        if let Ok(mut client) = Client::connect(addr) {
            if let Ok(json) = client.stats_json() {
                last = find_u64(&json, "last_seq").unwrap_or(0);
                if last >= min_seq {
                    return;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "node at {addr} stuck at seq {last}, wanted {min_seq} within {limit:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

//! Multi-process chaos tests for the replicated serving tier: a real
//! primary, real follower processes pulling the WAL stream, and a real
//! scatter-gather router — all spawned as child binaries through the
//! shared [`harness`]. The cluster is put under mixed read/write load,
//! a follower is SIGKILLed mid-load (queries must keep succeeding via
//! failover), restarted (it must catch up over replication), and
//! cold-reopened (its local WAL must already hold every acknowledged
//! write). A second test pins the read-your-writes guarantee with a
//! failpoint that stalls the follower's apply loop.

#[path = "harness/mod.rs"]
mod harness;

use cc_service::{QueryRequest, SearchOutcome};
use cc_vector::gen::{generate, Distribution};
use harness::{with_watchdog, ClusterHarness, NodeSpec};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A vector nowhere near the seeded gaussian mixture, unique per `j`.
fn novel_vector(dim: usize, j: usize) -> Vec<f32> {
    (0..dim).map(|c| 3000.0 + (j * dim + c) as f32).collect()
}

/// Pull one counter's value out of a Prometheus text exposition.
fn metric_value(text: &str, series: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(series) && !l.starts_with('#'))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("series {series} missing from exposition:\n{text}"))
}

/// The full chaos scenario on a 3-node cluster plus router:
///
/// 1. primary seeds N vectors; two followers replicate the seed;
/// 2. reader threads hammer the router with exact self-queries while a
///    writer streams inserts through it;
/// 3. one follower is SIGKILLed mid-load — every query must still
///    succeed (router failover), with zero reader errors overall;
/// 4. the follower restarts on the same port and catches up over the
///    replication stream to the final sequence;
/// 5. read-your-writes: the last insert is queried through the router
///    with `min_seq` set to its acked sequence;
/// 6. the *other* follower is SIGKILLed and cold-reopened: its own WAL
///    replay alone must surface every acknowledged write (zero loss),
///    verified with `min_seq`-pinned direct queries;
/// 7. the primary's replica lag gauge names both followers, and the
///    router counted fanout and at least one failed leg.
#[test]
fn chaos_follower_sigkill_failover_catchup_and_zero_loss() {
    const N: usize = 300;
    const D: usize = 8;
    const WRITES: usize = 120;
    const FINAL_SEQ: u64 = (N + WRITES) as u64;

    with_watchdog("chaos_follower_sigkill", Duration::from_secs(180), || {
        let cluster = ClusterHarness::new("chaos");
        let data = generate(
            Distribution::GaussianMixture { clusters: 10, spread: 0.02, scale: 10.0 },
            N,
            D,
            42,
        );

        let common = [
            "--mode",
            "dynamic",
            "--n",
            "300",
            "--dim",
            "8",
            "--seed",
            "42",
            "--max-delay-us",
            "500",
        ];
        let primary = cluster.spawn(
            NodeSpec::new("primary")
                .args(&common)
                .args(&["--wal", cluster.wal_dir("primary").to_str().unwrap()]),
        );
        let follower = |name: &str| {
            NodeSpec::new(name)
                .args(&common)
                .args(&["--wal", cluster.wal_dir(name).to_str().unwrap()])
                .args(&["--replicate-from", &primary.addr.to_string(), "--node-name", name])
        };
        let mut f1 = cluster.spawn(follower("f1"));
        let mut f2 = cluster.spawn(follower("f2"));
        let router = cluster.spawn(NodeSpec::new("router").args(&[
            "--mode",
            "router",
            "--primary",
            &primary.addr.to_string(),
            "--replicas",
            &format!("{},{}", f1.addr, f2.addr),
            "--node-deadline-ms",
            "500",
        ]));

        // Both followers replicate the seed before load starts.
        harness::wait_for_seq(f1.addr, N as u64, Duration::from_secs(30));
        harness::wait_for_seq(f2.addr, N as u64, Duration::from_secs(30));

        // Readers: exact self-queries through the router, continuously,
        // across the kill and the restart. Zero errors tolerated.
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let failures = Arc::new(Mutex::new(Vec::<String>::new()));
        let readers: Vec<_> = (0..3)
            .map(|r| {
                let stop = Arc::clone(&stop);
                let served = Arc::clone(&served);
                let failures = Arc::clone(&failures);
                let data = data.clone();
                let addr = router.addr;
                std::thread::spawn(move || {
                    let mut client = cc_service::Client::connect(addr).expect("reader connect");
                    let mut i = r * 37;
                    while !stop.load(Ordering::Relaxed) {
                        i = (i + 1) % N;
                        let req = QueryRequest::new(data.get(i).to_vec()).k(1);
                        match client.search_result(&req) {
                            Ok(result) => {
                                assert_eq!(result.neighbors[0].id, i as u32);
                                assert_eq!(result.neighbors[0].dist, 0.0);
                                served.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                failures.lock().unwrap().push(format!("query for {i}: {e}"));
                            }
                        }
                    }
                })
            })
            .collect();

        // Writer: stream inserts through the router; SIGKILL f1 a third
        // of the way in, bring it back two thirds in.
        let mut writer = router.client();
        let mut acked = Vec::with_capacity(WRITES);
        for j in 0..WRITES {
            if j == WRITES / 3 {
                f1.kill();
                // With f1 dead, the very next queries must still be
                // answered — the router fails the leg over to f2.
                let mut probe = router.client();
                for i in 0..4 {
                    let got = probe
                        .search_result(&QueryRequest::new(data.get(i).to_vec()).k(1))
                        .expect("query during follower outage");
                    assert_eq!(got.neighbors[0].id, i as u32);
                }
            }
            if j == 2 * WRITES / 3 {
                f1 = cluster.restart(f1);
            }
            let v = novel_vector(D, j);
            let (oid, seq) = writer.insert(&v).expect("insert through router");
            assert_eq!(oid, (N + j) as u32, "oids stay dense through the outage");
            assert_eq!(seq, (N + j + 1) as u64, "seqs stay dense through the outage");
            acked.push((oid, seq, v));
        }

        // The restarted follower replays its local WAL, re-subscribes
        // from where it left off, and catches up; f2 never fell behind
        // for long.
        harness::wait_for_seq(f1.addr, FINAL_SEQ, Duration::from_secs(60));
        harness::wait_for_seq(f2.addr, FINAL_SEQ, Duration::from_secs(30));

        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            reader.join().expect("reader thread");
        }
        let failures = failures.lock().unwrap();
        assert!(failures.is_empty(), "reader errors during chaos: {failures:?}");
        assert!(served.load(Ordering::Relaxed) > 0, "readers never got a query through");

        // Read-your-writes through the router: the freshest insert,
        // pinned to its acked sequence, must come back exactly.
        let (oid, seq, v) = acked.last().unwrap();
        let got = writer
            .search_result(&QueryRequest::new(v.clone()).k(1).min_seq(*seq))
            .expect("min_seq query through router");
        assert_eq!(got.neighbors[0].id, *oid);
        assert_eq!(got.neighbors[0].dist, 0.0);

        // The router counted its fanout and the legs that failed while
        // f1 was down; the primary's lag gauge names both replicas.
        let metrics = router.client().metrics_text().expect("router metrics");
        assert!(metric_value(&metrics, "cc_router_fanout_total") > 0.0);
        assert!(
            metric_value(&metrics, "cc_router_node_errors_total") > 0.0,
            "no leg failures recorded despite a SIGKILLed follower"
        );
        let primary_metrics = primary.client().metrics_text().expect("primary metrics");
        for name in ["f1", "f2"] {
            assert!(
                primary_metrics.contains(&format!("cc_replica_lag_seq{{replica=\"{name}\"}}")),
                "primary lag gauge missing {name}:\n{primary_metrics}"
            );
        }

        // Cold reopen, zero acked-write loss: SIGKILL f2 and bring it
        // back — its *own* WAL replay must already hold every write the
        // router ever acknowledged, before any further replication.
        f2.kill();
        let f2 = cluster.restart(f2);
        harness::wait_for_seq(f2.addr, FINAL_SEQ, Duration::from_secs(30));
        let mut direct = f2.client();
        for (oid, seq, v) in acked.iter().step_by(10) {
            let got = direct
                .search_result(&QueryRequest::new(v.clone()).k(1).min_seq(*seq))
                .expect("acked write on cold-reopened follower");
            assert_eq!(got.neighbors[0].id, *oid, "acked write lost across SIGKILL");
            assert_eq!(got.neighbors[0].dist, 0.0);
        }

        // Tear down: router first (it holds no state), then the
        // followers, then the primary.
        for mut node in [router, f1, f2, primary] {
            node.shutdown();
        }
    });
}

/// Read-your-writes against a *deliberately* lagged follower: with the
/// `CC_REPL_STALL_APPLY_MS` failpoint stalling every batch apply, a
/// direct `min_seq` query on the follower must refuse with `Stale`
/// (never serve older data as if it were fresh), the same query through
/// the router must succeed by failing over, direct writes to the
/// follower must be refused, and once the stall drains the follower
/// serves the pinned read itself.
#[test]
fn read_your_writes_never_served_from_lagged_follower() {
    const N: usize = 64;
    const D: usize = 8;

    with_watchdog("read_your_writes_lag", Duration::from_secs(120), || {
        let cluster = ClusterHarness::new("ryw");
        let common = [
            "--mode",
            "dynamic",
            "--n",
            "64",
            "--dim",
            "8",
            "--seed",
            "42",
            "--max-delay-us",
            "500",
        ];
        let primary = cluster.spawn(
            NodeSpec::new("primary")
                .args(&common)
                .args(&["--wal", cluster.wal_dir("primary").to_str().unwrap()]),
        );
        // The failpoint sleeps before *every* non-empty batch apply, so
        // the follower sits at seq 0 for several seconds after
        // subscribing — long enough to observe staleness reliably.
        let lagger = cluster.spawn(
            NodeSpec::new("lagger")
                .args(&common)
                .args(&["--wal", cluster.wal_dir("lagger").to_str().unwrap()])
                .args(&["--replicate-from", &primary.addr.to_string(), "--node-name", "lagger"])
                .env("CC_REPL_STALL_APPLY_MS", "4000"),
        );
        let router = cluster.spawn(NodeSpec::new("router").args(&[
            "--mode",
            "router",
            "--primary",
            &primary.addr.to_string(),
            "--replicas",
            &lagger.addr.to_string(),
            "--node-deadline-ms",
            "500",
        ]));

        // Insert through the router; the ack carries the WAL sequence
        // that defines "my writes" for the read-your-writes check.
        let v = novel_vector(D, 0);
        let (oid, seq) = router.client().insert(&v).expect("insert through router");
        assert_eq!(seq, (N + 1) as u64);

        // Directly on the stalled follower: the pinned read must refuse
        // as Stale — it has applied nothing yet.
        let mut direct = lagger.client();
        let pinned = QueryRequest::new(v.clone()).k(1).min_seq(seq);
        match direct.search(&pinned).expect("stale probe") {
            SearchOutcome::Stale => {}
            other => panic!("lagged follower served a pinned read: {other:?}"),
        }
        // ...while an unpinned read is fine serving the older snapshot
        // (which is empty here — no result rows, but no refusal).
        direct
            .search(&QueryRequest::new(v.clone()).k(1))
            .expect("unpinned reads always admissible");

        // Direct writes to a follower are refused: the replication
        // stream is the only writer.
        assert!(direct.insert(&novel_vector(D, 1)).is_err(), "follower accepted a direct write");

        // The same pinned read through the router succeeds: the stale
        // leg fails over to the primary, which is at `seq` by
        // definition.
        let got = router
            .client()
            .search_result(&pinned)
            .expect("router serves the pinned read via failover");
        assert_eq!(got.neighbors[0].id, oid);
        assert_eq!(got.neighbors[0].dist, 0.0);
        let metrics = router.client().metrics_text().expect("router metrics");
        assert!(
            metric_value(&metrics, "cc_router_failover_total") > 0.0,
            "pinned read did not fail over:\n{metrics}"
        );

        // Once the stall drains and the follower applies the stream, it
        // serves the pinned read itself.
        harness::wait_for_seq(lagger.addr, seq, Duration::from_secs(60));
        let got = direct.search_result(&pinned).expect("caught-up follower serves pinned read");
        assert_eq!(got.neighbors[0].id, oid);
        assert_eq!(got.neighbors[0].dist, 0.0);

        for mut node in [router, lagger, primary] {
            node.shutdown();
        }
    });
}

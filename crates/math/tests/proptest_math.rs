//! Property-based tests for the numerics substrate.

use cc_math::erf::{erf, erfc};
use cc_math::gaussian::{normal_cdf, normal_pdf, normal_quantile};
use cc_math::hoeffding::{derive_params, satisfies_bounds};
use cc_math::stats::{percentile_sorted, Summary, Welford};
use proptest::prelude::*;

proptest! {
    #[test]
    fn erf_bounded_and_odd(x in -20.0f64..20.0) {
        let e = erf(x);
        prop_assert!((-1.0..=1.0).contains(&e));
        prop_assert!((e + erf(-x)).abs() < 1e-14);
        prop_assert!((e + erfc(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erf_monotone(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(erf(lo) <= erf(hi) + 1e-15);
    }

    #[test]
    fn cdf_quantile_roundtrip(p in 1e-9f64..1.0) {
        prop_assume!(p < 1.0 - 1e-9);
        let x = normal_quantile(p);
        prop_assert!((normal_cdf(x) - p).abs() < 1e-9 * (1.0 + 1.0 / p.min(1.0 - p)).min(1e3));
    }

    #[test]
    fn pdf_positive_and_bounded(x in -50.0f64..50.0) {
        let d = normal_pdf(x);
        prop_assert!((0.0..=0.4).contains(&d));
    }

    #[test]
    fn derive_params_feasible_for_any_gap(
        p2 in 0.05f64..0.9,
        gap in 0.02f64..0.4,
        delta in 0.01f64..0.49,
        beta in 1e-6f64..0.5,
    ) {
        let p1 = (p2 + gap).min(0.99);
        prop_assume!(p1 > p2 && p1 < 1.0);
        let d = derive_params(p1, p2, delta, beta);
        prop_assert!(d.l >= 1 && d.l <= d.m);
        prop_assert!(satisfies_bounds(p1, p2, delta, beta, d.m, d.l));
        // Success probability formula.
        prop_assert!((d.success_probability() - (0.5 - delta)).abs() < 1e-15);
    }

    #[test]
    fn welford_merge_any_split(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut whole = Welford::new();
        for &x in &xs { whole.push(x); }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] { a.push(x); }
        for &x in &xs[split..] { b.push(x); }
        a.merge(&b);
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        prop_assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn percentile_within_range(
        mut xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
        p in 0.0f64..100.0,
    ) {
        xs.sort_by(|a, b| a.total_cmp(b));
        let v = percentile_sorted(&xs, p);
        prop_assert!(v >= xs[0] - 1e-12 && v <= xs[xs.len() - 1] + 1e-12);
    }

    #[test]
    fn summary_invariants(xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let s = Summary::of(&xs).unwrap();
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.median <= s.p95 + 1e-12 && s.p95 <= s.max + 1e-12);
        prop_assert!(s.mean >= s.min - 1e-12 && s.mean <= s.max + 1e-12);
        prop_assert_eq!(s.n, xs.len());
    }
}

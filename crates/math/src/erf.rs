//! Error function `erf` and complementary error function `erfc`.
//!
//! Implemented from scratch with the classical two-regime scheme:
//!
//! * `|x| < 2.5`: the Maclaurin series
//!   `erf(x) = (2/√π) Σ_{n≥0} (−1)^n x^{2n+1} / (n! (2n+1))`,
//!   which converges rapidly in this range with `f64` arithmetic;
//! * `|x| ≥ 2.5`: the continued-fraction expansion of `erfc` evaluated with
//!   the modified Lentz algorithm,
//!   `erfc(x) = (e^{−x²}/√π) · 1/(x + 1/(2x + 2/(x + 3/(2x + …))))`.
//!
//! Both regimes agree to better than `1e-14` at the crossover, which is far
//! tighter than anything the LSH parameter derivation needs.

/// `2/√π`, the normalization constant of the error function.
const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;

/// Maximum number of series / continued-fraction iterations before we give
/// up and return the best estimate (never reached for finite inputs).
const MAX_ITER: usize = 400;

/// Convergence tolerance relative to the running sum.
const EPS: f64 = 1e-17;

/// The error function `erf(x) = (2/√π) ∫₀ˣ e^{−t²} dt`.
///
/// Accurate to roughly machine precision over the whole real line.
/// `erf(−x) = −erf(x)`, `erf(±∞) = ±1`, `erf(NaN) = NaN`.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    if ax < 2.5 {
        erf_series(x)
    } else {
        let e = 1.0 - erfc_cf(ax);
        if x < 0.0 {
            -e
        } else {
            e
        }
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Evaluated directly by continued fraction for large positive `x` so it
/// does not lose precision to cancellation: `erfc(10)` is about `2.1e-45`
/// and comes out with full relative accuracy.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 2.5 {
        erfc_cf(x)
    } else if x <= -2.5 {
        2.0 - erfc_cf(-x)
    } else {
        1.0 - erf_series(x)
    }
}

/// Maclaurin series for `erf`, valid (fast-converging) for `|x| < ~3`.
fn erf_series(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let x2 = x * x;
    let mut term = x; // x^{2n+1} / n!
    let mut sum = x;
    for n in 1..MAX_ITER {
        term *= -x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        sum += contrib;
        if contrib.abs() < EPS * sum.abs() {
            break;
        }
    }
    TWO_OVER_SQRT_PI * sum
}

/// Continued fraction for `erfc(x)`, `x ≥ ~2`, via modified Lentz.
///
/// `erfc(x) = e^{−x²}/(x√π) · [ 1/(1 + a₁/(1 + a₂/(1 + …))) ]` with
/// `aₙ = n/(2x²)` after normalizing the classical CF.
fn erfc_cf(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    if x.is_infinite() {
        return 0.0;
    }
    // Modified Lentz on the CF  x + 1/(2x + 2/(x + 3/(2x + ...)))
    // written as  b0 + a1/(b1 + a2/(b2 + ...)) with
    //   b0 = x, a_n = n/2 * ... — easier: use the standard form
    //   erfc(x) = e^{-x^2}/sqrt(pi) * 1/(x + 1/(2x + 2/(x + 3/(2x + ...))))
    // i.e. a_1 = 1, a_n = (n-1) for n >= 2 alternating denominators x, 2x.
    let tiny = 1e-300;
    let mut f = x; // b0
    if f == 0.0 {
        f = tiny;
    }
    let mut c = f;
    let mut d = 0.0_f64;
    for n in 1..MAX_ITER {
        let a = n as f64 / 2.0; // a_n in the equivalent CF with constant b = x
                                // The CF  x + (1/2)/(x + 1/(x + (3/2)/(x + 2/(x + ...))))
                                // has a_n = n/2 and b_n = x for all n; it equals the classic one.
        let b = x;
        d = b + a * d;
        if d == 0.0 {
            d = tiny;
        }
        c = b + a / c;
        if c == 0.0 {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / (f * core::f64::consts::PI.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath (50 digits), truncated.
    const REF: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.112_462_916_018_284_89),
        (0.5, 0.520_499_877_813_046_5),
        (1.0, 0.842_700_792_949_714_9),
        (1.5, 0.966_105_146_475_310_7),
        (2.0, 0.995_322_265_018_952_7),
        (2.5, 0.999_593_047_982_555),
        (3.0, 0.999_977_909_503_001_4),
        (4.0, 0.999_999_984_582_742_1),
    ];

    #[test]
    fn erf_matches_reference() {
        for &(x, want) in REF {
            let got = erf(x);
            assert!((got - want).abs() < 1e-13, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erf_is_odd() {
        for i in 0..200 {
            let x = -5.0 + i as f64 * 0.05;
            assert!((erf(x) + erf(-x)).abs() < 1e-15, "erf not odd at {x}");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for i in 0..120 {
            let x = -3.0 + i as f64 * 0.05;
            let s = erf(x) + erfc(x);
            assert!((s - 1.0).abs() < 1e-13, "erf+erfc != 1 at {x}: {s}");
        }
    }

    #[test]
    fn erfc_large_tail_has_relative_accuracy() {
        // erfc(5) = 1.5374597944280348501883434853e-12 (mpmath)
        let got = erfc(5.0);
        let want = 1.537_459_794_428_035e-12;
        assert!(((got - want) / want).abs() < 1e-10, "erfc(5) = {got:e}, want {want:e}");
        // erfc(10) = 2.0884875837625447570007862949e-45
        let got = erfc(10.0);
        let want = 2.088_487_583_762_544_7e-45;
        assert!(((got - want) / want).abs() < 1e-9);
    }

    #[test]
    fn limits_and_nan() {
        assert_eq!(erf(f64::INFINITY), 1.0);
        assert_eq!(erf(f64::NEG_INFINITY), -1.0);
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
        assert_eq!(erfc(f64::INFINITY), 0.0);
        assert!((erfc(f64::NEG_INFINITY) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn monotone_increasing() {
        let mut prev = erf(-6.0);
        for i in 1..=240 {
            let x = -6.0 + i as f64 * 0.05;
            let v = erf(x);
            assert!(v >= prev, "erf not monotone at {x}");
            prev = v;
        }
    }
}

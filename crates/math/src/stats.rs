//! Summary statistics for the experiment harness.
//!
//! Every experiment in the reproduction reports aggregates over 100
//! queries (mean ratio, mean I/O, percentile query times, …). This module
//! provides a small, allocation-conscious toolkit: a streaming
//! [`Welford`] accumulator for mean/variance, and a [`Summary`] built from
//! a sample with exact order statistics.

/// Streaming mean / variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; O(1) memory.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations folded in so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; `NaN` for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        self.mean += d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
    }
}

/// Order-statistics summary of a finite sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased); 0 for n < 2.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty slice.
    pub fn of(sample: &[f64]) -> Option<Summary> {
        if sample.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = sample.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut w = Welford::new();
        for &x in &sorted {
            w.push(x);
        }
        Some(Summary {
            n: sorted.len(),
            mean: w.mean(),
            std_dev: if sorted.len() < 2 { 0.0 } else { w.std_dev() },
            min: sorted[0],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            max: *sorted.last().unwrap(),
        })
    }
}

/// Percentile with linear interpolation over an **already sorted** sample.
///
/// `p` is in `[0, 100]`. Uses the common "exclusive of endpoints only at
/// the ends" definition: rank `r = p/100 · (n−1)`, interpolate between
/// `⌊r⌋` and `⌈r⌉`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let r = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = r.floor() as usize;
    let hi = r.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = r - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Arithmetic mean of a slice; `NaN` when empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // naive unbiased variance = 32/7
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert!(w.variance().is_nan());
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert!(w.variance().is_nan());
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..337] {
            a.push(x);
        }
        for &x in &xs[337..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-8);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn percentile_interpolates() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&s, 0.0), 1.0);
        assert_eq!(percentile_sorted(&s, 100.0), 4.0);
        assert!((percentile_sorted(&s, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile_sorted(&s, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "percentile of empty")]
    fn percentile_empty_panics() {
        percentile_sorted(&[], 50.0);
    }
}

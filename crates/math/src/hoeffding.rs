//! The C2LSH parameter solver.
//!
//! Given the per-function collision probabilities `p1` (points within the
//! search radius `R`) and `p2` (points beyond `cR`), the failure budget `δ`
//! and the false-positive budget `β`, C2LSH picks a collision-threshold
//! percentage `α ∈ (p2, p1)` and a number of hash functions `m` such that
//! two Hoeffding bounds hold simultaneously:
//!
//! * **(P1)** a point within `R` fails to reach `l = ⌈αm⌉` collisions with
//!   probability `≤ exp(−2m(p1 − α)²) ≤ δ`, and
//! * **(P2)** the number of far points (beyond `cR`) reaching `l`
//!   collisions exceeds `βn` with probability `≤ exp(−2m(α − p2)²)·n/(βn)
//!   ≤ 1/2`, which Hoeffding + Markov give when
//!   `exp(−2m(α − p2)²) ≤ β/2`.
//!
//! The smallest `m` satisfying both is minimized when the two constraints
//! are tight simultaneously, yielding the closed form used by the paper:
//!
//! ```text
//! z  = sqrt( ln(2/β) / ln(1/δ) )
//! α* = (z·p1 + p2) / (1 + z)
//! m  = ⌈ ln(1/δ) / (2 (p1 − α*)²) ⌉   ( = ⌈ ln(2/β) / (2 (α*−p2)²) ⌉ )
//! l  = ⌈ α* · m ⌉
//! ```
//!
//! and an overall success probability of at least `1/2 − δ` per
//! `(R, c)`-NN instance (paper default `δ = 1/e` ⇒ `≥ 1/2 − 1/e`).

/// Parameters derived for a C2LSH index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedParams {
    /// Collision probability at distance `R` (near points).
    pub p1: f64,
    /// Collision probability at distance `cR` (far points).
    pub p2: f64,
    /// Optimal collision-threshold percentage `α* ∈ (p2, p1)`.
    pub alpha: f64,
    /// Number of independent LSH functions / hash tables.
    pub m: usize,
    /// Collision threshold `l = ⌈α*·m⌉`: an object is *frequent* (a
    /// candidate) once it collides with the query in `l` tables.
    pub l: usize,
    /// Failure budget `δ` for missing a near point.
    pub delta: f64,
    /// False-positive budget: at most `β·n` far points become frequent
    /// (with probability ≥ 1/2).
    pub beta: f64,
}

impl DerivedParams {
    /// Lower bound on the per-query success probability guaranteed by the
    /// two Hoeffding constraints: `1/2 − δ`.
    pub fn success_probability(&self) -> f64 {
        0.5 - self.delta
    }
}

/// Derive `(α*, m, l)` from `(p1, p2, δ, β)` exactly as the paper does.
///
/// # Panics
/// Panics unless `0 < p2 < p1 < 1`, `0 < δ < 1/2` and `0 < β < 1`; these
/// are structural requirements of the scheme, not data-dependent
/// conditions, so violating them is a programming error.
pub fn derive_params(p1: f64, p2: f64, delta: f64, beta: f64) -> DerivedParams {
    assert!(0.0 < p2 && p2 < p1 && p1 < 1.0, "need 0 < p2 < p1 < 1, got p1={p1}, p2={p2}");
    assert!(0.0 < delta && delta < 0.5, "need 0 < delta < 1/2, got {delta}");
    assert!(0.0 < beta && beta < 1.0, "need 0 < beta < 1, got {beta}");

    let ln_inv_delta = (1.0 / delta).ln();
    let ln_two_over_beta = (2.0 / beta).ln();
    let z = (ln_two_over_beta / ln_inv_delta).sqrt();
    let alpha = (z * p1 + p2) / (1.0 + z);
    debug_assert!(alpha > p2 && alpha < p1);

    let m1 = ln_inv_delta / (2.0 * (p1 - alpha).powi(2));
    let m2 = ln_two_over_beta / (2.0 * (alpha - p2).powi(2));
    let m_real = m1.max(m2);

    // The real-valued optimum assumes l = α·m exactly; rounding l up to an
    // integer weakens the miss bound (P1). Take the first integer m (from
    // the real optimum upward) for which some integer threshold l makes
    // both bounds hold — in practice this adds at most a handful of tables.
    let mut m = m_real.ceil() as usize;
    loop {
        let l_pref = (alpha * m as f64).ceil() as usize;
        // Prefer the threshold closest to α*·m, then search outward.
        let candidates = (0..=m).map(|off| {
            if off % 2 == 0 {
                l_pref + off / 2
            } else {
                l_pref.saturating_sub(off / 2 + 1)
            }
        });
        let mut found = None;
        for l in candidates {
            if l >= 1 && l <= m && satisfies_bounds(p1, p2, delta, beta, m, l) {
                found = Some(l);
                break;
            }
        }
        if let Some(l) = found {
            return DerivedParams { p1, p2, alpha, m, l, delta, beta };
        }
        m += 1;
        assert!(
            m < 100 * m_real.ceil() as usize + 1000,
            "parameter search diverged (p1={p1}, p2={p2})"
        );
    }
}

/// Check whether a given `(m, l)` pair satisfies both Hoeffding
/// constraints for `(p1, p2, δ, β)` — used by tests and by the ablation
/// experiments that sweep `m` away from the derived optimum.
pub fn satisfies_bounds(p1: f64, p2: f64, delta: f64, beta: f64, m: usize, l: usize) -> bool {
    let alpha = l as f64 / m as f64;
    if alpha <= p2 || alpha >= p1 {
        return false;
    }
    let miss = (-2.0 * m as f64 * (p1 - alpha).powi(2)).exp();
    let fp = (-2.0 * m as f64 * (alpha - p2).powi(2)).exp();
    miss <= delta && fp <= beta / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const DELTA: f64 = 0.367_879_441_171_442_33; // 1/e

    #[test]
    fn derived_params_satisfy_both_bounds() {
        // Realistic values: c = 2, w = 2.184 gives p1 ≈ 0.853, p2 ≈ 0.494.
        let (p1, p2) = (0.8534, 0.4944);
        for beta in [100.0 / 50_000.0, 100.0 / 1_000_000.0, 0.01] {
            let dp = derive_params(p1, p2, DELTA, beta);
            assert!(
                satisfies_bounds(p1, p2, DELTA, beta, dp.m, dp.l),
                "derived (m={}, l={}) violates bounds at beta={beta}",
                dp.m,
                dp.l
            );
            assert!(dp.alpha > p2 && dp.alpha < p1);
            assert!(dp.l <= dp.m);
            assert!(dp.l >= 1);
        }
    }

    #[test]
    fn m_is_near_minimal() {
        // One fewer hash function with the best integer threshold should
        // fail at least one bound (m is the ceiling of the real optimum,
        // so allow slack of 1 introduced by integer rounding of l).
        let (p1, p2) = (0.8534, 0.4944);
        let beta = 100.0 / 1_000_000.0;
        let dp = derive_params(p1, p2, DELTA, beta);
        let m_small = dp.m - 2;
        let any_ok = (1..=m_small).any(|l| satisfies_bounds(p1, p2, DELTA, beta, m_small, l));
        assert!(!any_ok, "m = {} is not minimal: {} also works", dp.m, m_small);
    }

    #[test]
    fn m_grows_logarithmically_with_n() {
        // beta = 100/n, so m should grow like ln(n).
        let (p1, p2) = (0.8534, 0.4944);
        let m_small = derive_params(p1, p2, DELTA, 100.0 / 10_000.0).m;
        let m_big = derive_params(p1, p2, DELTA, 100.0 / 10_000_000.0).m;
        assert!(m_big > m_small);
        // Tripling ln(n/100) should roughly triple... in fact m ~ O(ln(2/β));
        // just sanity-check sub-linear growth: n grew 1000×, m must not.
        assert!(m_big < m_small * 10, "m grew too fast: {m_small} -> {m_big}");
    }

    #[test]
    fn closer_probabilities_need_more_functions() {
        let beta = 0.001;
        let wide = derive_params(0.9, 0.3, DELTA, beta).m;
        let narrow = derive_params(0.9, 0.8, DELTA, beta).m;
        assert!(narrow > wide, "narrow gap {narrow} should exceed wide gap {wide}");
    }

    #[test]
    #[should_panic(expected = "need 0 < p2 < p1 < 1")]
    fn rejects_inverted_probabilities() {
        derive_params(0.4, 0.6, DELTA, 0.01);
    }

    #[test]
    #[should_panic(expected = "need 0 < delta < 1/2")]
    fn rejects_bad_delta() {
        derive_params(0.8, 0.4, 0.7, 0.01);
    }

    #[test]
    fn success_probability_is_half_minus_delta() {
        let dp = derive_params(0.8, 0.4, DELTA, 0.01);
        assert!((dp.success_probability() - (0.5 - DELTA)).abs() < 1e-15);
    }
}

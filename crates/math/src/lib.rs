//! # cc-math — numerics substrate for the C2LSH reproduction
//!
//! C2LSH ("Locality-Sensitive Hashing Scheme Based on Dynamic Collision
//! Counting", SIGMOD 2012) derives *all* of its index parameters from first
//! principles: the number of hash tables `m`, the collision threshold
//! `l = ⌈α·m⌉` and the threshold percentage `α` are computed from the
//! collision probabilities `p1 = p(1, w)` and `p2 = p(c, w)` of the p-stable
//! LSH family via Hoeffding bounds. Those probabilities in turn require the
//! standard normal CDF, hence the error function.
//!
//! This crate provides everything that machinery needs, implemented from
//! scratch (no external numerics dependency):
//!
//! * [`mod@erf`] — error function and friends, accurate to ~1e-15,
//! * [`gaussian`] — standard normal PDF / CDF / quantile,
//! * [`pstable`] — collision probability `p(s, w)` of the 2-stable
//!   (Gaussian) LSH family and the hash quality `ρ`,
//! * [`hoeffding`] — the closed-form C2LSH parameter solver
//!   (`α*`, `m`, `l`),
//! * [`stats`] — summary statistics used by the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod erf;
pub mod gaussian;
pub mod hoeffding;
pub mod pstable;
pub mod stats;

pub use erf::{erf, erfc};
pub use gaussian::{normal_cdf, normal_pdf, normal_quantile};
pub use hoeffding::{derive_params, DerivedParams};
pub use pstable::{collision_probability, rho};

//! Collision probability of the 2-stable (Gaussian) LSH family.
//!
//! C2LSH uses the p-stable family of Datar et al. (SoCG 2004):
//! `h_{a,b}(o) = ⌊(a·o + b)/w⌋` with `a ~ N(0,1)^d`, `b ~ U[0, w)`.
//! For two points at Euclidean distance `s`, the projection difference
//! `a·(o − q)` is distributed `N(0, s²)`, and the probability that both
//! points land in the same width-`w` bucket is
//!
//! ```text
//! p(s, w) = 1 − 2Φ(−w/s) − (2 / (√(2π) · (w/s))) · (1 − e^{−(w/s)²/2})
//! ```
//!
//! with `p(0, w) = 1` and `p(s, w) → 0` monotonically as `s → ∞`.
//!
//! The hash quality `ρ = ln(1/p1)/ln(1/p2)` with `p1 = p(1, w)`,
//! `p2 = p(c, w)` drives the theoretical complexity of every LSH scheme
//! compared in the paper.

use crate::gaussian::{normal_cdf, SQRT_2PI};

/// Collision probability `p(s, w)` of a single p-stable hash function for
/// two points at Euclidean distance `s` and bucket width `w`.
///
/// # Panics
/// Panics if `s < 0` or `w <= 0` (callers always have a concrete geometry
/// in hand; negative distances indicate a logic error upstream).
pub fn collision_probability(s: f64, w: f64) -> f64 {
    assert!(s >= 0.0, "distance must be non-negative, got {s}");
    assert!(w > 0.0, "bucket width must be positive, got {w}");
    if s == 0.0 {
        return 1.0;
    }
    let t = w / s;
    let p = 1.0 - 2.0 * normal_cdf(-t) - 2.0 / (SQRT_2PI * t) * (1.0 - (-t * t / 2.0).exp());
    // Clamp tiny negative values produced by cancellation for huge s.
    p.clamp(0.0, 1.0)
}

/// Hash quality `ρ(c, w) = ln(1/p1) / ln(1/p2)` where `p1 = p(1, w)` and
/// `p2 = p(c, w)`. Smaller is better; `ρ < 1/c` does not hold for the
/// p-stable family but `ρ ≈ 1/c` for well-chosen `w`.
pub fn rho(c: f64, w: f64) -> f64 {
    assert!(c > 1.0, "approximation ratio must exceed 1, got {c}");
    let p1 = collision_probability(1.0, w);
    let p2 = collision_probability(c, w);
    (1.0 / p1).ln() / (1.0 / p2).ln()
}

/// Numerically locate the bucket width minimizing `ρ(c, ·)` by golden
/// section search on `w ∈ [lo, hi]`.
///
/// The paper and its follow-ups fix `w` near this optimum (≈ 2.18 for
/// `c = 2`, ≈ 2.72 for `c = 3`); the experiments expose `w` as a knob and
/// use this routine to justify the default.
pub fn optimal_width(c: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi > lo);
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    let mut x1 = b - phi * (b - a);
    let mut x2 = a + phi * (b - a);
    let mut f1 = rho(c, x1);
    let mut f2 = rho(c, x2);
    for _ in 0..200 {
        if f1 < f2 {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - phi * (b - a);
            f1 = rho(c, x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + phi * (b - a);
            f2 = rho(c, x2);
        }
        if b - a < 1e-10 {
            break;
        }
    }
    (a + b) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_at_zero_distance_is_one() {
        assert_eq!(collision_probability(0.0, 1.0), 1.0);
        assert_eq!(collision_probability(0.0, 100.0), 1.0);
    }

    #[test]
    fn p_decreases_with_distance() {
        let w = 2.184;
        let mut prev = 1.0;
        for i in 1..200 {
            let s = i as f64 * 0.1;
            let p = collision_probability(s, w);
            assert!(p < prev, "p(s,w) not strictly decreasing at s={s}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn p_increases_with_width() {
        let s = 1.0;
        let mut prev = 0.0;
        for i in 1..100 {
            let w = i as f64 * 0.25;
            let p = collision_probability(s, w);
            assert!(p > prev, "p(s,w) not increasing in w at w={w}");
            prev = p;
        }
    }

    #[test]
    fn closed_form_matches_independent_integration() {
        // Cross-check the closed form against direct numerical integration
        // of the defining integral  p(s,w) = ∫_0^w f_{|Z|}(t)·(1 − t/w) dt
        // with Z ~ N(0, s²) — an independent derivation path.
        let cases = [(1.0, 4.0), (2.0, 4.0), (1.0, 2.184), (2.184, 2.184), (3.0, 2.184)];
        for (s, w) in cases {
            let p_closed = collision_probability(s, w);
            let p_num = numeric_p(s, w);
            assert!(
                (p_closed - p_num).abs() < 1e-9,
                "closed {p_closed} vs numeric {p_num} at s={s} w={w}"
            );
        }
    }

    /// Independent numerical evaluation of the collision probability:
    /// `p(s,w) = ∫_0^w f_{|Z|}(t) (1 − t/w) dt`, `Z ~ N(0, s²)`,
    /// by Simpson's rule on a fine grid.
    fn numeric_p(s: f64, w: f64) -> f64 {
        let n = 100_000; // even
        let h = w / n as f64;
        let f = |t: f64| {
            let z = t / s;
            let dens = 2.0 * (-0.5 * z * z).exp() / (SQRT_2PI * s);
            dens * (1.0 - t / w)
        };
        let mut acc = f(0.0) + f(w);
        for i in 1..n {
            let t = i as f64 * h;
            acc += f(t) * if i % 2 == 1 { 4.0 } else { 2.0 };
        }
        acc * h / 3.0
    }

    #[test]
    fn rho_is_below_one_and_improves_with_c() {
        let w = 2.184;
        let r2 = rho(2.0, w);
        let r3 = rho(3.0, w);
        assert!(r2 < 1.0 && r2 > 0.0);
        assert!(r3 < r2, "rho should fall as c grows: {r3} vs {r2}");
        // Near the optimum, rho(2, w) should be in the ballpark of 1/c.
        assert!((r2 - 0.5).abs() < 0.1, "rho(2, 2.184) = {r2}");
    }

    #[test]
    fn optimal_width_is_interior_and_stable() {
        let w2 = optimal_width(2.0, 0.5, 10.0);
        assert!(w2 > 1.0 && w2 < 4.0, "w*(c=2) = {w2}");
        // Perturbing in either direction should not lower rho.
        let r = rho(2.0, w2);
        assert!(rho(2.0, w2 * 1.05) >= r - 1e-9);
        assert!(rho(2.0, w2 * 0.95) >= r - 1e-9);
    }
}

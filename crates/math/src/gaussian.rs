//! Standard normal distribution: PDF, CDF and quantile (inverse CDF).
//!
//! The CDF is expressed through [`crate::erfc`] to stay accurate deep in
//! the tails; the quantile uses Peter Acklam's rational approximation
//! refined with one Halley step, giving ~1e-15 relative accuracy — more
//! than enough for deriving LSH parameters and for the statistical checks
//! in the experiment harness.

use crate::erf::erfc;

/// `√(2π)`.
pub const SQRT_2PI: f64 = 2.506_628_274_631_000_7;

const SQRT_2: f64 = core::f64::consts::SQRT_2;

/// Probability density function of `N(0, 1)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / SQRT_2PI
}

/// Cumulative distribution function `Φ(x)` of `N(0, 1)`.
///
/// Computed as `Φ(x) = erfc(−x/√2)/2`, which keeps full relative accuracy
/// for very negative `x` (e.g. `Φ(−10) ≈ 7.6e-24`).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Upper tail `Q(x) = 1 − Φ(x) = Φ(−x)`.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / SQRT_2)
}

/// Quantile function `Φ⁻¹(p)` of `N(0, 1)` for `p ∈ (0, 1)`.
///
/// Returns `−∞` for `p = 0`, `+∞` for `p = 1` and `NaN` outside `[0, 1]`.
pub fn normal_quantile(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    let x = acklam(p);
    // One Halley refinement: x' = x - r/(1 - x r / 2) with r = (Φ(x)-p)/φ(x).
    let e = normal_cdf(x) - p;
    let u = e / normal_pdf(x);
    x - u / (1.0 + x * u / 2.0)
}

/// Acklam's rational approximation to the normal quantile (~1.15e-9 rel.).
fn acklam(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_values() {
        // mpmath reference values.
        let cases = [
            (0.0, 0.5),
            (1.0, 0.841_344_746_068_542_9),
            (-1.0, 0.158_655_253_931_457_05),
            (1.959_963_984_540_054, 0.975),
            (2.575_829_303_548_901, 0.995),
            (-3.0, 1.349_898_031_630_094_6e-3),
        ];
        for (x, want) in cases {
            let got = normal_cdf(x);
            assert!((got - want).abs() < 1e-12, "Phi({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn deep_tail_relative_accuracy() {
        // Phi(-10) = 7.619853024160526065973343...e-24
        let got = normal_cdf(-10.0);
        let want = 7.619_853_024_160_526e-24;
        assert!(((got - want) / want).abs() < 1e-9, "got {got:e}");
    }

    #[test]
    fn pdf_symmetry_and_peak() {
        assert!((normal_pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-15);
        for i in 0..50 {
            let x = i as f64 * 0.1;
            assert!((normal_pdf(x) - normal_pdf(-x)).abs() < 1e-16);
        }
    }

    #[test]
    fn quantile_round_trips_cdf() {
        for i in 1..999 {
            let p = i as f64 / 1000.0;
            let x = normal_quantile(p);
            let back = normal_cdf(x);
            assert!((back - p).abs() < 1e-12, "p={p}: x={x}, back={back}");
        }
    }

    #[test]
    fn quantile_extreme_probabilities() {
        let x = normal_quantile(1e-12);
        assert!((normal_cdf(x) - 1e-12).abs() / 1e-12 < 1e-6);
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
        assert!(normal_quantile(-0.1).is_nan());
        assert!(normal_quantile(1.1).is_nan());
    }

    #[test]
    fn sf_is_one_minus_cdf() {
        for i in -40..=40 {
            let x = i as f64 * 0.1;
            assert!((normal_sf(x) + normal_cdf(x) - 1.0).abs() < 1e-13);
        }
    }
}

//! Property-based model tests: the B+-tree against `BTreeMap`-style
//! reference semantics, and the bucket file against plain slices.

use cc_storage::bptree::BPlusTree;
use cc_storage::bucket_file::BucketFile;
use cc_storage::pagefile::PageFile;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bptree_insert_matches_sorted_model(
        keys in proptest::collection::vec(-500i64..500, 0..300),
        leaf_cap in 4usize..12,
        inner_cap in 4usize..12,
    ) {
        let mut tree = BPlusTree::with_capacities(leaf_cap, inner_cap);
        let mut model: Vec<(i64, u32)> = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(k, i as u32);
            model.push((k, i as u32));
        }
        tree.validate();
        // Model: stable sort by key (multimap keeps insertion order of dups).
        model.sort_by_key(|e| e.0);
        let got = tree.range(i64::MIN, i64::MAX);
        let got_keys: Vec<i64> = got.iter().map(|e| e.0).collect();
        let want_keys: Vec<i64> = model.iter().map(|e| e.0).collect();
        prop_assert_eq!(got_keys, want_keys);
        // Value multiset per key must match.
        let mut got_sorted = got;
        got_sorted.sort_unstable();
        let mut want_sorted = model;
        want_sorted.sort_unstable();
        prop_assert_eq!(got_sorted, want_sorted);
    }

    #[test]
    fn bptree_lower_bound_matches_partition_point(
        mut keys in proptest::collection::vec(-200i64..200, 1..200),
        probes in proptest::collection::vec(-250i64..250, 1..30),
    ) {
        keys.sort_unstable();
        let pairs: Vec<(i64, u32)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let tree = BPlusTree::bulk_load_with_capacities(&pairs, 5, 5);
        tree.validate();
        for &p in &probes {
            let want = keys.partition_point(|&k| k < p);
            let cur = tree.lower_bound(p);
            match tree.get(cur) {
                Some((k, _)) => prop_assert_eq!(k, keys[want], "probe {}", p),
                None => prop_assert_eq!(want, keys.len(), "probe {}", p),
            }
        }
    }

    #[test]
    fn bptree_range_matches_filter(
        mut keys in proptest::collection::vec(-100i64..100, 0..150),
        lo in -120i64..120,
        span in 0i64..120,
    ) {
        keys.sort_unstable();
        let pairs: Vec<(i64, u32)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let tree = BPlusTree::bulk_load_with_capacities(&pairs, 4, 4);
        let hi = lo + span;
        let got: Vec<i64> = tree.range(lo, hi).iter().map(|e| e.0).collect();
        let want: Vec<i64> = keys.iter().copied().filter(|&k| (lo..hi).contains(&k)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bucket_file_lower_bound_matches_slice(
        mut buckets in proptest::collection::vec(-1000i64..1000, 0..500),
        probes in proptest::collection::vec(-1100i64..1100, 1..30),
    ) {
        buckets.sort_unstable();
        let entries: Vec<(i64, u32)> =
            buckets.iter().enumerate().map(|(i, &b)| (b, i as u32)).collect();
        let mut file = PageFile::new();
        let bf = BucketFile::build(&mut file, &entries);
        for &p in &probes {
            let want = entries.partition_point(|e| e.0 < p);
            prop_assert_eq!(bf.lower_bound(&file, p), want, "probe {}", p);
        }
    }

    #[test]
    fn bucket_file_scan_matches_slice(
        mut buckets in proptest::collection::vec(-50i64..50, 1..800),
        a in 0usize..800,
        b in 0usize..800,
    ) {
        buckets.sort_unstable();
        let entries: Vec<(i64, u32)> =
            buckets.iter().enumerate().map(|(i, &bk)| (bk, i as u32)).collect();
        let mut file = PageFile::new();
        let bf = BucketFile::build(&mut file, &entries);
        let (from, to) = {
            let x = a.min(entries.len());
            let y = b.min(entries.len());
            (x.min(y), x.max(y))
        };
        let mut got = Vec::new();
        bf.scan(&file, from, to, |bk, oid| got.push((bk, oid)));
        prop_assert_eq!(&got[..], &entries[from..to]);
    }

    #[test]
    fn cursor_walk_is_total_and_ordered(
        mut keys in proptest::collection::vec(-300i64..300, 1..200),
    ) {
        keys.sort_unstable();
        let pairs: Vec<(i64, u32)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let tree = BPlusTree::bulk_load_with_capacities(&pairs, 4, 4);
        let mut cur = tree.first();
        let mut walked = Vec::new();
        while let Some((k, _)) = tree.get(cur) {
            walked.push(k);
            cur = tree.advance(cur);
        }
        prop_assert_eq!(walked, keys);
    }
}

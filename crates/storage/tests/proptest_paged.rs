//! Property tests for the paged disk tier: posting-list codec round-trips
//! on arbitrary sorted id lists, posting-run scans against a reference
//! model, and `FailpointFile`-driven torn-page / bad-checksum recovery for
//! the on-disk page file.

use cc_storage::codec::{decode_postings, encode_postings, peek_postings};
use cc_storage::paged_bucket::PostingRunBuilder;
use cc_storage::wal::scratch_dir;
use cc_storage::{DiskPageFile, DiskPageFileWriter, FailpointFile, PinnedPool, PAGE_SIZE};
use proptest::prelude::*;

fn round_trip(ids: &[u32]) {
    let mut buf = Vec::new();
    let written = encode_postings(ids, &mut buf);
    assert_eq!(written, buf.len());
    let (count, total) = peek_postings(&buf).expect("peek");
    assert_eq!((count, total), (ids.len(), buf.len()));
    let mut out = Vec::new();
    let consumed = decode_postings(&buf, &mut out).expect("decode");
    assert_eq!(consumed, buf.len());
    assert_eq!(out, ids);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary sorted id lists (duplicates allowed, any gap profile)
    /// round-trip bit-exactly through whichever encoding the codec picks.
    #[test]
    fn codec_round_trips_sorted_lists(mut ids in proptest::collection::vec(0u32..u32::MAX, 0..400)) {
        ids.sort_unstable();
        round_trip(&ids);
    }

    /// Dense lists (small gaps — the virtual-rehashing common case) round-trip
    /// and actually compress below the plain encoding.
    #[test]
    fn codec_round_trips_dense_lists(
        start in 0u32..1_000_000,
        gaps in proptest::collection::vec(0u32..16, 64..512),
    ) {
        let mut ids = vec![start];
        for g in gaps {
            ids.push(ids.last().unwrap().saturating_add(g));
        }
        round_trip(&ids);
        let mut buf = Vec::new();
        encode_postings(&ids, &mut buf);
        prop_assert!(buf.len() < 5 + ids.len() * 4, "dense list did not compress");
    }

    /// A corrupted encoding is rejected or decodes to *some* list — never
    /// panics, never reads out of bounds.
    #[test]
    fn codec_never_panics_on_corruption(
        mut ids in proptest::collection::vec(0u32..u32::MAX, 1..100),
        byte in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        ids.sort_unstable();
        let mut buf = Vec::new();
        encode_postings(&ids, &mut buf);
        let idx = byte % buf.len();
        buf[idx] ^= 1 << bit;
        let mut out = Vec::new();
        let _ = decode_postings(&buf, &mut out);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Posting runs reproduce an in-memory reference for lower_bound and
    /// ranged scans on arbitrary (clustered) entry sets.
    #[test]
    fn posting_run_matches_reference(
        raw in proptest::collection::vec((-40i64..40, 0u32..u32::MAX), 0..3_000),
        probes in proptest::collection::vec(-50i64..50, 1..8),
        range in (0usize..3_200, 0usize..3_200),
    ) {
        let mut entries = raw;
        entries.sort_unstable();
        let dir = scratch_dir("prop_posting_run");
        let path = dir.join("run.ccpg");
        let mut w = DiskPageFileWriter::create(&path).unwrap();
        let mut b = PostingRunBuilder::new();
        for &(bucket, oid) in &entries {
            b.push(&mut w, bucket, oid).unwrap();
        }
        let run = b.finish(&mut w).unwrap();
        let file = w.finish().unwrap();
        let pool = PinnedPool::new(4);
        prop_assert_eq!(run.len(), entries.len());
        for target in probes {
            let expect = entries.partition_point(|&(b, _)| b < target);
            prop_assert_eq!(run.lower_bound(&file, &pool, target).unwrap(), expect);
        }
        let (mut from, mut to) = range;
        if from > to {
            std::mem::swap(&mut from, &mut to);
        }
        let mut seen = Vec::new();
        run.scan_while(&file, &pool, from, to, |b, o| { seen.push((b, o)); true }).unwrap();
        let clamped_to = to.min(entries.len());
        let expect: &[(i64, u32)] =
            if from >= clamped_to { &[] } else { &entries[from..clamped_to] };
        prop_assert_eq!(&seen[..], expect);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Build a small page file for fault-injection tests.
fn build_victim(tag: &str, pages: u32) -> (std::path::PathBuf, std::path::PathBuf) {
    let dir = scratch_dir(tag);
    let path = dir.join("victim.ccpg");
    let mut w = DiskPageFileWriter::create(&path).unwrap();
    for i in 0..pages {
        let payload: Vec<u8> = (0..200).map(|j| (i as u8).wrapping_add(j)).collect();
        w.append_page(&payload).unwrap();
    }
    let f = w.finish().unwrap();
    assert_eq!(f.pages(), pages);
    drop(f);
    (dir, path)
}

#[test]
fn torn_page_at_tail_is_detected_at_open() {
    let (dir, path) = build_victim("fault_torn", 4);
    let fp = FailpointFile::new(&path);
    let full = fp.size_bytes().unwrap();
    // Tear the last page mid-write: the header's page count no longer
    // matches the file length, so open must refuse.
    fp.truncate_at(full - (PAGE_SIZE as u64) / 2).unwrap();
    let err = DiskPageFile::open(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flip_in_data_page_fails_that_read_only() {
    let (dir, path) = build_victim("fault_flip", 4);
    let fp = FailpointFile::new(&path);
    // Flip one bit in the middle of data page 2's payload.
    let offset = (PAGE_SIZE as u64) * 3 + 100;
    fp.flip_bit(offset, 3).unwrap();
    let file = DiskPageFile::open(&path).unwrap();
    let mut buf = Vec::new();
    for page in [0u32, 1, 3] {
        file.read_payload(page, &mut buf).unwrap();
    }
    let err = file.read_payload(2, &mut buf).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("checksum"), "error should name the checksum: {err}");
    // The pool propagates the same error instead of caching garbage.
    let pool = PinnedPool::new(2);
    assert!(pool.get(&file, 2).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flip_in_header_is_detected_at_open() {
    let (dir, path) = build_victim("fault_header", 2);
    let fp = FailpointFile::new(&path);
    fp.flip_bit(12, 0).unwrap(); // page-count field inside the header payload
    let err = DiskPageFile::open(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("checksum"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn appended_garbage_is_detected_at_open() {
    let (dir, path) = build_victim("fault_garbage", 2);
    let fp = FailpointFile::new(&path);
    fp.append_garbage(&[0xAB; 137]).unwrap();
    let err = DiskPageFile::open(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("length"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_at_every_page_boundary_is_detected() {
    for pages_kept in 0..4u64 {
        let (dir, path) = build_victim("fault_boundary", 4);
        let fp = FailpointFile::new(&path);
        fp.truncate_at((pages_kept + 1) * PAGE_SIZE as u64).unwrap();
        // Even a clean page-boundary truncation disagrees with the header.
        let err = DiskPageFile::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Compressed sorted `(bucket, object)` posting runs over disk pages.
//!
//! The paged analogue of [`crate::bucket_file::BucketFile`]: one run holds
//! a hash table's entries sorted by `(bucket, oid)`, packed into
//! [`DiskPageFile`] pages as per-bucket *groups* of codec-compressed oid
//! lists (see [`crate::codec`]). Page payload layout:
//!
//! ```text
//! u16 group_count
//! group_count × [ i64 bucket | encoded postings ]
//! ```
//!
//! Groups never span pages; a bucket whose list outgrows one page is split
//! into continuation groups carrying the same bucket id on following
//! pages. An in-memory directory (first bucket per page + global entry
//! index per page) gives the same `lower_bound` / `scan_while` contract as
//! `BucketFile` — global *entry* indexes, ≤ 1 page read for a bound probe
//! — while the entries themselves stay compressed on disk and are fetched
//! through the [`PinnedPool`].

use std::io;

use crate::codec;
use crate::diskfile::{DiskPageFile, DiskPageFileWriter, PAYLOAD_BYTES};
use crate::pool::PinnedPool;

/// Bytes of per-page overhead (the `u16` group count).
const PAGE_HEADER: usize = 2;
/// Bytes of per-group overhead before the encoded postings (the bucket id).
const GROUP_HEADER: usize = 8;

/// Largest oid chunk emitted as one group: its *plain* encoding is
/// guaranteed to fit an empty page, so packing never gets stuck.
pub const MAX_GROUP_IDS: usize =
    (PAYLOAD_BYTES - PAGE_HEADER - GROUP_HEADER - codec::HEADER_BYTES) / 4;

/// Streaming builder: feed `(bucket, oid)` pairs in non-decreasing order,
/// pages are appended to the shared [`DiskPageFileWriter`] as they fill.
pub struct PostingRunBuilder {
    page: Vec<u8>,
    groups_in_page: u16,
    pages: Vec<u32>,
    fences: Vec<i64>,
    entry_base: Vec<usize>,
    len: usize,
    cur_bucket: Option<i64>,
    cur_ids: Vec<u32>,
    enc: Vec<u8>,
}

impl Default for PostingRunBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PostingRunBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        PostingRunBuilder {
            page: vec![0; PAGE_HEADER],
            groups_in_page: 0,
            pages: Vec::new(),
            fences: Vec::new(),
            entry_base: Vec::new(),
            len: 0,
            cur_bucket: None,
            cur_ids: Vec::with_capacity(MAX_GROUP_IDS),
            enc: Vec::new(),
        }
    }

    /// Append one entry. Pairs must arrive sorted by `(bucket, oid)`.
    pub fn push(
        &mut self,
        writer: &mut DiskPageFileWriter,
        bucket: i64,
        oid: u32,
    ) -> io::Result<()> {
        match self.cur_bucket {
            Some(cur) if cur == bucket => {
                debug_assert!(
                    self.cur_ids.last().is_none_or(|&last| oid >= last),
                    "oids out of order"
                );
            }
            Some(cur) => {
                assert!(bucket > cur, "buckets out of order: {bucket} after {cur}");
                self.flush_group(writer)?;
                self.cur_bucket = Some(bucket);
            }
            None => self.cur_bucket = Some(bucket),
        }
        self.cur_ids.push(oid);
        if self.cur_ids.len() >= MAX_GROUP_IDS {
            // Emit a continuation chunk; cur_bucket stays set so further
            // oids of this bucket open another group with the same id.
            self.flush_group(writer)?;
        }
        Ok(())
    }

    fn flush_group(&mut self, writer: &mut DiskPageFileWriter) -> io::Result<()> {
        if self.cur_ids.is_empty() {
            return Ok(());
        }
        let bucket = self.cur_bucket.expect("ids without a bucket");
        self.enc.clear();
        codec::encode_postings(&self.cur_ids, &mut self.enc);
        let group_bytes = GROUP_HEADER + self.enc.len();
        if self.page.len() + group_bytes > PAYLOAD_BYTES {
            self.flush_page(writer)?;
        }
        debug_assert!(self.page.len() + group_bytes <= PAYLOAD_BYTES);
        if self.groups_in_page == 0 {
            self.fences.push(bucket);
            self.entry_base.push(self.len);
        }
        self.page.extend_from_slice(&bucket.to_le_bytes());
        self.page.extend_from_slice(&self.enc);
        self.groups_in_page += 1;
        self.len += self.cur_ids.len();
        self.cur_ids.clear();
        Ok(())
    }

    fn flush_page(&mut self, writer: &mut DiskPageFileWriter) -> io::Result<()> {
        if self.groups_in_page == 0 {
            return Ok(());
        }
        self.page[..PAGE_HEADER].copy_from_slice(&self.groups_in_page.to_le_bytes());
        let no = writer.append_page(&self.page)?;
        self.pages.push(no);
        self.page.truncate(0);
        self.page.resize(PAGE_HEADER, 0);
        self.groups_in_page = 0;
        Ok(())
    }

    /// Flush pending state and return the run's in-memory directory.
    pub fn finish(mut self, writer: &mut DiskPageFileWriter) -> io::Result<PostingRun> {
        self.flush_group(writer)?;
        self.flush_page(writer)?;
        Ok(PostingRun {
            pages: self.pages,
            fences: self.fences,
            entry_base: self.entry_base,
            len: self.len,
        })
    }
}

/// One finished posting run: page numbers plus the in-memory directory.
pub struct PostingRun {
    pages: Vec<u32>,
    /// Bucket id of the first group on each page.
    fences: Vec<i64>,
    /// Global entry index of the first entry on each page.
    entry_base: Vec<usize>,
    len: usize,
}

impl PostingRun {
    /// Total entries in the run.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the run holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of disk pages the run occupies.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// First global entry index whose bucket is `>= target`; costs at most
    /// one page read (usually a pool hit).
    pub fn lower_bound(
        &self,
        file: &DiskPageFile,
        pool: &PinnedPool,
        target: i64,
    ) -> io::Result<usize> {
        let pp = self.fences.partition_point(|&f| f < target);
        if pp == 0 {
            return Ok(0);
        }
        let page_idx = pp - 1;
        let page = pool.get(file, self.pages[page_idx])?;
        let mut idx = self.entry_base[page_idx];
        let mut off = PAGE_HEADER;
        let groups = u16::from_le_bytes(page[..PAGE_HEADER].try_into().unwrap());
        for _ in 0..groups {
            let bucket = i64::from_le_bytes(page[off..off + GROUP_HEADER].try_into().unwrap());
            let (count, total) =
                codec::peek_postings(&page[off + GROUP_HEADER..]).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "malformed posting group")
                })?;
            if bucket >= target {
                break;
            }
            idx += count;
            off += GROUP_HEADER + total;
        }
        Ok(idx)
    }

    /// Visit entries with global indexes in `[from, to)` in order, calling
    /// `f(bucket, oid)`; stops early (returning `Ok(false)`) when `f`
    /// returns `false`.
    pub fn scan_while(
        &self,
        file: &DiskPageFile,
        pool: &PinnedPool,
        from: usize,
        to: usize,
        mut f: impl FnMut(i64, u32) -> bool,
    ) -> io::Result<bool> {
        let to = to.min(self.len);
        if from >= to {
            return Ok(true);
        }
        let start_page = self.entry_base.partition_point(|&b| b <= from) - 1;
        let mut ids: Vec<u32> = Vec::new();
        let mut idx = self.entry_base[start_page];
        for &page_no in &self.pages[start_page..] {
            let page = pool.get(file, page_no)?;
            let groups = u16::from_le_bytes(page[..PAGE_HEADER].try_into().unwrap());
            let mut off = PAGE_HEADER;
            for _ in 0..groups {
                let bucket = i64::from_le_bytes(page[off..off + GROUP_HEADER].try_into().unwrap());
                let enc = &page[off + GROUP_HEADER..];
                let (count, total) = codec::peek_postings(enc).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "malformed posting group")
                })?;
                if idx + count > from {
                    ids.clear();
                    codec::decode_postings(enc, &mut ids).ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "malformed posting group")
                    })?;
                    for (i, &oid) in ids.iter().enumerate() {
                        let g = idx + i;
                        if g >= to {
                            return Ok(true);
                        }
                        if g >= from && !f(bucket, oid) {
                            return Ok(false);
                        }
                    }
                }
                idx += count;
                if idx >= to {
                    return Ok(true);
                }
                off += GROUP_HEADER + total;
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::scratch_dir;

    /// Build a run from entries, returning everything needed to read it.
    fn build(tag: &str, entries: &[(i64, u32)]) -> (std::path::PathBuf, DiskPageFile, PostingRun) {
        let dir = scratch_dir(tag);
        let path = dir.join("run.ccpg");
        let mut w = DiskPageFileWriter::create(&path).unwrap();
        let mut b = PostingRunBuilder::new();
        for &(bucket, oid) in entries {
            b.push(&mut w, bucket, oid).unwrap();
        }
        let run = b.finish(&mut w).unwrap();
        (dir, w.finish().unwrap(), run)
    }

    fn reference_entries(n: usize, seed: u64) -> Vec<(i64, u32)> {
        // Deterministic LCG: clustered buckets with duplicate-heavy lists.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut entries: Vec<(i64, u32)> =
            (0..n).map(|_| ((next() % 97) as i64 - 48, (next() % 10_000) as u32)).collect();
        entries.sort_unstable();
        entries
    }

    #[test]
    fn lower_bound_and_scan_match_reference() {
        let entries = reference_entries(20_000, 7);
        let (dir, file, run) = build("run_ref", &entries);
        assert_eq!(run.len(), entries.len());
        let pool = PinnedPool::new(8);
        for target in [-60i64, -48, -10, 0, 3, 47, 48, 60] {
            let expect = entries.partition_point(|&(b, _)| b < target);
            assert_eq!(run.lower_bound(&file, &pool, target).unwrap(), expect, "target {target}");
        }
        let (from, to) = (137, 9_731);
        let mut seen = Vec::new();
        assert!(run
            .scan_while(&file, &pool, from, to, |b, o| {
                seen.push((b, o));
                true
            })
            .unwrap());
        assert_eq!(seen, entries[from..to]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_bucket_splits_into_continuation_groups() {
        // One bucket with 5000 wide-gapped ids (poorly compressible) must
        // span multiple pages via continuation groups.
        let mut oids: Vec<u32> = {
            let mut state = 99u64;
            (0..5_000)
                .map(|_| {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (state >> 32) as u32
                })
                .collect()
        };
        oids.sort_unstable();
        let entries: Vec<(i64, u32)> = oids.into_iter().map(|o| (42i64, o)).collect();
        let (dir, file, run) = build("run_split", &entries);
        assert!(run.page_count() >= 2, "expected a multi-page run, got {}", run.page_count());
        let pool = PinnedPool::new(4);
        assert_eq!(run.lower_bound(&file, &pool, 42).unwrap(), 0);
        assert_eq!(run.lower_bound(&file, &pool, 43).unwrap(), 5_000);
        let mut seen = Vec::new();
        run.scan_while(&file, &pool, 0, run.len(), |b, o| {
            seen.push((b, o));
            true
        })
        .unwrap();
        assert_eq!(seen, entries);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_aborts_early() {
        let entries = reference_entries(3_000, 11);
        let (dir, file, run) = build("run_abort", &entries);
        let pool = PinnedPool::new(4);
        let mut n = 0;
        let done = run
            .scan_while(&file, &pool, 0, run.len(), |_, _| {
                n += 1;
                n < 10
            })
            .unwrap();
        assert!(!done);
        assert_eq!(n, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_run_is_well_formed() {
        let (dir, file, run) = build("run_empty", &[]);
        assert!(run.is_empty());
        assert_eq!(run.page_count(), 0);
        let pool = PinnedPool::new(2);
        assert_eq!(run.lower_bound(&file, &pool, 0).unwrap(), 0);
        assert!(run.scan_while(&file, &pool, 0, 10, |_, _| true).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}

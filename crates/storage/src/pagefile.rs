//! The simulated page file.
//!
//! A [`PageFile`] is an append-allocated array of 4 KiB pages plus an
//! [`IoStats`] counter. Every `read_page`/`write_page` call bumps the
//! counters; the experiment harness snapshots and diffs them around each
//! query, reproducing exactly the "number of page accesses" metric of the
//! paper without depending on real disk hardware.
//!
//! The counters sit behind an atomic so shared (`&self`) readers can be
//! accounted without locks.

use crate::page::{Page, PageId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Read/write counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Number of page reads.
    pub reads: u64,
    /// Number of page writes.
    pub writes: u64,
}

impl IoStats {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise difference `self − earlier` (for snapshot/diff).
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats { reads: self.reads - earlier.reads, writes: self.writes - earlier.writes }
    }
}

/// An in-memory page store with exact I/O accounting.
#[derive(Debug, Default)]
pub struct PageFile {
    pages: Vec<Page>,
    reads: AtomicU64,
    writes: AtomicU64,
    /// Optional read trace (page ids in access order), for cache
    /// simulations — see the buffer-pool experiment.
    trace: Mutex<Option<Vec<PageId>>>,
}

impl PageFile {
    /// An empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh zeroed page; returns its id. Allocation itself is
    /// not counted as I/O (the paper charges index *queries*, not builds,
    /// with per-access costs; build cost is reported separately as size).
    pub fn alloc(&mut self) -> PageId {
        let id = PageId(self.pages.len() as u32);
        self.pages.push(Page::zeroed());
        id
    }

    /// Number of allocated pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// `true` when no page has been allocated.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.pages.len() * crate::page::PAGE_SIZE
    }

    /// Read a page (counted).
    ///
    /// # Panics
    /// Panics on an unallocated id — that is always a bug in the caller.
    pub fn read_page(&self, id: PageId) -> &Page {
        self.reads.fetch_add(1, Ordering::Relaxed);
        if let Some(trace) = self.trace.lock().as_mut() {
            trace.push(id);
        }
        &self.pages[id.index()]
    }

    /// Start recording the ids of every subsequent page read.
    pub fn start_trace(&self) {
        *self.trace.lock() = Some(Vec::new());
    }

    /// Stop recording and return the read trace (empty when tracing was
    /// never started).
    pub fn take_trace(&self) -> Vec<PageId> {
        self.trace.lock().take().unwrap_or_default()
    }

    /// Overwrite a page (counted).
    pub fn write_page(&mut self, id: PageId, page: Page) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.pages[id.index()] = page;
    }

    /// Mutate a page in place through a closure (counted as one write).
    pub fn update_page(&mut self, id: PageId, f: impl FnOnce(&mut Page)) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        f(&mut self.pages[id.index()]);
    }

    /// Current counters.
    pub fn stats(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Reset counters to zero (e.g. after the build phase, before
    /// measuring queries).
    pub fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_accounting() {
        let mut f = PageFile::new();
        let a = f.alloc();
        let b = f.alloc();
        assert_eq!(f.len(), 2);
        assert_eq!(f.stats(), IoStats { reads: 0, writes: 0 });

        let mut p = Page::zeroed();
        p.put_u32(0, 7);
        f.write_page(a, p);
        assert_eq!(f.stats().writes, 1);

        assert_eq!(f.read_page(a).get_u32(0), 7);
        assert_eq!(f.read_page(b).get_u32(0), 0);
        assert_eq!(f.stats().reads, 2);
    }

    #[test]
    fn update_in_place() {
        let mut f = PageFile::new();
        let a = f.alloc();
        f.update_page(a, |p| p.put_i64(16, 99));
        assert_eq!(f.read_page(a).get_i64(16), 99);
        assert_eq!(f.stats(), IoStats { reads: 1, writes: 1 });
    }

    #[test]
    fn snapshot_diff() {
        let mut f = PageFile::new();
        let a = f.alloc();
        f.read_page(a);
        let snap = f.stats();
        f.read_page(a);
        f.read_page(a);
        let d = f.stats().since(&snap);
        assert_eq!(d.reads, 2);
        assert_eq!(d.total(), 2);
    }

    #[test]
    fn reset_clears_counters() {
        let mut f = PageFile::new();
        let a = f.alloc();
        f.read_page(a);
        f.reset_stats();
        assert_eq!(f.stats(), IoStats::default());
    }

    #[test]
    fn size_accounting() {
        let mut f = PageFile::new();
        for _ in 0..3 {
            f.alloc();
        }
        assert_eq!(f.size_bytes(), 3 * crate::page::PAGE_SIZE);
    }

    #[test]
    fn trace_records_reads_in_order() {
        let mut f = PageFile::new();
        let a = f.alloc();
        let b = f.alloc();
        f.read_page(a); // before tracing: not recorded
        f.start_trace();
        f.read_page(b);
        f.read_page(a);
        f.read_page(b);
        assert_eq!(f.take_trace(), vec![b, a, b]);
        // Tracing stopped: subsequent reads are not recorded.
        f.read_page(a);
        assert!(f.take_trace().is_empty());
    }

    #[test]
    #[should_panic]
    fn read_unallocated_panics() {
        let f = PageFile::new();
        f.read_page(PageId(0));
    }
}

//! Write-ahead log for online index mutations.
//!
//! The dynamic collision-counting index accepts inserts and deletes at
//! run time; a service acknowledging such a write must not lose it to a
//! crash. This module supplies the durability half of that contract: an
//! append-only log of checksummed mutation records where an operation
//! counts as *acknowledged* only once [`Wal::sync`] returned after its
//! [`Wal::append`]. Replay after a kill at **any** byte offset recovers
//! exactly the prefix of records that made it to disk whole — which is
//! always a superset of the acknowledged prefix — and never panics on a
//! torn or bit-flipped file (pinned by the fault-injection proptests in
//! `crates/core/tests/proptest_persist.rs`).
//!
//! ## On-disk layout (all little-endian)
//!
//! ```text
//! header  8 bytes: magic "CWL1" (u32) | u32 reserved (0)
//! record  u32 len | payload (len bytes) | u32 crc32(payload)
//! payload u64 seq | u8 op | body
//!         op 1 = insert: u32 oid | u32 dim | dim × f32
//!         op 2 = delete: u32 oid
//!         op 3 = insert with metadata:
//!                u32 oid | u64 tag | u32 label | u32 dim | dim × f32
//! ```
//!
//! Op 3 extends op 1 with the point's attribute payload (a tag bitmask
//! plus a label id, the wire shape of `c2lsh::meta::PointMeta`).
//! Appends pick the opcode by content — a zero payload encodes as the
//! original op 1 — so logs written by a metadata-free workload stay
//! byte-identical to the v1 format, and every old `CWL1` log replays
//! unchanged (op 1 decodes with a zero payload).
//!
//! The `"CWL"` prefix of the magic identifies the format family and the
//! trailing byte its version, mirroring the persistence formats of the
//! core crate. Sequence numbers are assigned by the log, start after
//! the caller-provided base (a checkpoint's high-water mark) and
//! increase by exactly one per record; a gap is treated as corruption
//! and ends replay there.
//!
//! ## Replay semantics
//!
//! [`Wal::open`] scans the file front to back. The first record that is
//! truncated, fails its CRC, declares an impossible length, carries an
//! unknown opcode or breaks the sequence chain ends the scan: everything
//! before it is returned, everything from it on is discarded and the
//! file is physically truncated back to the valid prefix so subsequent
//! appends extend a clean log. A record can only be *acknowledged* after
//! an fsync that covered it, so the discarded tail never contains an
//! acknowledged write.
//!
//! [`FailpointFile`] is the matching test harness: it truncates,
//! bit-flips or extends a file at a chosen byte offset, simulating a
//! kill (or a corrupting disk) at that exact point.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic word of the WAL format: `"CWL"` family prefix + version byte
/// `'1'`, written little-endian so the file starts with the ASCII bytes
/// `1LWC` reversed into `"CWL1"` when read as a big-endian word.
pub const WAL_MAGIC: u32 = 0x4357_4C31; // "CWL1"
const WAL_MAGIC_PREFIX: u32 = WAL_MAGIC & !0xFF;
/// Size of the file header preceding the first record.
pub const WAL_HEADER_BYTES: u64 = 8;
/// Upper bound on one record's payload (a 1M-dimensional vector fits
/// comfortably); a length word above this is corruption, not data.
pub const MAX_RECORD: usize = 16 << 20;

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_INSERT_META: u8 = 3;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A vector was inserted and assigned `oid`. Replay re-inserts and
    /// verifies the store assigns the same id (oid assignment is
    /// deterministic, so a mismatch means the log and store diverged).
    Insert {
        /// Object id the store assigned at append time.
        oid: u32,
        /// The inserted vector.
        vector: Vec<f32>,
        /// Attribute tag bitmask (`PointMeta::tag`); 0 when absent.
        tag: u64,
        /// Attribute label id (`PointMeta::label`); 0 when absent.
        label: u32,
    },
    /// The object with this id was deleted.
    Delete {
        /// Object id that was removed.
        oid: u32,
    },
}

/// A replayed record: the operation plus its log sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotone sequence number assigned at append time.
    pub seq: u64,
    /// The logged operation.
    pub op: WalOp,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records replayed from the valid prefix.
    pub records: usize,
    /// File offset one past the last valid record (= the length the
    /// file was truncated to).
    pub valid_bytes: u64,
    /// Bytes discarded past the valid prefix (torn tail / corruption).
    pub torn_bytes: u64,
    /// Sequence number of the last valid record (0 when none).
    pub last_seq: u64,
}

/// A saved append position: everything [`Wal::rollback`] needs to
/// restore the log to a batch boundary after a failed append or sync.
/// Take one with [`Wal::position`] before the first append of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalPosition {
    len: u64,
    next_seq: u64,
    appended_since_sync: u64,
}

/// An open write-ahead log positioned for appends.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    len: u64,
    appended_since_sync: u64,
    /// Fault injection (test support): after skipping `.0` more
    /// appends, write only `.1` bytes of the next record, then fail.
    fail_append: Option<(u32, usize)>,
    /// Fault injection (test support): fail the next N syncs.
    fail_syncs: u32,
}

impl Wal {
    /// Open (creating if absent) the log at `path`, replay its valid
    /// prefix and truncate any torn tail. `base_seq` is the sequence
    /// number already covered by a checkpoint: an empty log starts
    /// numbering at `base_seq + 1`, and a non-empty log resumes after
    /// its own last valid record.
    ///
    /// A file whose header is damaged (wrong magic) is refused with
    /// [`io::ErrorKind::InvalidData`] rather than silently treated as
    /// empty — wiping a real log over a one-bit header flip would turn
    /// recoverable corruption into data loss.
    pub fn open(
        path: impl AsRef<Path>,
        base_seq: u64,
    ) -> io::Result<(Self, Vec<WalRecord>, ReplayReport)> {
        let path = path.as_ref().to_path_buf();
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let file_len = file.metadata()?.len();

        if file_len < WAL_HEADER_BYTES {
            // Brand new (or the header itself was torn mid-creation,
            // before any record could have been acknowledged): start
            // fresh.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let mut header = Vec::with_capacity(WAL_HEADER_BYTES as usize);
            header.extend_from_slice(&WAL_MAGIC.to_le_bytes());
            header.extend_from_slice(&0u32.to_le_bytes());
            file.write_all(&header)?;
            file.sync_data()?;
            let wal = Wal {
                file,
                path,
                next_seq: base_seq + 1,
                len: WAL_HEADER_BYTES,
                appended_since_sync: 0,
                fail_append: None,
                fail_syncs: 0,
            };
            return Ok((wal, Vec::new(), ReplayReport::default()));
        }

        let mut bytes = Vec::with_capacity(file_len as usize);
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;

        let magic = u32::from_le_bytes(bytes[..4].try_into().unwrap());
        if magic & !0xFF != WAL_MAGIC_PREFIX {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: bad WAL magic {magic:#010x}", path.display()),
            ));
        }
        if magic != WAL_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: unsupported WAL version {:?} (this build reads '1')",
                    path.display(),
                    (magic & 0xFF) as u8 as char
                ),
            ));
        }

        let (records, valid_bytes) = scan(&bytes);
        let report = ReplayReport {
            records: records.len(),
            valid_bytes,
            torn_bytes: file_len - valid_bytes,
            last_seq: records.last().map_or(0, |r| r.seq),
        };
        if valid_bytes < file_len {
            file.set_len(valid_bytes)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_bytes))?;
        let next_seq = records.last().map_or(base_seq, |r| r.seq.max(base_seq)) + 1;
        let wal = Wal {
            file,
            path,
            next_seq,
            len: valid_bytes,
            appended_since_sync: 0,
            fail_append: None,
            fail_syncs: 0,
        };
        Ok((wal, records, report))
    }

    /// Append one operation; returns its assigned sequence number. The
    /// record is *not* durable (and must not be acknowledged) until the
    /// next [`Wal::sync`] returns.
    pub fn append(&mut self, op: &WalOp) -> io::Result<u64> {
        let seq = self.next_seq;
        let mut payload = Vec::with_capacity(32);
        payload.extend_from_slice(&seq.to_le_bytes());
        match op {
            WalOp::Insert { oid, vector, tag, label } => {
                if *tag == 0 && *label == 0 {
                    payload.push(OP_INSERT);
                    payload.extend_from_slice(&oid.to_le_bytes());
                } else {
                    payload.push(OP_INSERT_META);
                    payload.extend_from_slice(&oid.to_le_bytes());
                    payload.extend_from_slice(&tag.to_le_bytes());
                    payload.extend_from_slice(&label.to_le_bytes());
                }
                payload.extend_from_slice(&(vector.len() as u32).to_le_bytes());
                for x in vector {
                    payload.extend_from_slice(&x.to_le_bytes());
                }
            }
            WalOp::Delete { oid } => {
                payload.push(OP_DELETE);
                payload.extend_from_slice(&oid.to_le_bytes());
            }
        }
        debug_assert!(payload.len() <= MAX_RECORD);
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&payload);
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        match self.fail_append {
            Some((0, partial)) => {
                // Injected short write: some record bytes land in the
                // file, the length/seq bookkeeping does not advance —
                // exactly the state a real mid-record write failure
                // (ENOSPC) leaves.
                self.fail_append = None;
                self.file.write_all(&record[..partial.min(record.len())])?;
                return Err(io::Error::other("injected append failure"));
            }
            Some((skip, partial)) => self.fail_append = Some((skip - 1, partial)),
            None => {}
        }
        self.file.write_all(&record)?;
        self.len += record.len() as u64;
        self.next_seq += 1;
        self.appended_since_sync += 1;
        Ok(seq)
    }

    /// Make every appended record durable (fsync). Returns the number
    /// of records this sync covered — the group-commit size.
    pub fn sync(&mut self) -> io::Result<u64> {
        self.sync_inner()?;
        Ok(std::mem::take(&mut self.appended_since_sync))
    }

    fn sync_inner(&mut self) -> io::Result<()> {
        if self.fail_syncs > 0 {
            self.fail_syncs -= 1;
            return Err(io::Error::other("injected sync failure"));
        }
        self.file.sync_data()
    }

    /// The current append position. Take one before a batch's first
    /// append so a failure anywhere in the batch can [`Wal::rollback`]
    /// to this boundary.
    pub fn position(&self) -> WalPosition {
        WalPosition {
            len: self.len,
            next_seq: self.next_seq,
            appended_since_sync: self.appended_since_sync,
        }
    }

    /// Restore the log — file length, write offset, sequence numbering —
    /// to a previously captured [`WalPosition`], physically discarding
    /// every byte appended after it. This is the recovery path for a
    /// failed append or sync mid-batch: a short write leaves partial
    /// record bytes in the file (and a failed `write_all` leaves the
    /// file position wherever it died), and later appends on top of
    /// that garbage would be silently discarded by the next replay.
    /// Truncating back to the batch boundary keeps the log's valid
    /// prefix equal to its acknowledged history.
    pub fn rollback(&mut self, pos: WalPosition) -> io::Result<()> {
        self.file.set_len(pos.len)?;
        // Make the truncation itself durable: if the partial bytes had
        // already reached the platter, a crash right after an unsynced
        // set_len could resurrect them behind acknowledged appends.
        self.sync_inner()?;
        self.file.seek(SeekFrom::Start(pos.len))?;
        self.len = pos.len;
        self.next_seq = pos.next_seq;
        self.appended_since_sync = pos.appended_since_sync;
        Ok(())
    }

    /// Fault injection (test support, like [`FailpointFile`]): after
    /// `skip` more successful appends, the following [`Wal::append`]
    /// writes only the first `partial_bytes` bytes of its record and
    /// then fails — ENOSPC / a short write, placeable mid-batch.
    pub fn inject_append_failure(&mut self, skip: u32, partial_bytes: usize) {
        self.fail_append = Some((skip, partial_bytes));
    }

    /// Fault injection (test support): fail the next `n` fsyncs —
    /// including the one inside [`Wal::rollback`], so two injected
    /// failures exercise the can't-even-roll-back path.
    pub fn inject_sync_failures(&mut self, n: u32) {
        self.fail_syncs = n;
    }

    /// Truncate the log back to an empty (header-only) state after a
    /// checkpoint made its contents redundant. Sequence numbering
    /// continues — the checkpoint records the high-water mark.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(WAL_HEADER_BYTES)?;
        self.file.sync_data()?;
        self.file.seek(SeekFrom::Start(WAL_HEADER_BYTES))?;
        self.len = WAL_HEADER_BYTES;
        self.appended_since_sync = 0;
        Ok(())
    }

    /// Sequence number the next [`Wal::append`] will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current file size in bytes (header plus appended records,
    /// whether or not they are synced yet).
    pub fn size_bytes(&self) -> u64 {
        self.len
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Scan `bytes` (starting after the header) for valid records; returns
/// them plus the offset one past the last valid record.
fn scan(bytes: &[u8]) -> (Vec<WalRecord>, u64) {
    let mut records = Vec::new();
    let mut at = WAL_HEADER_BYTES as usize;
    let mut expect_seq: Option<u64> = None;
    while let Some(len_bytes) = bytes.get(at..at + 4) {
        let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        if !(9..=MAX_RECORD).contains(&len) {
            break; // impossible payload: torn or corrupt length word
        }
        let Some(payload) = bytes.get(at + 4..at + 4 + len) else { break };
        let Some(crc_bytes) = bytes.get(at + 4 + len..at + 8 + len) else { break };
        if crc32(payload) != u32::from_le_bytes(crc_bytes.try_into().unwrap()) {
            break;
        }
        let seq = u64::from_le_bytes(payload[..8].try_into().unwrap());
        if let Some(want) = expect_seq {
            if seq != want {
                break; // sequence gap: the chain is broken here
            }
        }
        let Some(op) = decode_op(&payload[8..]) else { break };
        records.push(WalRecord { seq, op });
        expect_seq = Some(seq + 1);
        at += 8 + len;
    }
    (records, at as u64)
}

fn decode_op(body: &[u8]) -> Option<WalOp> {
    match *body.first()? {
        OP_INSERT => {
            let oid = u32::from_le_bytes(body.get(1..5)?.try_into().unwrap());
            let dim = u32::from_le_bytes(body.get(5..9)?.try_into().unwrap()) as usize;
            let raw = body.get(9..)?;
            if raw.len() != dim * 4 {
                return None;
            }
            let vector =
                raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
            Some(WalOp::Insert { oid, vector, tag: 0, label: 0 })
        }
        OP_INSERT_META => {
            let oid = u32::from_le_bytes(body.get(1..5)?.try_into().unwrap());
            let tag = u64::from_le_bytes(body.get(5..13)?.try_into().unwrap());
            let label = u32::from_le_bytes(body.get(13..17)?.try_into().unwrap());
            let dim = u32::from_le_bytes(body.get(17..21)?.try_into().unwrap()) as usize;
            let raw = body.get(21..)?;
            if raw.len() != dim * 4 {
                return None;
            }
            let vector =
                raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
            Some(WalOp::Insert { oid, vector, tag, label })
        }
        OP_DELETE => {
            if body.len() != 5 {
                return None;
            }
            let oid = u32::from_le_bytes(body[1..5].try_into().unwrap());
            Some(WalOp::Delete { oid })
        }
        _ => None,
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
/// checksum guarding each record's payload.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

// ---------------------------------------------------------------------------
// Fault-injection test support
// ---------------------------------------------------------------------------

/// Fault injector over a file path: simulate a kill or a corrupting
/// disk at an exact byte offset. Test support for the WAL recovery
/// suites (kept in the library, not behind `cfg(test)`, so downstream
/// crates' integration tests can drive it too).
#[derive(Debug, Clone)]
pub struct FailpointFile {
    path: PathBuf,
}

impl FailpointFile {
    /// Wrap the file at `path` (which must already exist for the fault
    /// methods to succeed).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// Current file size in bytes.
    pub fn size_bytes(&self) -> io::Result<u64> {
        Ok(std::fs::metadata(&self.path)?.len())
    }

    /// Cut the file to exactly `offset` bytes — the state a kill
    /// mid-write leaves behind.
    pub fn truncate_at(&self, offset: u64) -> io::Result<()> {
        let file = OpenOptions::new().write(true).open(&self.path)?;
        file.set_len(offset)?;
        file.sync_data()
    }

    /// Flip bit `bit` (0–7) of the byte at `offset` — silent media
    /// corruption under a checksum's nose.
    pub fn flip_bit(&self, offset: u64, bit: u8) -> io::Result<()> {
        assert!(bit < 8, "bit index out of range");
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        if offset >= file.metadata()?.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "flip offset past end of file",
            ));
        }
        let mut byte = [0u8; 1];
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut byte)?;
        byte[0] ^= 1 << bit;
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(&byte)?;
        file.sync_data()
    }

    /// Append raw bytes past the current end — the torn half-record a
    /// kill between `write` and `fsync` can leave.
    pub fn append_garbage(&self, bytes: &[u8]) -> io::Result<()> {
        let mut file = OpenOptions::new().append(true).open(&self.path)?;
        file.write_all(bytes)?;
        file.sync_data()
    }
}

/// A fresh scratch directory for fault-injection artifacts: under
/// `$CC_FAULT_DIR` when set (CI points this at a path it uploads on
/// failure, so surviving WAL dumps become debuggable artifacts), else
/// under the system temp dir. Unique per call; the caller owns cleanup
/// (tests remove it on success and leave it behind on failure).
pub fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let base =
        std::env::var_os("CC_FAULT_DIR").map(PathBuf::from).unwrap_or_else(std::env::temp_dir);
    let unique =
        format!("cc-wal-{tag}-{}-{}", std::process::id(), COUNTER.fetch_add(1, Ordering::Relaxed));
    let dir = base.join(unique);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops(n: usize) -> Vec<WalOp> {
        (0..n)
            .map(|i| {
                if i % 3 == 2 {
                    WalOp::Delete { oid: (i / 3) as u32 }
                } else {
                    WalOp::Insert {
                        oid: i as u32,
                        vector: (0..4).map(|d| (i * 4 + d) as f32 * 0.5).collect(),
                        tag: if i % 2 == 0 { 0 } else { 1 << (i % 64) },
                        label: (i % 2) as u32 * 7,
                    }
                }
            })
            .collect()
    }

    #[test]
    fn append_sync_replay_roundtrip() {
        let dir = scratch_dir("roundtrip");
        let path = dir.join("wal.log");
        let ops = sample_ops(9);
        {
            let (mut wal, replayed, report) = Wal::open(&path, 0).unwrap();
            assert!(replayed.is_empty());
            assert_eq!(report, ReplayReport::default());
            for (i, op) in ops.iter().enumerate() {
                assert_eq!(wal.append(op).unwrap(), i as u64 + 1);
            }
            assert_eq!(wal.sync().unwrap(), 9, "group commit covered all appends");
        }
        let (wal, replayed, report) = Wal::open(&path, 0).unwrap();
        assert_eq!(replayed.len(), 9);
        assert_eq!(report.records, 9);
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(report.last_seq, 9);
        for (i, rec) in replayed.iter().enumerate() {
            assert_eq!(rec.seq, i as u64 + 1);
            assert_eq!(&rec.op, &ops[i]);
        }
        assert_eq!(wal.next_seq(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_every_offset_recovers_a_prefix() {
        let dir = scratch_dir("cut");
        let path = dir.join("wal.log");
        let ops = sample_ops(6);
        // Record the file size after each synced append: the boundaries
        // at which a record becomes durable.
        let mut boundaries = vec![WAL_HEADER_BYTES];
        {
            let (mut wal, _, _) = Wal::open(&path, 0).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
                wal.sync().unwrap();
                boundaries.push(wal.size_bytes());
            }
        }
        let full = *boundaries.last().unwrap();
        for cut in 0..=full {
            std::fs::copy(&path, dir.join("cut.log")).unwrap();
            let fp = FailpointFile::new(dir.join("cut.log"));
            fp.truncate_at(cut).unwrap();
            let expect = boundaries.iter().filter(|&&b| b > WAL_HEADER_BYTES && b <= cut).count();
            if cut < WAL_HEADER_BYTES {
                // Header torn: open() starts a fresh log.
                let (_, replayed, _) = Wal::open(dir.join("cut.log"), 0).unwrap();
                assert!(replayed.is_empty(), "cut at {cut}");
            } else {
                let (_, replayed, report) = Wal::open(dir.join("cut.log"), 0).unwrap();
                assert_eq!(replayed.len(), expect, "cut at {cut}");
                assert_eq!(report.torn_bytes, cut - report.valid_bytes, "cut at {cut}");
                for (i, rec) in replayed.iter().enumerate() {
                    assert_eq!(&rec.op, &ops[i], "cut at {cut}");
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_ends_replay_before_the_damaged_record() {
        let dir = scratch_dir("flip");
        let path = dir.join("wal.log");
        let ops = sample_ops(5);
        let mut boundaries = vec![WAL_HEADER_BYTES];
        {
            let (mut wal, _, _) = Wal::open(&path, 0).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
                wal.sync().unwrap();
                boundaries.push(wal.size_bytes());
            }
        }
        let full = *boundaries.last().unwrap();
        for offset in WAL_HEADER_BYTES..full {
            std::fs::copy(&path, dir.join("flip.log")).unwrap();
            let fp = FailpointFile::new(dir.join("flip.log"));
            fp.flip_bit(offset, (offset % 8) as u8).unwrap();
            // The record containing the flipped byte (and everything
            // after it) must vanish; everything before survives intact.
            let damaged = boundaries.iter().filter(|&&b| b <= offset).count() - 1;
            let (_, replayed, _) = Wal::open(dir.join("flip.log"), 0).unwrap();
            assert_eq!(replayed.len(), damaged, "flip at {offset}");
            for (i, rec) in replayed.iter().enumerate() {
                assert_eq!(&rec.op, &ops[i], "flip at {offset}");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_bit_flip_is_an_explicit_error() {
        let dir = scratch_dir("header");
        let path = dir.join("wal.log");
        {
            let (mut wal, _, _) = Wal::open(&path, 0).unwrap();
            wal.append(&WalOp::Delete { oid: 1 }).unwrap();
            wal.sync().unwrap();
        }
        FailpointFile::new(&path).flip_bit(1, 3).unwrap();
        let err = Wal::open(&path, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_garbage_tail_is_discarded_and_log_stays_appendable() {
        let dir = scratch_dir("tail");
        let path = dir.join("wal.log");
        {
            let (mut wal, _, _) = Wal::open(&path, 0).unwrap();
            for op in sample_ops(3).iter() {
                wal.append(op).unwrap();
            }
            wal.sync().unwrap();
        }
        FailpointFile::new(&path).append_garbage(&[0xAB; 13]).unwrap();
        let (mut wal, replayed, report) = Wal::open(&path, 0).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(report.torn_bytes, 13);
        // The log is clean again: append + reopen sees 4 records.
        assert_eq!(wal.append(&WalOp::Delete { oid: 9 }).unwrap(), 4);
        wal.sync().unwrap();
        drop(wal);
        let (_, replayed, _) = Wal::open(&path, 0).unwrap();
        assert_eq!(replayed.len(), 4);
        assert_eq!(replayed[3].op, WalOp::Delete { oid: 9 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_keeps_sequence_numbering() {
        let dir = scratch_dir("reset");
        let path = dir.join("wal.log");
        let (mut wal, _, _) = Wal::open(&path, 0).unwrap();
        for op in sample_ops(4).iter() {
            wal.append(op).unwrap();
        }
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.size_bytes(), WAL_HEADER_BYTES);
        assert_eq!(wal.append(&WalOp::Delete { oid: 0 }).unwrap(), 5);
        wal.sync().unwrap();
        drop(wal);
        // A checkpoint at seq 4 plus the reset log replays just seq 5.
        let (wal, replayed, _) = Wal::open(&path, 4).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].seq, 5);
        assert_eq!(wal.next_seq(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn base_seq_numbers_an_empty_log() {
        let dir = scratch_dir("base");
        let (mut wal, _, _) = Wal::open(dir.join("wal.log"), 41).unwrap();
        assert_eq!(wal.next_seq(), 42);
        assert_eq!(wal.append(&WalOp::Delete { oid: 7 }).unwrap(), 42);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rollback_after_failed_append_restores_the_batch_boundary() {
        let dir = scratch_dir("rollback");
        let path = dir.join("wal.log");
        let ops = sample_ops(4);
        {
            let (mut wal, _, _) = Wal::open(&path, 0).unwrap();
            wal.append(&ops[0]).unwrap();
            wal.sync().unwrap();
            // Batch of two: first append lands, second dies mid-record.
            let pos = wal.position();
            wal.inject_append_failure(1, 7);
            wal.append(&ops[1]).unwrap();
            let err = wal.append(&ops[2]).unwrap_err();
            assert_eq!(err.to_string(), "injected append failure");
            wal.rollback(pos).unwrap();
            assert_eq!(wal.size_bytes(), pos.len);
            // The log is clean again: the next batch appends and is
            // numbered as if the failed one never happened.
            assert_eq!(wal.append(&ops[3]).unwrap(), 2);
            wal.sync().unwrap();
        }
        let (_, replayed, report) = Wal::open(&path, 0).unwrap();
        assert_eq!(report.torn_bytes, 0, "no garbage left behind the rollback");
        assert_eq!(replayed.len(), 2);
        assert_eq!(&replayed[0].op, &ops[0]);
        assert_eq!(&replayed[1].op, &ops[3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn without_rollback_a_failed_append_poisons_later_records() {
        // Documents the failure mode rollback exists to prevent: append
        // after a torn record and replay silently drops the later
        // (fully written, synced) record.
        let dir = scratch_dir("poisoned");
        let path = dir.join("wal.log");
        let ops = sample_ops(3);
        {
            let (mut wal, _, _) = Wal::open(&path, 0).unwrap();
            wal.inject_append_failure(0, 5);
            wal.append(&ops[0]).unwrap_err();
            wal.append(&ops[1]).unwrap();
            wal.sync().unwrap();
        }
        let (_, replayed, report) = Wal::open(&path, 0).unwrap();
        assert!(replayed.is_empty(), "the record behind the garbage is unreachable");
        assert!(report.torn_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_sync_failures_count_down() {
        let dir = scratch_dir("sync-fail");
        let (mut wal, _, _) = Wal::open(dir.join("wal.log"), 0).unwrap();
        wal.append(&WalOp::Delete { oid: 1 }).unwrap();
        wal.inject_sync_failures(1);
        wal.sync().unwrap_err();
        assert_eq!(wal.sync().unwrap(), 1, "the retry syncs the still-pending record");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn meta_and_plain_inserts_roundtrip_together() {
        let dir = scratch_dir("meta-roundtrip");
        let path = dir.join("wal.log");
        let ops = vec![
            WalOp::Insert { oid: 0, vector: vec![1.0, 2.0], tag: 0, label: 0 },
            WalOp::Insert { oid: 1, vector: vec![3.0, 4.0], tag: 0xDEAD_BEEF, label: 42 },
            WalOp::Insert { oid: 2, vector: vec![5.0, 6.0], tag: 0, label: 9 },
            WalOp::Delete { oid: 1 },
            WalOp::Insert { oid: 3, vector: vec![7.0, 8.0], tag: u64::MAX, label: u32::MAX },
        ];
        {
            let (mut wal, _, _) = Wal::open(&path, 0).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.sync().unwrap();
        }
        let (_, replayed, report) = Wal::open(&path, 0).unwrap();
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(replayed.len(), ops.len());
        for (rec, op) in replayed.iter().zip(&ops) {
            assert_eq!(&rec.op, op);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn old_format_insert_records_replay_with_zero_meta() {
        // Hand-encode an op-1 record exactly as a pre-metadata build
        // wrote it and confirm this build replays it (zero payload).
        let dir = scratch_dir("old-insert");
        let path = dir.join("wal.log");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes()); // seq
        payload.push(OP_INSERT);
        payload.extend_from_slice(&0u32.to_le_bytes()); // oid
        payload.extend_from_slice(&2u32.to_le_bytes()); // dim
        payload.extend_from_slice(&1.5f32.to_le_bytes());
        payload.extend_from_slice(&(-2.5f32).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let (mut wal, replayed, report) = Wal::open(&path, 0).unwrap();
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(replayed.len(), 1);
        assert_eq!(
            replayed[0].op,
            WalOp::Insert { oid: 0, vector: vec![1.5, -2.5], tag: 0, label: 0 }
        );
        // A zero-meta append on this build reproduces the v1 encoding
        // bit-for-bit (same opcode, same body), keeping mixed logs
        // readable by both.
        let before = wal.size_bytes();
        wal.append(&WalOp::Insert { oid: 1, vector: vec![1.5, -2.5], tag: 0, label: 0 }).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.size_bytes() - before, (8 + payload.len()) as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}

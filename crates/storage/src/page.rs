//! The page: the unit of I/O accounting.
//!
//! Pages are fixed at 4 KiB (the size used by the paper's experimental
//! setup and by common filesystems). A [`Page`] is an owned byte buffer
//! with little-endian typed accessors; all higher layers serialize
//! through these so a page's content is exactly what would hit a disk.

use bytes::{Buf, BufMut};

/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a [`crate::PageFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// The page id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An owned 4 KiB page.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    data: Box<[u8]>,
}

impl Page {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        Self { data: vec![0u8; PAGE_SIZE].into_boxed_slice() }
    }

    /// Raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Read a little-endian `u32` at byte offset `off`.
    pub fn get_u32(&self, off: usize) -> u32 {
        (&self.data[off..off + 4]).get_u32_le()
    }

    /// Write a little-endian `u32` at byte offset `off`.
    pub fn put_u32(&mut self, off: usize, v: u32) {
        (&mut self.data[off..off + 4]).put_u32_le(v);
    }

    /// Read a little-endian `i64` at byte offset `off`.
    pub fn get_i64(&self, off: usize) -> i64 {
        (&self.data[off..off + 8]).get_i64_le()
    }

    /// Write a little-endian `i64` at byte offset `off`.
    pub fn put_i64(&mut self, off: usize, v: i64) {
        (&mut self.data[off..off + 8]).put_i64_le(v);
    }

    /// Read a little-endian `f32` at byte offset `off`.
    pub fn get_f32(&self, off: usize) -> f32 {
        (&self.data[off..off + 4]).get_f32_le()
    }

    /// Write a little-endian `f32` at byte offset `off`.
    pub fn put_f32(&mut self, off: usize, v: f32) {
        (&mut self.data[off..off + 4]).put_f32_le(v);
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({PAGE_SIZE} bytes)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_access_roundtrip() {
        let mut p = Page::zeroed();
        p.put_u32(0, 0xDEAD_BEEF);
        p.put_i64(8, -42);
        p.put_f32(100, 3.5);
        assert_eq!(p.get_u32(0), 0xDEAD_BEEF);
        assert_eq!(p.get_i64(8), -42);
        assert_eq!(p.get_f32(100), 3.5);
    }

    #[test]
    fn zeroed_is_all_zero() {
        let p = Page::zeroed();
        assert_eq!(p.bytes().len(), PAGE_SIZE);
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_access_panics() {
        let p = Page::zeroed();
        let _ = p.get_u32(PAGE_SIZE - 2);
    }

    #[test]
    fn page_id_ordering() {
        assert!(PageId(1) < PageId(2));
        assert_eq!(PageId(7).index(), 7);
    }
}

//! Real on-disk page file with a checksummed header and per-page CRC trailers.
//!
//! Unlike [`crate::pagefile::PageFile`] (an in-memory simulation used for
//! exact logical-I/O accounting), this module persists pages to an actual
//! file and reads them back with positioned reads. Layout:
//!
//! ```text
//! offset 0            header page (magic "CCPG", version, page size,
//!                     page count; CRC-32 trailer like every page)
//! offset PAGE_SIZE    data page 0
//! offset 2*PAGE_SIZE  data page 1
//! ...
//! ```
//!
//! Every page is [`PAGE_SIZE`] bytes: [`PAYLOAD_BYTES`] of payload followed
//! by a 4-byte IEEE CRC-32 of the payload. The checksum is verified on
//! *every* read, so a torn page or flipped bit surfaces as a loud
//! [`std::io::ErrorKind::InvalidData`] error instead of silent corruption.
//!
//! Reads go through positioned I/O (`pread` via
//! `std::os::unix::fs::FileExt::read_exact_at` on Unix), which is safe,
//! lock-free, and shares one file descriptor across query threads. An
//! mmap-backed variant was considered and rejected: this crate is
//! `#![forbid(unsafe_code)]` and memory mapping cannot be expressed safely
//! without a new dependency (see `DESIGN.md` §12).

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::page::PAGE_SIZE;
use crate::wal::crc32;

/// Usable payload bytes per page (the last 4 bytes hold the CRC trailer).
pub const PAYLOAD_BYTES: usize = PAGE_SIZE - 4;

/// Magic bytes identifying a cc-storage disk page file.
const MAGIC: [u8; 4] = *b"CCPG";
/// On-disk format version.
const VERSION: u32 = 1;

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Seal a payload into a full page image by appending its CRC trailer.
fn seal(payload: &[u8]) -> [u8; PAGE_SIZE] {
    debug_assert!(payload.len() <= PAYLOAD_BYTES);
    let mut page = [0u8; PAGE_SIZE];
    page[..payload.len()].copy_from_slice(payload);
    let crc = crc32(&page[..PAYLOAD_BYTES]);
    page[PAYLOAD_BYTES..].copy_from_slice(&crc.to_le_bytes());
    page
}

/// Verify a page image's CRC trailer.
fn check(page: &[u8; PAGE_SIZE], what: &str) -> io::Result<()> {
    let stored = u32::from_le_bytes(page[PAYLOAD_BYTES..].try_into().unwrap());
    let actual = crc32(&page[..PAYLOAD_BYTES]);
    if stored != actual {
        return Err(bad_data(format!(
            "{what} checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(())
}

/// Sequential writer for a new disk page file.
///
/// Appends sealed pages and writes the checksummed header on
/// [`finish`](DiskPageFileWriter::finish), so a crash mid-build leaves a
/// file that [`DiskPageFile::open`] refuses to load.
pub struct DiskPageFileWriter {
    out: BufWriter<File>,
    path: PathBuf,
    pages: u64,
}

impl DiskPageFileWriter {
    /// Create (truncating) a page file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&path)?;
        let mut out = BufWriter::new(file);
        // Placeholder header page; rewritten (with the real page count and a
        // valid CRC) by `finish`. Until then the file is unopenable.
        out.write_all(&[0u8; PAGE_SIZE])?;
        Ok(DiskPageFileWriter { out, path, pages: 0 })
    }

    /// Append one page; `payload` must be at most [`PAYLOAD_BYTES`] and is
    /// zero-padded. Returns the page number.
    pub fn append_page(&mut self, payload: &[u8]) -> io::Result<u32> {
        assert!(payload.len() <= PAYLOAD_BYTES, "payload exceeds page capacity");
        self.out.write_all(&seal(payload))?;
        let no = u32::try_from(self.pages).expect("page file exceeds u32 pages");
        self.pages += 1;
        Ok(no)
    }

    /// Number of data pages appended so far.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Flush everything, write the real header, fsync, and reopen the file
    /// as a read-only [`DiskPageFile`].
    pub fn finish(self) -> io::Result<DiskPageFile> {
        let DiskPageFileWriter { mut out, path, pages } = self;
        let mut header = [0u8; PAYLOAD_BYTES];
        header[0..4].copy_from_slice(&MAGIC);
        header[4..8].copy_from_slice(&VERSION.to_le_bytes());
        header[8..12].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
        header[12..20].copy_from_slice(&pages.to_le_bytes());
        out.flush()?;
        let mut file = out.into_inner().map_err(|e| e.into_error())?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&seal(&header))?;
        file.sync_all()?;
        DiskPageFile::open(path)
    }
}

/// Read-only handle to a finished disk page file.
///
/// Cheap positioned reads verify the page CRC on every access and count
/// physical reads in an atomic, so callers (the buffer pool, the bench
/// harness) can report true I/O-per-query figures.
#[derive(Debug)]
pub struct DiskPageFile {
    file: File,
    #[cfg(not(unix))]
    seek_lock: parking_lot::Mutex<()>,
    path: PathBuf,
    pages: u32,
    reads: AtomicU64,
}

impl DiskPageFile {
    /// Open and validate an existing page file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let len = file.metadata()?.len();
        if len < PAGE_SIZE as u64 {
            return Err(bad_data(format!("page file too short for a header: {len} bytes")));
        }
        let mut header = [0u8; PAGE_SIZE];
        file.read_exact(&mut header)?;
        check(&header, "header page")?;
        if header[0..4] != MAGIC {
            return Err(bad_data("bad magic: not a cc-storage page file".into()));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(bad_data(format!("unsupported page file version {version}")));
        }
        let page_size = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if page_size as usize != PAGE_SIZE {
            return Err(bad_data(format!(
                "page size mismatch: file {page_size}, build {PAGE_SIZE}"
            )));
        }
        let pages = u64::from_le_bytes(header[12..20].try_into().unwrap());
        let expect = (pages + 1) * PAGE_SIZE as u64;
        if len != expect {
            return Err(bad_data(format!(
                "page file length {len} does not match header ({pages} pages, expected {expect})"
            )));
        }
        let pages = u32::try_from(pages).map_err(|_| bad_data("page count exceeds u32".into()))?;
        Ok(DiskPageFile {
            file,
            #[cfg(not(unix))]
            seek_lock: parking_lot::Mutex::new(()),
            path,
            pages,
            reads: AtomicU64::new(0),
        })
    }

    /// Number of data pages.
    pub fn pages(&self) -> u32 {
        self.pages
    }

    /// Total file size in bytes, header included.
    pub fn size_bytes(&self) -> u64 {
        (u64::from(self.pages) + 1) * PAGE_SIZE as u64
    }

    /// Path this file was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Physical page reads performed so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Reset the physical read counter (between bench phases).
    pub fn reset_reads(&self) {
        self.reads.store(0, Ordering::Relaxed);
    }

    #[cfg(unix)]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)
    }

    #[cfg(not(unix))]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        use std::io::Read;
        let _guard = self.seek_lock.lock();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }

    /// Read one data page's payload into `out` (resized to
    /// [`PAYLOAD_BYTES`]), verifying the checksum.
    pub fn read_payload(&self, page_no: u32, out: &mut Vec<u8>) -> io::Result<()> {
        if page_no >= self.pages {
            return Err(bad_data(format!("page {page_no} out of range ({} pages)", self.pages)));
        }
        let mut page = [0u8; PAGE_SIZE];
        let offset = (u64::from(page_no) + 1) * PAGE_SIZE as u64;
        self.read_at(&mut page, offset)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        check(&page, &format!("page {page_no}"))?;
        out.clear();
        out.extend_from_slice(&page[..PAYLOAD_BYTES]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::scratch_dir;

    #[test]
    fn write_read_round_trip() {
        let dir = scratch_dir("diskfile_rt");
        let path = dir.join("pages.ccpg");
        let mut w = DiskPageFileWriter::create(&path).unwrap();
        for i in 0..5u8 {
            let payload = vec![i; (i as usize + 1) * 100];
            assert_eq!(w.append_page(&payload).unwrap(), u32::from(i));
        }
        let f = w.finish().unwrap();
        assert_eq!(f.pages(), 5);
        assert_eq!(f.size_bytes(), 6 * PAGE_SIZE as u64);
        let mut buf = Vec::new();
        for i in 0..5u8 {
            f.read_payload(u32::from(i), &mut buf).unwrap();
            assert_eq!(buf.len(), PAYLOAD_BYTES);
            assert!(buf[..(i as usize + 1) * 100].iter().all(|&b| b == i));
            assert!(buf[(i as usize + 1) * 100..].iter().all(|&b| b == 0));
        }
        assert_eq!(f.reads(), 5);
        assert!(f.read_payload(5, &mut buf).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unfinished_file_is_rejected() {
        let dir = scratch_dir("diskfile_unfinished");
        let path = dir.join("pages.ccpg");
        let mut w = DiskPageFileWriter::create(&path).unwrap();
        w.append_page(&[1, 2, 3]).unwrap();
        // Simulate a crash before finish(): flush data but never the header.
        w.out.flush().unwrap();
        drop(w.out);
        let err = DiskPageFile::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! LRU buffer pool.
//!
//! Sits between a query engine and a [`PageFile`], caching hot pages.
//! Accounting distinguishes **logical** accesses (every `get`) from
//! **physical** reads (cache misses forwarded to the page file). The
//! disk-mode experiments report physical reads, matching a real system
//! where a small fraction of the index fits in RAM.
//!
//! The pool hands out owned page clones rather than references; pages are
//! 4 KiB and the experiments read a handful per query, so the copy is
//! irrelevant next to the simulated I/O — and it keeps the API free of
//! lifetime entanglements with the interior mutex.

use crate::page::{Page, PageId};
use crate::pagefile::PageFile;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Buffer pool counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Logical page requests.
    pub requests: u64,
    /// Requests served from the pool.
    pub hits: u64,
    /// Requests forwarded to the page file.
    pub misses: u64,
}

impl PoolStats {
    /// Hit ratio in `[0, 1]`; 0 when no request was made.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

struct Frame {
    page: Page,
    last_used: u64,
}

struct Inner {
    frames: HashMap<PageId, Frame>,
    clock: u64,
    stats: PoolStats,
}

/// A fixed-capacity LRU cache over a [`PageFile`].
pub struct BufferPool<'f> {
    file: &'f PageFile,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl<'f> BufferPool<'f> {
    /// Create a pool with room for `capacity` pages (≥ 1).
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(file: &'f PageFile, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        Self {
            file,
            capacity,
            inner: Mutex::new(Inner {
                frames: HashMap::with_capacity(capacity),
                clock: 0,
                stats: PoolStats::default(),
            }),
        }
    }

    /// Fetch a page, through the cache.
    pub fn get(&self, id: PageId) -> Page {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let now = inner.clock;
        inner.stats.requests += 1;
        let hit = inner.frames.contains_key(&id);
        if hit {
            inner.stats.hits += 1;
            let frame = inner.frames.get_mut(&id).expect("frame vanished");
            frame.last_used = now;
            return frame.page.clone();
        }
        inner.stats.misses += 1;
        let page = self.file.read_page(id).clone();
        if inner.frames.len() >= self.capacity {
            // Evict the least-recently-used frame.
            if let Some((&victim, _)) = inner.frames.iter().min_by_key(|(_, f)| f.last_used) {
                inner.frames.remove(&victim);
            }
        }
        inner.frames.insert(id, Frame { page: page.clone(), last_used: now });
        page
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Drop every cached page and reset counters (cold-cache experiments).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.frames.clear();
        inner.stats = PoolStats::default();
    }

    /// Configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_with(n: usize) -> PageFile {
        let mut f = PageFile::new();
        for i in 0..n {
            let id = f.alloc();
            f.update_page(id, |p| p.put_u32(0, i as u32));
        }
        f.reset_stats();
        f
    }

    #[test]
    fn hit_avoids_physical_read() {
        let f = file_with(4);
        let pool = BufferPool::new(&f, 2);
        assert_eq!(pool.get(PageId(0)).get_u32(0), 0);
        assert_eq!(pool.get(PageId(0)).get_u32(0), 0);
        let s = pool.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(f.stats().reads, 1, "second access must be served by pool");
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_coldest() {
        let f = file_with(3);
        let pool = BufferPool::new(&f, 2);
        pool.get(PageId(0)); // miss
        pool.get(PageId(1)); // miss
        pool.get(PageId(0)); // hit, freshens 0
        pool.get(PageId(2)); // miss, evicts 1
        pool.get(PageId(0)); // hit
        pool.get(PageId(1)); // miss again (was evicted)
        let s = pool.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 2);
        assert_eq!(f.stats().reads, 4);
    }

    #[test]
    fn clear_resets_everything() {
        let f = file_with(1);
        let pool = BufferPool::new(&f, 1);
        pool.get(PageId(0));
        pool.clear();
        assert_eq!(pool.stats(), PoolStats::default());
        pool.get(PageId(0));
        assert_eq!(pool.stats().misses, 1, "cache must be cold after clear");
    }

    #[test]
    fn capacity_one_works() {
        let f = file_with(2);
        let pool = BufferPool::new(&f, 1);
        pool.get(PageId(0));
        pool.get(PageId(1));
        pool.get(PageId(0));
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 3);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let f = file_with(1);
        let _ = BufferPool::new(&f, 0);
    }
}

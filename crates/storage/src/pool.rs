//! Pinned buffer pool over a [`DiskPageFile`] with clock eviction.
//!
//! The existing [`crate::buffer::BufferPool`] serves the *simulated*
//! [`crate::pagefile::PageFile`] and clones whole pages out. This pool
//! fronts the real on-disk file: callers receive a [`PinnedPage`] guard
//! that keeps the frame pinned (unevictable) while in scope, so decoders
//! can borrow payload bytes without copying.
//!
//! Eviction is the classic clock (second-chance) algorithm: each frame has
//! a reference bit set on access; the clock hand sweeps frames, skipping
//! pinned ones, clearing reference bits, and evicting the first
//! unreferenced unpinned frame. If every frame is pinned the read is
//! served *around* the pool (counted as a miss, nothing cached) rather
//! than deadlocking.
//!
//! Counters ([`PinnedPoolStats`]: requests / hits / misses / evictions)
//! feed the `cc_bufpool_*` Prometheus families exported by cc-service.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::diskfile::DiskPageFile;

/// Buffer pool access counters. Monotonic; snapshot via [`PinnedPool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PinnedPoolStats {
    /// Page requests served (hits + misses).
    pub requests: u64,
    /// Requests satisfied from a resident frame.
    pub hits: u64,
    /// Requests that went to disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
}

impl PinnedPoolStats {
    /// Fraction of requests served from memory (1.0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

struct Frame {
    page_no: u32,
    data: Arc<Vec<u8>>,
    pins: u32,
    referenced: bool,
}

struct PoolInner {
    frames: Vec<Option<Frame>>,
    map: HashMap<u32, usize>,
    hand: usize,
}

/// Clock-eviction buffer pool with pin counts. See module docs.
pub struct PinnedPool {
    inner: Mutex<PoolInner>,
    capacity: usize,
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PinnedPool {
    /// Create a pool holding at most `capacity` pages (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        PinnedPool {
            inner: Mutex::new(PoolInner {
                frames: (0..capacity).map(|_| None).collect(),
                map: HashMap::with_capacity(capacity),
                hand: 0,
            }),
            capacity,
            requests: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently resident.
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Snapshot the access counters.
    pub fn stats(&self) -> PinnedPoolStats {
        PinnedPoolStats {
            requests: self.requests.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Reset the access counters (frames stay resident).
    pub fn reset_stats(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Fetch a page through the pool, pinning its frame for the guard's
    /// lifetime. Checksum failures and I/O errors surface unchanged.
    pub fn get<'p>(&'p self, file: &DiskPageFile, page_no: u32) -> io::Result<PinnedPage<'p>> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&page_no) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let frame = inner.frames[slot].as_mut().expect("mapped frame is resident");
            frame.referenced = true;
            frame.pins += 1;
            let data = Arc::clone(&frame.data);
            return Ok(PinnedPage { pool: Some(self), page_no, data });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Holding the lock across the read keeps the miss path simple and
        // prevents duplicate frames for the same page; reads are sub-µs on
        // page cache and the engine batches per-thread anyway.
        let mut payload = Vec::new();
        file.read_payload(page_no, &mut payload)?;
        let data = Arc::new(payload);
        match Self::find_victim(&mut inner, self.capacity) {
            Some(slot) => {
                if inner.frames[slot].is_some() {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(old) = inner.frames[slot].take() {
                    inner.map.remove(&old.page_no);
                }
                inner.map.insert(page_no, slot);
                inner.frames[slot] =
                    Some(Frame { page_no, data: Arc::clone(&data), pins: 1, referenced: true });
                Ok(PinnedPage { pool: Some(self), page_no, data })
            }
            // Every frame pinned: serve around the pool.
            None => Ok(PinnedPage { pool: None, page_no, data }),
        }
    }

    /// Clock sweep: return a usable slot, or `None` if every frame is pinned.
    fn find_victim(inner: &mut PoolInner, capacity: usize) -> Option<usize> {
        // Two full sweeps: the first clears reference bits, the second is
        // then guaranteed to find an unreferenced unpinned frame if any
        // frame is unpinned at all.
        for _ in 0..2 * capacity {
            let slot = inner.hand;
            inner.hand = (inner.hand + 1) % capacity;
            match inner.frames[slot].as_mut() {
                None => return Some(slot),
                Some(f) if f.pins > 0 => continue,
                Some(f) if f.referenced => f.referenced = false,
                Some(_) => return Some(slot),
            }
        }
        None
    }

    fn unpin(&self, page_no: u32) {
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&page_no) {
            let frame = inner.frames[slot].as_mut().expect("mapped frame is resident");
            debug_assert!(frame.pins > 0, "unpin without pin");
            frame.pins = frame.pins.saturating_sub(1);
        }
    }
}

/// Guard over a resident page's payload; the frame stays pinned until drop.
pub struct PinnedPage<'p> {
    /// `None` when the page was served around a fully-pinned pool.
    pool: Option<&'p PinnedPool>,
    page_no: u32,
    data: Arc<Vec<u8>>,
}

impl PinnedPage<'_> {
    /// Page number this guard refers to.
    pub fn page_no(&self) -> u32 {
        self.page_no
    }
}

impl std::ops::Deref for PinnedPage<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for PinnedPage<'_> {
    fn drop(&mut self) {
        if let Some(pool) = self.pool {
            pool.unpin(self.page_no);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diskfile::DiskPageFileWriter;
    use crate::wal::scratch_dir;

    fn sample_file(tag: &str, pages: u8) -> (std::path::PathBuf, DiskPageFile) {
        let dir = scratch_dir(tag);
        let path = dir.join("pool.ccpg");
        let mut w = DiskPageFileWriter::create(&path).unwrap();
        for i in 0..pages {
            w.append_page(&[i; 64]).unwrap();
        }
        (dir, w.finish().unwrap())
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (dir, file) = sample_file("pool_counts", 4);
        let pool = PinnedPool::new(2);
        for _ in 0..3 {
            let p = pool.get(&file, 0).unwrap();
            assert_eq!(p[0], 0);
        }
        let s = pool.stats();
        assert_eq!((s.requests, s.hits, s.misses), (3, 2, 1));
        assert_eq!(file.reads(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_cycles_through_capacity() {
        let (dir, file) = sample_file("pool_evict", 6);
        let pool = PinnedPool::new(2);
        for i in 0..6 {
            let p = pool.get(&file, i).unwrap();
            assert_eq!(p[0], i as u8);
        }
        let s = pool.stats();
        assert_eq!(s.misses, 6);
        assert_eq!(s.evictions, 4);
        assert_eq!(pool.resident(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let (dir, file) = sample_file("pool_pins", 6);
        let pool = PinnedPool::new(2);
        let pinned = pool.get(&file, 0).unwrap();
        for i in 1..6 {
            let _ = pool.get(&file, i).unwrap();
        }
        // Page 0 was never evicted: re-reading it is a hit.
        let before = pool.stats().hits;
        let again = pool.get(&file, 0).unwrap();
        assert_eq!(pool.stats().hits, before + 1);
        assert_eq!(again[0], pinned[0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fully_pinned_pool_serves_around() {
        let (dir, file) = sample_file("pool_full", 4);
        let pool = PinnedPool::new(2);
        let _a = pool.get(&file, 0).unwrap();
        let _b = pool.get(&file, 1).unwrap();
        let c = pool.get(&file, 2).unwrap();
        assert_eq!(c[0], 2);
        assert_eq!(pool.resident(), 2);
        assert_eq!(pool.stats().evictions, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

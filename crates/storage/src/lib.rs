//! # cc-storage — paged storage substrate
//!
//! The original C2LSH evaluation (and its main competitor, LSB-forest) is
//! *disk-based*: the headline efficiency metric is the number of 4 KiB
//! pages read per query, not wall-clock time. This crate supplies the
//! storage layer those experiments need, built from scratch:
//!
//! * [`page`] — the 4 KiB page unit and typed little-endian access,
//! * [`pagefile`] — a simulated page file with exact logical-I/O
//!   accounting (the substitution for a real spinning disk — see
//!   `DESIGN.md` §2: the paper reports I/O *counts*, which a deterministic
//!   simulation reproduces exactly),
//! * [`buffer`] — an LRU buffer pool distinguishing logical accesses from
//!   physical page reads,
//! * [`bucket_file`] — packed sorted runs of `(bucket, object)` entries
//!   with in-memory fence keys; the on-disk layout of a C2LSH hash table,
//! * [`bptree`] — a B+-tree (bulk-load, insert, point and range search)
//!   with per-node I/O accounting; the index structure behind QALSH,
//! * [`wal`] — a checksummed write-ahead log for online index mutations
//!   (append + fsync + replay with torn-tail truncation), plus the
//!   [`wal::FailpointFile`] fault injector used by the crash-recovery
//!   test suites.
//!
//! The *real* (non-simulated) disk tier added for million-point scale:
//!
//! * [`diskfile`] — an on-disk page file with a checksummed header and a
//!   CRC-32 trailer verified on every read (positioned `pread`-style I/O),
//! * [`codec`] — delta + bitpacked posting-list compression with a plain
//!   fallback,
//! * [`paged_bucket`] — compressed `(bucket, object)` posting runs packed
//!   into disk pages with an in-memory page directory,
//! * [`pool`] — a pinned buffer pool (clock eviction, pin counts,
//!   hit/miss/eviction counters) fronting the disk page file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bptree;
pub mod bucket_file;
pub mod buffer;
pub mod codec;
pub mod diskfile;
pub mod page;
pub mod paged_bucket;
pub mod pagefile;
pub mod pool;
pub mod wal;

pub use bptree::BPlusTree;
pub use bucket_file::BucketFile;
pub use buffer::BufferPool;
pub use diskfile::{DiskPageFile, DiskPageFileWriter, PAYLOAD_BYTES};
pub use page::{Page, PageId, PAGE_SIZE};
pub use paged_bucket::{PostingRun, PostingRunBuilder};
pub use pagefile::{IoStats, PageFile};
pub use pool::{PinnedPage, PinnedPool, PinnedPoolStats};
pub use wal::{FailpointFile, ReplayReport, Wal, WalOp, WalPosition, WalRecord};

//! Posting-list codec: delta encoding + bit-packing with a plain fallback.
//!
//! Bucket posting lists are sorted `u32` point ids. Under virtual rehashing
//! the ids inside one bucket tend to be dense (small gaps), which makes
//! delta + bitpacking an ideal fit. Pathological lists (huge gaps, tiny
//! lists) fall back to plain fixed-width encoding whenever that is not
//! strictly larger.
//!
//! Wire format (all integers little-endian):
//!
//! ```text
//! tag u8        0 = plain, 1 = delta+bitpack
//! count u32     number of ids
//! -- tag 0 --
//! ids           count × u32
//! -- tag 1 --   (count >= 1)
//! first u32     first id
//! width u8      bits per gap, 0..=32
//! gaps          ceil((count-1) * width / 8) bytes, LSB-first bitpacked
//! ```
//!
//! Width 0 is legal and encodes a run of identical ids in zero gap bytes.
//! Input must be non-decreasing; duplicates are preserved exactly.

/// Plain encoding tag byte.
const TAG_PLAIN: u8 = 0;
/// Delta + bitpack encoding tag byte.
const TAG_DELTA: u8 = 1;

/// Size in bytes of the `tag + count` header common to both encodings.
pub const HEADER_BYTES: usize = 5;

/// Encoded size of a plain posting list of `count` ids.
fn plain_size(count: usize) -> usize {
    HEADER_BYTES + count * 4
}

/// Encoded size of a delta+bitpack posting list of `count` ids with the
/// given gap width.
fn delta_size(count: usize, width: u8) -> usize {
    debug_assert!(count >= 1);
    HEADER_BYTES
        + 4
        + 1
        + (count - 1) * width as usize / 8
        + usize::from(!((count - 1) * width as usize).is_multiple_of(8))
}

/// Number of bits needed to represent `v` (0 for 0).
fn bits_for(v: u32) -> u8 {
    (32 - v.leading_zeros()) as u8
}

/// Encode a non-decreasing list of ids, appending to `out`.
///
/// Picks delta+bitpack when it is strictly smaller than plain encoding,
/// plain otherwise. Returns the number of bytes appended.
///
/// # Panics
///
/// Panics if `ids` is decreasing or longer than `u32::MAX`.
pub fn encode_postings(ids: &[u32], out: &mut Vec<u8>) -> usize {
    let count = u32::try_from(ids.len()).expect("posting list longer than u32::MAX");
    let start = out.len();
    let mut width = 0u8;
    for w in ids.windows(2) {
        assert!(w[1] >= w[0], "posting list must be non-decreasing");
        width = width.max(bits_for(w[1] - w[0]));
    }
    if ids.is_empty() || delta_size(ids.len(), width) >= plain_size(ids.len()) {
        out.push(TAG_PLAIN);
        out.extend_from_slice(&count.to_le_bytes());
        for &id in ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        return out.len() - start;
    }
    out.push(TAG_DELTA);
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&ids[0].to_le_bytes());
    out.push(width);
    // LSB-first bit packing: gap i occupies bits [i*width, (i+1)*width).
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    for w in ids.windows(2) {
        let gap = w[1] - w[0];
        acc |= u64::from(gap) << acc_bits;
        acc_bits += u32::from(width);
        while acc_bits >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if acc_bits > 0 {
        out.push((acc & 0xFF) as u8);
    }
    out.len() - start
}

/// Read the header of an encoded posting list: `(count, total encoded bytes)`.
///
/// Lets a scanner skip a group without decoding it. Returns `None` if the
/// buffer is too short or the tag is unknown.
pub fn peek_postings(buf: &[u8]) -> Option<(usize, usize)> {
    if buf.len() < HEADER_BYTES {
        return None;
    }
    let count = u32::from_le_bytes(buf[1..5].try_into().unwrap()) as usize;
    let total = match buf[0] {
        TAG_PLAIN => plain_size(count),
        TAG_DELTA => {
            if count == 0 {
                return None;
            }
            let width = *buf.get(HEADER_BYTES + 4)?;
            if width > 32 {
                return None;
            }
            delta_size(count, width)
        }
        _ => return None,
    };
    if buf.len() < total {
        return None;
    }
    Some((count, total))
}

/// Decode an encoded posting list, appending ids to `out`.
///
/// Returns the number of encoded bytes consumed, or `None` on a malformed
/// buffer (unknown tag, short buffer, width > 32).
pub fn decode_postings(buf: &[u8], out: &mut Vec<u32>) -> Option<usize> {
    let (count, total) = peek_postings(buf)?;
    match buf[0] {
        TAG_PLAIN => {
            for chunk in buf[HEADER_BYTES..total].chunks_exact(4) {
                out.push(u32::from_le_bytes(chunk.try_into().unwrap()));
            }
        }
        TAG_DELTA => {
            let first = u32::from_le_bytes(buf[HEADER_BYTES..HEADER_BYTES + 4].try_into().unwrap());
            let width = buf[HEADER_BYTES + 4];
            out.push(first);
            let mask: u64 = if width == 32 { u64::from(u32::MAX) } else { (1u64 << width) - 1 };
            let gaps = &buf[HEADER_BYTES + 5..total];
            let mut acc: u64 = 0;
            let mut acc_bits: u32 = 0;
            let mut byte_idx = 0usize;
            let mut prev = first;
            for _ in 1..count {
                while acc_bits < u32::from(width) {
                    acc |= u64::from(gaps[byte_idx]) << acc_bits;
                    byte_idx += 1;
                    acc_bits += 8;
                }
                let gap = (acc & mask) as u32;
                acc >>= width;
                acc_bits -= u32::from(width);
                prev = prev.wrapping_add(gap);
                out.push(prev);
            }
        }
        _ => unreachable!("peek_postings validated the tag"),
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(ids: &[u32]) -> Vec<u8> {
        let mut buf = Vec::new();
        let n = encode_postings(ids, &mut buf);
        assert_eq!(n, buf.len());
        let (count, total) = peek_postings(&buf).expect("peek");
        assert_eq!(count, ids.len());
        assert_eq!(total, buf.len());
        let mut out = Vec::new();
        let consumed = decode_postings(&buf, &mut out).expect("decode");
        assert_eq!(consumed, buf.len());
        assert_eq!(out, ids);
        buf
    }

    #[test]
    fn empty_list_round_trips_as_plain() {
        let buf = round_trip(&[]);
        assert_eq!(buf, vec![TAG_PLAIN, 0, 0, 0, 0]);
    }

    #[test]
    fn singleton_round_trips() {
        round_trip(&[0]);
        round_trip(&[u32::MAX]);
    }

    #[test]
    fn dense_run_compresses() {
        let ids: Vec<u32> = (1000..3000).collect();
        let buf = round_trip(&ids);
        assert_eq!(buf[0], TAG_DELTA);
        // 2000 ids with 1-bit gaps: header 5 + first 4 + width 1 + 250 gap bytes.
        assert_eq!(buf.len(), 260);
        assert!(buf.len() * 4 < plain_size(ids.len()));
    }

    #[test]
    fn identical_ids_use_width_zero() {
        let ids = vec![7u32; 100];
        let buf = round_trip(&ids);
        assert_eq!(buf[0], TAG_DELTA);
        assert_eq!(buf.len(), HEADER_BYTES + 5);
    }

    #[test]
    fn pathological_gaps_fall_back_to_plain() {
        let ids = vec![0, u32::MAX];
        let buf = round_trip(&ids);
        assert_eq!(buf[0], TAG_PLAIN);
    }

    #[test]
    fn max_u32_gap_round_trips_when_forced_dense() {
        // Large list with one 32-bit gap: delta still loses to plain, but a
        // mixed list with max gap below 32 bits exercises wide widths.
        let mut ids: Vec<u32> = (0..100).collect();
        ids.push(u32::MAX - 1);
        ids.push(u32::MAX);
        round_trip(&ids);
    }

    #[test]
    fn decode_rejects_truncated_and_unknown() {
        let mut buf = Vec::new();
        encode_postings(&[1, 2, 3, 4, 5, 6, 7, 8], &mut buf);
        let mut out = Vec::new();
        assert!(decode_postings(&buf[..buf.len() - 1], &mut out).is_none());
        assert!(decode_postings(&[9, 0, 0, 0, 0], &mut out).is_none());
        assert!(decode_postings(&[], &mut out).is_none());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn encode_panics_on_decreasing_input() {
        let mut buf = Vec::new();
        encode_postings(&[5, 3], &mut buf);
    }
}

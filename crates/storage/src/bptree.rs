//! A B+-tree with I/O accounting.
//!
//! QALSH (the query-aware extension of C2LSH implemented in the `qalsh`
//! crate) indexes the raw projection `a·o` of every object in one B+-tree
//! per hash function and answers queries by expanding a window around
//! `a·q` — so it needs point search *and* bidirectional leaf iteration.
//!
//! This implementation is an arena-based, multimap (duplicate keys
//! allowed) B+-tree with:
//!
//! * **bulk loading** from sorted pairs (index construction path),
//! * **incremental insert** with leaf/inner splits and root growth,
//! * **lower-bound search** returning a [`Cursor`] that walks leaves in
//!   both directions through doubly-linked leaf pointers,
//! * **I/O accounting**: every node visited is charged one page read,
//!   matching the disk-resident design of the original systems (nodes are
//!   sized so one node = one 4 KiB page).
//!
//! Deletion is intentionally out of scope: none of the reproduced
//! experiments remove objects, and the original systems are also
//! build-once indexes.

use crate::page::PAGE_SIZE;
use std::sync::atomic::{AtomicU64, Ordering};

/// Node identifier inside the arena.
type NodeId = usize;

#[derive(Debug)]
enum Node<K, V> {
    Leaf {
        keys: Vec<K>,
        vals: Vec<V>,
        prev: Option<NodeId>,
        next: Option<NodeId>,
    },
    Inner {
        /// `keys[i]` separates `children[i]` (keys < keys[i]) from
        /// `children[i+1]` (keys ≥ keys[i]).
        keys: Vec<K>,
        children: Vec<NodeId>,
    },
}

/// A B+-tree multimap over `Copy` ordered keys.
#[derive(Debug)]
pub struct BPlusTree<K, V> {
    nodes: Vec<Node<K, V>>,
    root: NodeId,
    leaf_cap: usize,
    inner_cap: usize,
    len: usize,
    reads: AtomicU64,
}

/// A position within the leaf level; yields entries in key order in
/// either direction. Obtained from [`BPlusTree::lower_bound`].
#[derive(Debug, Clone, Copy)]
pub struct Cursor {
    leaf: Option<NodeId>,
    /// Slot within the leaf; may equal the leaf's length transiently
    /// (normalized on use).
    slot: usize,
}

impl<K: Ord + Copy, V: Copy> BPlusTree<K, V> {
    /// An empty tree with node capacities derived from the 4 KiB page
    /// size and the entry width.
    pub fn new() -> Self {
        let leaf_cap = (PAGE_SIZE / (core::mem::size_of::<K>() + core::mem::size_of::<V>())).max(4);
        let inner_cap = (PAGE_SIZE / (core::mem::size_of::<K>() + 8)).max(4);
        Self::with_capacities(leaf_cap, inner_cap)
    }

    /// An empty tree with explicit node capacities (tests use tiny
    /// capacities to force deep trees).
    ///
    /// # Panics
    /// Panics when either capacity is below 4 (splits need room).
    pub fn with_capacities(leaf_cap: usize, inner_cap: usize) -> Self {
        assert!(leaf_cap >= 4 && inner_cap >= 4, "node capacities must be >= 4");
        let root = 0;
        Self {
            nodes: vec![Node::Leaf { keys: Vec::new(), vals: Vec::new(), prev: None, next: None }],
            root,
            leaf_cap,
            inner_cap,
            len: 0,
            reads: AtomicU64::new(0),
        }
    }

    /// Bulk-load from pairs sorted by key (stable: equal keys keep input
    /// order). Much faster than repeated inserts and produces full leaves.
    ///
    /// # Panics
    /// Panics when `pairs` is not sorted by key.
    pub fn bulk_load(pairs: &[(K, V)]) -> Self {
        let mut t = Self::new();
        t.bulk_fill(pairs);
        t
    }

    /// Bulk-load with explicit capacities.
    pub fn bulk_load_with_capacities(pairs: &[(K, V)], leaf_cap: usize, inner_cap: usize) -> Self {
        let mut t = Self::with_capacities(leaf_cap, inner_cap);
        t.bulk_fill(pairs);
        t
    }

    fn bulk_fill(&mut self, pairs: &[(K, V)]) {
        assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_load input must be sorted by key"
        );
        if pairs.is_empty() {
            return;
        }
        self.nodes.clear();
        // Leaves at ~full occupancy.
        let per_leaf = self.leaf_cap;
        let mut level: Vec<(K, NodeId)> = Vec::new(); // (min key, node)
        let mut prev_leaf: Option<NodeId> = None;
        for chunk in pairs.chunks(per_leaf) {
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf {
                keys: chunk.iter().map(|p| p.0).collect(),
                vals: chunk.iter().map(|p| p.1).collect(),
                prev: prev_leaf,
                next: None,
            });
            if let Some(p) = prev_leaf {
                if let Node::Leaf { next, .. } = &mut self.nodes[p] {
                    *next = Some(id);
                }
            }
            prev_leaf = Some(id);
            level.push((chunk[0].0, id));
        }
        // Build inner levels bottom-up.
        while level.len() > 1 {
            let mut upper: Vec<(K, NodeId)> = Vec::new();
            for group in level.chunks(self.inner_cap) {
                let id = self.nodes.len();
                let keys: Vec<K> = group[1..].iter().map(|g| g.0).collect();
                let children: Vec<NodeId> = group.iter().map(|g| g.1).collect();
                self.nodes.push(Node::Inner { keys, children });
                upper.push((group[0].0, id));
            }
            level = upper;
        }
        self.root = level[0].1;
        self.len = pairs.len();
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        loop {
            match &self.nodes[id] {
                Node::Leaf { .. } => return h,
                Node::Inner { children, .. } => {
                    id = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Number of nodes = number of 4 KiB pages the tree would occupy.
    pub fn num_pages(&self) -> usize {
        self.nodes.len()
    }

    /// Page reads charged so far.
    pub fn io_reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Zero the read counter (e.g. after the build phase).
    pub fn reset_io(&self) {
        self.reads.store(0, Ordering::Relaxed);
    }

    fn charge(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Insert a `(key, value)` pair; duplicates are kept (multimap), new
    /// duplicates land after existing equal keys.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some((sep, right)) = self.insert_rec(self.root, key, value) {
            // Root split: grow a new root.
            let old_root = self.root;
            let id = self.nodes.len();
            self.nodes.push(Node::Inner { keys: vec![sep], children: vec![old_root, right] });
            self.root = id;
        }
        self.len += 1;
    }

    /// Recursive insert; returns `Some((separator, new_right))` when the
    /// child split.
    fn insert_rec(&mut self, id: NodeId, key: K, value: V) -> Option<(K, NodeId)> {
        match &mut self.nodes[id] {
            Node::Leaf { keys, vals, .. } => {
                let pos = keys.partition_point(|k| *k <= key);
                keys.insert(pos, key);
                vals.insert(pos, value);
                if keys.len() <= self.leaf_cap {
                    return None;
                }
                // Split leaf.
                let mid = keys.len() / 2;
                let rkeys = keys.split_off(mid);
                let rvals = vals.split_off(mid);
                let sep = rkeys[0];
                let new_id = self.nodes.len();
                let (old_next, _) = match &mut self.nodes[id] {
                    Node::Leaf { next, prev, .. } => (*next, *prev),
                    _ => unreachable!(),
                };
                self.nodes.push(Node::Leaf {
                    keys: rkeys,
                    vals: rvals,
                    prev: Some(id),
                    next: old_next,
                });
                if let Some(n) = old_next {
                    if let Node::Leaf { prev, .. } = &mut self.nodes[n] {
                        *prev = Some(new_id);
                    }
                }
                if let Node::Leaf { next, .. } = &mut self.nodes[id] {
                    *next = Some(new_id);
                }
                Some((sep, new_id))
            }
            Node::Inner { keys, children } => {
                let child_idx = keys.partition_point(|k| *k <= key);
                let child = children[child_idx];
                let split = self.insert_rec(child, key, value)?;
                let (sep, right) = split;
                if let Node::Inner { keys, children } = &mut self.nodes[id] {
                    keys.insert(child_idx, sep);
                    children.insert(child_idx + 1, right);
                    if keys.len() < self.inner_cap {
                        return None;
                    }
                    // Split inner node: middle key moves up.
                    let mid = keys.len() / 2;
                    let up = keys[mid];
                    let rkeys = keys.split_off(mid + 1);
                    keys.pop(); // remove `up`
                    let rchildren = children.split_off(mid + 1);
                    let new_id = self.nodes.len();
                    self.nodes.push(Node::Inner { keys: rkeys, children: rchildren });
                    Some((up, new_id))
                } else {
                    unreachable!()
                }
            }
        }
    }

    /// Cursor at the first entry with `key >= target` (or one-past-the-end
    /// when every key is smaller). Charges one read per node on the root-
    /// to-leaf path.
    pub fn lower_bound(&self, target: K) -> Cursor {
        if self.len == 0 {
            return Cursor { leaf: None, slot: 0 };
        }
        let mut id = self.root;
        loop {
            self.charge();
            match &self.nodes[id] {
                Node::Inner { keys, children } => {
                    let idx = keys.partition_point(|k| *k < target);
                    // For lower_bound, descend into the leftmost child
                    // that can contain `target`: keys[i] is the min of
                    // children[i+1], so `< target` picks correctly.
                    id = children[idx];
                }
                Node::Leaf { keys, next, .. } => {
                    let slot = keys.partition_point(|k| *k < target);
                    if slot == keys.len() {
                        // Past this leaf: normalize to the next leaf's
                        // first slot (charged when the cursor reads it).
                        return Cursor { leaf: *next, slot: 0 };
                    }
                    return Cursor { leaf: Some(id), slot };
                }
            }
        }
    }

    /// Cursor positioned at the very first entry.
    pub fn first(&self) -> Cursor {
        if self.len == 0 {
            return Cursor { leaf: None, slot: 0 };
        }
        let mut id = self.root;
        loop {
            self.charge();
            match &self.nodes[id] {
                Node::Inner { children, .. } => id = children[0],
                Node::Leaf { .. } => return Cursor { leaf: Some(id), slot: 0 },
            }
        }
    }

    /// The entry at `cur`, if any. Does not charge I/O (the cursor's leaf
    /// was charged when reached).
    pub fn get(&self, cur: Cursor) -> Option<(K, V)> {
        let leaf = cur.leaf?;
        match &self.nodes[leaf] {
            Node::Leaf { keys, vals, .. } => keys.get(cur.slot).map(|k| (*k, vals[cur.slot])),
            _ => unreachable!("cursor points at inner node"),
        }
    }

    /// Advance to the next entry; charges one read on leaf transition.
    pub fn advance(&self, cur: Cursor) -> Cursor {
        let Some(leaf) = cur.leaf else { return cur };
        match &self.nodes[leaf] {
            Node::Leaf { keys, next, .. } => {
                if cur.slot + 1 < keys.len() {
                    Cursor { leaf: Some(leaf), slot: cur.slot + 1 }
                } else {
                    if next.is_some() {
                        self.charge();
                    }
                    Cursor { leaf: *next, slot: 0 }
                }
            }
            _ => unreachable!(),
        }
    }

    /// Step back to the previous entry; `None` leaf when already at the
    /// beginning. Charges one read on leaf transition.
    pub fn retreat(&self, cur: Cursor) -> Cursor {
        match cur.leaf {
            Some(leaf) => match &self.nodes[leaf] {
                Node::Leaf { prev, .. } => {
                    if cur.slot > 0 {
                        Cursor { leaf: Some(leaf), slot: cur.slot - 1 }
                    } else {
                        match prev {
                            Some(p) => {
                                self.charge();
                                let plen = self.leaf_len(*p);
                                Cursor { leaf: Some(*p), slot: plen - 1 }
                            }
                            None => Cursor { leaf: None, slot: 0 },
                        }
                    }
                }
                _ => unreachable!(),
            },
            // One-past-the-end: step to the very last entry.
            None => {
                if self.len == 0 {
                    return cur;
                }
                let mut id = self.root;
                loop {
                    self.charge();
                    match &self.nodes[id] {
                        Node::Inner { children, .. } => id = *children.last().unwrap(),
                        Node::Leaf { keys, .. } => {
                            return Cursor { leaf: Some(id), slot: keys.len() - 1 }
                        }
                    }
                }
            }
        }
    }

    fn leaf_len(&self, id: NodeId) -> usize {
        match &self.nodes[id] {
            Node::Leaf { keys, .. } => keys.len(),
            _ => unreachable!(),
        }
    }

    /// All entries with `lo <= key < hi`, in key order (convenience; the
    /// hot paths drive the cursor directly).
    pub fn range(&self, lo: K, hi: K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        let mut cur = self.lower_bound(lo);
        while let Some((k, v)) = self.get(cur) {
            if k >= hi {
                break;
            }
            out.push((k, v));
            cur = self.advance(cur);
        }
        out
    }

    /// Exhaustively check structural invariants; used by tests.
    ///
    /// # Panics
    /// Panics on any violated invariant.
    pub fn validate(&self) {
        // 1. All leaves at the same depth; keys sorted within nodes;
        //    separators bound subtrees; leaf chain consistent.
        let mut leaf_depths = Vec::new();
        self.validate_rec(self.root, None, None, 1, &mut leaf_depths);
        assert!(
            leaf_depths.windows(2).all(|w| w[0] == w[1]),
            "leaves at differing depths: {leaf_depths:?}"
        );
        // 2. Leaf chain covers exactly `len` entries in sorted order.
        let mut count = 0usize;
        let mut cur = self.first();
        let mut last: Option<K> = None;
        while let Some((k, _)) = self.get(cur) {
            if let Some(prev) = last {
                assert!(prev <= k, "leaf chain out of order");
            }
            last = Some(k);
            count += 1;
            cur = self.advance(cur);
        }
        assert_eq!(count, self.len, "leaf chain length mismatch");
    }

    fn validate_rec(
        &self,
        id: NodeId,
        lo: Option<K>,
        hi: Option<K>,
        depth: usize,
        leaf_depths: &mut Vec<usize>,
    ) {
        match &self.nodes[id] {
            Node::Leaf { keys, .. } => {
                assert!(keys.windows(2).all(|w| w[0] <= w[1]), "unsorted leaf");
                for k in keys {
                    if let Some(lo) = lo {
                        assert!(*k >= lo, "leaf key below subtree bound");
                    }
                    if let Some(hi) = hi {
                        // Inclusive: duplicates equal to a separator may
                        // legitimately sit in the left subtree (multimap
                        // splits put `sep = right[0]`, leaving keys == sep
                        // on both sides).
                        assert!(*k <= hi, "leaf key above subtree bound");
                    }
                }
                leaf_depths.push(depth);
            }
            Node::Inner { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1, "inner arity mismatch");
                assert!(keys.windows(2).all(|w| w[0] <= w[1]), "unsorted inner");
                for (i, &c) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                    self.validate_rec(c, clo, chi, depth + 1, leaf_depths);
                }
            }
        }
    }
}

impl<K: Ord + Copy, V: Copy> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(pairs: &[(i64, u32)]) -> BPlusTree<i64, u32> {
        let mut t = BPlusTree::with_capacities(4, 4);
        for &(k, v) in pairs {
            t.insert(k, v);
        }
        t
    }

    #[test]
    fn empty_tree() {
        let t: BPlusTree<i64, u32> = BPlusTree::new();
        assert!(t.is_empty());
        assert!(t.get(t.lower_bound(5)).is_none());
        assert!(t.get(t.first()).is_none());
        t.validate();
    }

    #[test]
    fn insert_and_lower_bound() {
        let t = tiny(&[(10, 0), (20, 1), (5, 2), (15, 3), (25, 4)]);
        t.validate();
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(t.lower_bound(12)), Some((15, 3)));
        assert_eq!(t.get(t.lower_bound(5)), Some((5, 2)));
        assert_eq!(t.get(t.lower_bound(26)), None);
    }

    #[test]
    fn many_inserts_force_deep_tree() {
        let pairs: Vec<(i64, u32)> = (0..500).map(|i| ((i * 7 % 500) as i64, i as u32)).collect();
        let t = tiny(&pairs);
        t.validate();
        assert!(t.height() >= 3, "height {} too small to exercise splits", t.height());
        // Every key findable.
        for k in 0..500i64 {
            assert_eq!(t.get(t.lower_bound(k)).unwrap().0, k);
        }
    }

    #[test]
    fn duplicates_are_kept() {
        let t = tiny(&[(7, 1), (7, 2), (7, 3), (3, 0)]);
        t.validate();
        let got = t.range(7, 8);
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|&(k, _)| k == 7));
    }

    #[test]
    fn range_scan_matches_filter() {
        let pairs: Vec<(i64, u32)> = (0..300).map(|i| (i as i64 * 2, i as u32)).collect();
        let t = BPlusTree::bulk_load_with_capacities(&pairs, 5, 5);
        t.validate();
        let got = t.range(100, 200);
        let want: Vec<(i64, u32)> =
            pairs.iter().copied().filter(|&(k, _)| (100..200).contains(&k)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn bulk_load_equals_inserts() {
        let pairs: Vec<(i64, u32)> = (0..200).map(|i| (i as i64, i as u32)).collect();
        let bulk = BPlusTree::bulk_load_with_capacities(&pairs, 6, 6);
        bulk.validate();
        let mut inc = BPlusTree::with_capacities(6, 6);
        for &(k, v) in &pairs {
            inc.insert(k, v);
        }
        inc.validate();
        assert_eq!(bulk.range(0, 1000), inc.range(0, 1000));
        assert_eq!(bulk.len(), inc.len());
    }

    #[test]
    fn cursor_bidirectional_walk() {
        let pairs: Vec<(i64, u32)> = (0..50).map(|i| (i as i64, i as u32)).collect();
        let t = BPlusTree::bulk_load_with_capacities(&pairs, 4, 4);
        let mut cur = t.lower_bound(25);
        assert_eq!(t.get(cur).unwrap().0, 25);
        // Walk forward to the end.
        let mut fwd = Vec::new();
        while let Some((k, _)) = t.get(cur) {
            fwd.push(k);
            cur = t.advance(cur);
        }
        assert_eq!(fwd, (25..50).collect::<Vec<i64>>());
        // Now walk backward from one-past-the-end.
        let mut cur = t.retreat(cur);
        let mut back = Vec::new();
        while let Some((k, _)) = t.get(cur) {
            back.push(k);
            if k == 0 {
                break;
            }
            cur = t.retreat(cur);
        }
        assert_eq!(back, (0..50).rev().collect::<Vec<i64>>());
    }

    #[test]
    fn retreat_at_beginning_goes_off_end() {
        let t = BPlusTree::bulk_load_with_capacities(&[(1i64, 1u32), (2, 2)], 4, 4);
        let cur = t.first();
        let before = t.retreat(cur);
        assert!(t.get(before).is_none());
    }

    #[test]
    fn io_accounting_scales_with_height() {
        let pairs: Vec<(i64, u32)> = (0..4000).map(|i| (i as i64, i as u32)).collect();
        let t = BPlusTree::bulk_load_with_capacities(&pairs, 8, 8);
        t.reset_io();
        let _ = t.lower_bound(1234);
        let h = t.height() as u64;
        assert_eq!(t.io_reads(), h, "one read per level");
        t.reset_io();
        // A long scan touches ~len/leaf_cap leaves.
        let mut cur = t.lower_bound(0);
        while t.get(cur).is_some() {
            cur = t.advance(cur);
        }
        let reads = t.io_reads();
        let leaves = 4000usize.div_ceil(8) as u64;
        assert!(reads >= leaves && reads <= leaves + h, "reads {reads}, leaves {leaves}");
    }

    #[test]
    fn num_pages_counts_nodes() {
        let pairs: Vec<(i64, u32)> = (0..100).map(|i| (i as i64, i as u32)).collect();
        let t = BPlusTree::bulk_load_with_capacities(&pairs, 10, 10);
        // 10 leaves + 1 root (fits 10 children) = 11 nodes.
        assert_eq!(t.num_pages(), 11);
    }

    #[test]
    #[should_panic(expected = "must be sorted")]
    fn bulk_load_rejects_unsorted() {
        let _ = BPlusTree::bulk_load(&[(3i64, 0u32), (1, 1)]);
    }

    #[test]
    fn default_capacities_from_page_size() {
        let t: BPlusTree<i64, u32> = BPlusTree::new();
        // 4096 / (8 + 4) = 341 entries per leaf.
        assert_eq!(t.leaf_cap, 341);
    }
}

//! Packed sorted runs of `(bucket, object)` entries — the on-disk layout
//! of one C2LSH hash table.
//!
//! A C2LSH hash table is logically a list of `(bucket_id, object_id)`
//! pairs sorted by bucket id (ties by object id). On disk this becomes a
//! contiguous run of 4 KiB pages, each holding
//! `⌊4096 / 12⌋ = 341` entries (`i64` bucket + `u32` object id).
//!
//! The *first key of every page* (the fence keys) is kept in memory —
//! this mirrors a real system where the single-level sparse index over a
//! sorted run (a few KB) is always cached, while leaf pages are charged
//! to the I/O counter. Virtual rehashing then costs exactly
//! `O(window / 341)` page reads per hash table per radius increment.

use crate::page::{Page, PageId, PAGE_SIZE};
use crate::pagefile::PageFile;

/// Bytes per entry: `i64` bucket + `u32` object id.
const ENTRY_BYTES: usize = 12;

/// Entries per 4 KiB page.
pub const ENTRIES_PER_PAGE: usize = PAGE_SIZE / ENTRY_BYTES;

/// One sorted `(bucket, object)` run packed into pages.
#[derive(Debug)]
pub struct BucketFile {
    /// Ids of the pages backing this run, in order.
    pages: Vec<PageId>,
    /// First bucket id stored on each page (in-memory sparse index).
    fences: Vec<i64>,
    /// Total number of entries.
    len: usize,
}

impl BucketFile {
    /// Pack `entries` (must be sorted by bucket, ties by object id) into
    /// freshly allocated pages of `file`.
    ///
    /// # Panics
    /// Panics when `entries` is not sorted — the layout's binary searches
    /// would silently return wrong windows otherwise.
    pub fn build(file: &mut PageFile, entries: &[(i64, u32)]) -> Self {
        assert!(entries.windows(2).all(|w| w[0] <= w[1]), "bucket entries must be sorted");
        let mut pages = Vec::new();
        let mut fences = Vec::new();
        for chunk in entries.chunks(ENTRIES_PER_PAGE) {
            let id = file.alloc();
            let mut page = Page::zeroed();
            for (i, &(bucket, oid)) in chunk.iter().enumerate() {
                page.put_i64(i * ENTRY_BYTES, bucket);
                page.put_u32(i * ENTRY_BYTES + 8, oid);
            }
            file.write_page(id, page);
            pages.push(id);
            fences.push(chunk[0].0);
        }
        Self { pages, fences, len: entries.len() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the run holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of backing pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Index of the first entry with `bucket >= target` (global entry
    /// index in `[0, len]`). Costs at most one page read: the page is
    /// located through the in-memory fence keys first.
    pub fn lower_bound(&self, file: &PageFile, target: i64) -> usize {
        if self.len == 0 {
            return 0;
        }
        // partition_point over fences: first page whose fence >= target
        // may still be preceded by a page containing `target` entries.
        let pp = self.fences.partition_point(|&f| f < target);
        let page_idx = pp.saturating_sub(1);
        let page = file.read_page(self.pages[page_idx]);
        let in_page = self.page_entry_count(page_idx);
        let mut lo = 0usize;
        let mut hi = in_page;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if page.get_i64(mid * ENTRY_BYTES) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let global = page_idx * ENTRIES_PER_PAGE + lo;
        if lo == in_page && pp < self.pages.len() && page_idx + 1 == pp {
            // target falls exactly at the start of the next page
            pp * ENTRIES_PER_PAGE
        } else {
            global
        }
    }

    /// Visit entries with global index in `[from, to)`, in order, calling
    /// `f(bucket, object)` for each. Reads each touched page exactly once.
    ///
    /// # Panics
    /// Panics when `to > len` or `from > to`.
    pub fn scan(&self, file: &PageFile, from: usize, to: usize, mut f: impl FnMut(i64, u32)) {
        assert!(from <= to && to <= self.len, "bad scan range {from}..{to} (len {})", self.len);
        if from == to {
            return;
        }
        let first_page = from / ENTRIES_PER_PAGE;
        let last_page = (to - 1) / ENTRIES_PER_PAGE;
        for p in first_page..=last_page {
            let page = file.read_page(self.pages[p]);
            let base = p * ENTRIES_PER_PAGE;
            let lo = from.max(base) - base;
            let hi = to.min(base + self.page_entry_count(p)) - base;
            for i in lo..hi {
                f(page.get_i64(i * ENTRY_BYTES), page.get_u32(i * ENTRY_BYTES + 8));
            }
        }
    }

    /// Like [`BucketFile::scan`], but stops (and stops reading pages) as
    /// soon as `f` returns `false`. Returns `true` when the full range was
    /// visited.
    pub fn scan_while(
        &self,
        file: &PageFile,
        from: usize,
        to: usize,
        mut f: impl FnMut(i64, u32) -> bool,
    ) -> bool {
        assert!(from <= to && to <= self.len, "bad scan range {from}..{to} (len {})", self.len);
        if from == to {
            return true;
        }
        let first_page = from / ENTRIES_PER_PAGE;
        let last_page = (to - 1) / ENTRIES_PER_PAGE;
        for p in first_page..=last_page {
            let page = file.read_page(self.pages[p]);
            let base = p * ENTRIES_PER_PAGE;
            let lo = from.max(base) - base;
            let hi = to.min(base + self.page_entry_count(p)) - base;
            for i in lo..hi {
                if !f(page.get_i64(i * ENTRY_BYTES), page.get_u32(i * ENTRY_BYTES + 8)) {
                    return false;
                }
            }
        }
        true
    }

    /// Entry at global index `idx` (one page read).
    pub fn entry(&self, file: &PageFile, idx: usize) -> (i64, u32) {
        assert!(idx < self.len, "entry index {idx} out of bounds (len {})", self.len);
        let p = idx / ENTRIES_PER_PAGE;
        let off = (idx % ENTRIES_PER_PAGE) * ENTRY_BYTES;
        let page = file.read_page(self.pages[p]);
        (page.get_i64(off), page.get_u32(off + 8))
    }

    fn page_entry_count(&self, page_idx: usize) -> usize {
        if page_idx + 1 == self.pages.len() {
            self.len - page_idx * ENTRIES_PER_PAGE
        } else {
            ENTRIES_PER_PAGE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_run(n: usize) -> (PageFile, BucketFile, Vec<(i64, u32)>) {
        let mut file = PageFile::new();
        // buckets 0,0,1,1,2,2,... with oid = index
        let entries: Vec<(i64, u32)> = (0..n).map(|i| ((i / 2) as i64 - 5, i as u32)).collect();
        let bf = BucketFile::build(&mut file, &entries);
        file.reset_stats();
        (file, bf, entries)
    }

    #[test]
    fn packs_into_expected_pages() {
        let (_, bf, _) = build_run(1000);
        assert_eq!(bf.len(), 1000);
        assert_eq!(bf.num_pages(), 1000usize.div_ceil(ENTRIES_PER_PAGE));
    }

    #[test]
    fn lower_bound_matches_slice_search() {
        let (file, bf, entries) = build_run(1200);
        for target in -10..=610 {
            let want = entries.partition_point(|e| e.0 < target);
            let got = bf.lower_bound(&file, target);
            assert_eq!(got, want, "target {target}");
        }
    }

    #[test]
    fn lower_bound_costs_at_most_one_read() {
        let (file, bf, _) = build_run(5000);
        let before = file.stats().reads;
        bf.lower_bound(&file, 100);
        assert!(file.stats().reads - before <= 1);
    }

    #[test]
    fn scan_visits_exact_range_and_counts_pages() {
        let (file, bf, entries) = build_run(2000);
        let (from, to) = (100, 1500);
        let mut seen = Vec::new();
        let before = file.stats().reads;
        bf.scan(&file, from, to, |b, o| seen.push((b, o)));
        let pages_touched = file.stats().reads - before;
        assert_eq!(seen, &entries[from..to]);
        let expect_pages = (to - 1) / ENTRIES_PER_PAGE - from / ENTRIES_PER_PAGE + 1;
        assert_eq!(pages_touched, expect_pages as u64);
    }

    #[test]
    fn scan_while_stops_early_and_saves_io() {
        let (file, bf, entries) = build_run(2000);
        let mut seen = 0usize;
        let completed = bf.scan_while(&file, 0, 2000, |b, o| {
            assert_eq!((b, o), entries[seen]);
            seen += 1;
            seen < 100
        });
        assert!(!completed);
        assert_eq!(seen, 100);
        // 100 entries fit in the first page: exactly one read.
        assert_eq!(file.stats().reads, 1);
        // Full traversal returns true.
        assert!(bf.scan_while(&file, 0, 50, |_, _| true));
    }

    #[test]
    fn empty_scan_costs_nothing() {
        let (file, bf, _) = build_run(100);
        let mut calls = 0usize;
        bf.scan(&file, 50, 50, |_, _| calls += 1);
        assert_eq!(calls, 0, "empty-range scan visited {calls} entries; expected none");
        assert_eq!(file.stats().reads, 0);
    }

    #[test]
    fn entry_access() {
        let (file, bf, entries) = build_run(700);
        for idx in [0usize, 1, 340, 341, 699] {
            assert_eq!(bf.entry(&file, idx), entries[idx]);
        }
    }

    #[test]
    fn empty_run() {
        let mut file = PageFile::new();
        let bf = BucketFile::build(&mut file, &[]);
        assert!(bf.is_empty());
        assert_eq!(bf.lower_bound(&file, 0), 0);
    }

    #[test]
    #[should_panic(expected = "must be sorted")]
    fn rejects_unsorted() {
        let mut file = PageFile::new();
        BucketFile::build(&mut file, &[(2, 0), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "bad scan range")]
    fn rejects_bad_range() {
        let (file, bf, _) = build_run(10);
        bf.scan(&file, 5, 11, |_, _| {});
    }
}

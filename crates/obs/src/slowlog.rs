//! Fixed-capacity ring buffer of slow queries.
//!
//! When a query's end-to-end latency crosses the configured threshold
//! the service pushes a [`SlowQuery`] — latency, shape, and whatever
//! span tree was captured — into the ring. The newest entries win;
//! the buffer never grows. Rendered as plain text at `/slowlog`.

use crate::span::SpanRecord;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One slow query as remembered by the ring log.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// Trace id the client saw (0 when the query was not traced).
    pub trace_id: u64,
    /// End-to-end latency, nanoseconds (queue wait + execution).
    pub total_ns: u64,
    /// Requested neighbour count.
    pub k: u32,
    /// Captured span tree (may be empty when the query was not in the
    /// trace sample).
    pub spans: Vec<SpanRecord>,
}

/// Thread-safe ring buffer of the most recent slow queries. The lock
/// is only taken for queries already known to be slow, so it is never
/// on the hot path.
pub struct SlowLog {
    ring: Mutex<VecDeque<SlowQuery>>,
    capacity: usize,
}

impl SlowLog {
    /// A ring remembering at most `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> Self {
        SlowLog { ring: Mutex::new(VecDeque::new()), capacity: capacity.max(1) }
    }

    /// Record a slow query, evicting the oldest entry when full.
    pub fn push(&self, entry: SlowQuery) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// True when nothing slow has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the ring (oldest first) as indented plain text.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let ring = self.ring.lock().unwrap();
        let mut out = String::new();
        let _ = writeln!(out, "# slow queries: {} retained (cap {})", ring.len(), self.capacity);
        for q in ring.iter() {
            let _ = writeln!(
                out,
                "query trace_id={} total={:.3}ms k={} spans={}",
                q.trace_id,
                q.total_ns as f64 / 1e6,
                q.k,
                q.spans.len(),
            );
            for span in &q.spans {
                span.render(&mut out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64) -> SlowQuery {
        SlowQuery { trace_id: id, total_ns: id * 1_000_000, k: 10, spans: Vec::new() }
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = SlowLog::new(3);
        for id in 1..=5 {
            log.push(entry(id));
        }
        assert_eq!(log.len(), 3);
        let text = log.render();
        assert!(!text.contains("trace_id=1 "), "{text}");
        assert!(!text.contains("trace_id=2 "), "{text}");
        assert!(text.contains("trace_id=3 "), "{text}");
        assert!(text.contains("trace_id=5 "), "{text}");
    }

    #[test]
    fn render_includes_spans() {
        let log = SlowLog::new(2);
        log.push(SlowQuery {
            trace_id: 9,
            total_ns: 5_000_000,
            k: 3,
            spans: vec![SpanRecord {
                name: "verify",
                start_ns: 100,
                dur_ns: 200,
                depth: 1,
                detail: 7,
            }],
        });
        let text = log.render();
        assert!(text.contains("verify"), "{text}");
        assert!(text.contains("detail=7"), "{text}");
    }
}

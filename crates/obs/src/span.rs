//! Lightweight tracing spans.
//!
//! A [`Trace`] collects [`SpanRecord`]s for one logical operation (one
//! query, one flush). Spans are opened with [`Trace::span`] — or the
//! [`span!`] macro — and closed by dropping the returned RAII
//! [`SpanGuard`]; nesting depth is tracked automatically so the flat
//! record list reconstructs the tree. A `Trace` is single-threaded by
//! design (`RefCell`, not `Mutex`): each worker owns its own trace and
//! the records are moved out with [`Trace::finish`] when the operation
//! completes.

use std::cell::{Cell, RefCell};
use std::time::Instant;

/// One closed span: a named interval relative to the trace epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (e.g. `"verify"`); part of the span taxonomy
    /// documented in DESIGN.md §10.
    pub name: &'static str,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at open time (root spans are depth 0).
    pub depth: u8,
    /// Free-form payload — a radius, a candidate count, a byte count;
    /// `0` when unused. Interpreted per span name.
    pub detail: u64,
}

impl SpanRecord {
    /// Render one record as an indented text line (for slow-query logs).
    pub fn render(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "{:indent$}{} +{:.3}ms {:.3}ms detail={}",
            "",
            self.name,
            self.start_ns as f64 / 1e6,
            self.dur_ns as f64 / 1e6,
            self.detail,
            indent = self.depth as usize * 2,
        );
    }
}

/// A per-operation span collector. Create one per traced query, open
/// spans against it, then [`finish`](Trace::finish) to take the
/// records.
pub struct Trace {
    epoch: Instant,
    spans: RefCell<Vec<SpanRecord>>,
    depth: Cell<u8>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// A fresh trace; the epoch (t = 0) is now.
    pub fn new() -> Self {
        Trace { epoch: Instant::now(), spans: RefCell::new(Vec::new()), depth: Cell::new(0) }
    }

    /// Open a span. It closes (and its duration is recorded) when the
    /// returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let start = Instant::now();
        let depth = self.depth.get();
        self.depth.set(depth.saturating_add(1));
        let idx = {
            let mut spans = self.spans.borrow_mut();
            spans.push(SpanRecord {
                name,
                start_ns: start.duration_since(self.epoch).as_nanos() as u64,
                dur_ns: 0,
                depth,
                detail: 0,
            });
            spans.len() - 1
        };
        SpanGuard { trace: self, idx, start, detail: 0 }
    }

    /// Append an already-closed record (e.g. spans captured by the
    /// engine on a worker thread), re-based at `offset_ns` past this
    /// trace's epoch and nested under the current depth.
    pub fn adopt(&self, records: &[SpanRecord], offset_ns: u64) {
        let base_depth = self.depth.get();
        let mut spans = self.spans.borrow_mut();
        for r in records {
            spans.push(SpanRecord {
                name: r.name,
                start_ns: r.start_ns.saturating_add(offset_ns),
                dur_ns: r.dur_ns,
                depth: r.depth.saturating_add(base_depth),
                detail: r.detail,
            });
        }
    }

    /// Close the trace and take its records, ordered by open time.
    pub fn finish(self) -> Vec<SpanRecord> {
        self.spans.into_inner()
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.borrow().len()
    }

    /// True when no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// RAII guard for an open span: records the duration on drop.
pub struct SpanGuard<'a> {
    trace: &'a Trace,
    idx: usize,
    start: Instant,
    detail: u64,
}

impl SpanGuard<'_> {
    /// Attach a free-form payload to the span (kept on drop).
    pub fn detail(&mut self, detail: u64) {
        self.detail = detail;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let dur = self.start.elapsed().as_nanos() as u64;
        let mut spans = self.trace.spans.borrow_mut();
        let rec = &mut spans[self.idx];
        rec.dur_ns = dur;
        rec.detail = self.detail;
        self.trace.depth.set(self.trace.depth.get().saturating_sub(1));
    }
}

/// Open a span against a `Trace`, e.g.
/// `let _s = span!(trace, "verify");` — expands to
/// [`Trace::span`], exists for call-site brevity and grep-ability.
#[macro_export]
macro_rules! span {
    ($trace:expr, $name:expr) => {
        $trace.span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_depth() {
        let trace = Trace::new();
        {
            let _outer = trace.span("outer");
            {
                let mut inner = trace.span("inner");
                inner.detail(42);
            }
            let _sibling = trace.span("sibling");
        }
        let records = trace.finish();
        assert_eq!(records.len(), 3);
        assert_eq!((records[0].name, records[0].depth), ("outer", 0));
        assert_eq!((records[1].name, records[1].depth, records[1].detail), ("inner", 1, 42));
        assert_eq!((records[2].name, records[2].depth), ("sibling", 1));
        // Children start no earlier than their parent and all durations
        // are closed.
        assert!(records[1].start_ns >= records[0].start_ns);
        assert!(records[0].dur_ns >= records[1].dur_ns);
    }

    #[test]
    fn adopt_rebases_and_renests() {
        let trace = Trace::new();
        let _outer = trace.span("query");
        let captured =
            vec![SpanRecord { name: "hash", start_ns: 10, dur_ns: 5, depth: 0, detail: 0 }];
        trace.adopt(&captured, 1000);
        drop(_outer);
        let records = trace.finish();
        assert_eq!(records[1].name, "hash");
        assert_eq!(records[1].start_ns, 1010);
        assert_eq!(records[1].depth, 1);
    }

    #[test]
    fn macro_compiles_and_records() {
        let trace = Trace::new();
        {
            let _s = span!(trace, "macro_span");
        }
        assert_eq!(trace.finish()[0].name, "macro_span");
    }
}

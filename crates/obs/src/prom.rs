//! Prometheus text-format exposition.
//!
//! [`PromText`] builds a `text/plain; version=0.0.4` document: every
//! metric family gets exactly one `# HELP` and `# TYPE` line, duplicate
//! family names are rejected (debug assert + silent skip in release,
//! so a scrape never serves an invalid document), and histograms are
//! exposed as summaries with precomputed quantiles — the natural fit
//! for the log-linear [`Histogram`](crate::Histogram), which knows its
//! quantiles but not client-chosen bucket boundaries.

use crate::hist::HistSnapshot;
use std::collections::BTreeSet;
use std::fmt::Write;

/// Quantiles every histogram family exports.
pub(crate) const QUANTILES: [(f64, &str); 4] =
    [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

/// Builder for one exposition document.
#[derive(Default)]
pub struct PromText {
    out: String,
    seen: BTreeSet<String>,
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if a family named `name` was already emitted; registers it
    /// otherwise. Guards every emit below.
    fn register(&mut self, name: &str) -> bool {
        let dup = !self.seen.insert(name.to_string());
        debug_assert!(!dup, "duplicate metric family {name:?}");
        dup
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emit a monotone counter. By convention `name` ends in `_total`.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        if self.register(name) {
            return;
        }
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Emit a gauge (a value that can go both ways).
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        if self.register(name) {
            return;
        }
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Escape a label value per the exposition format (backslash,
    /// double-quote, newline).
    fn escape_label(value: &str) -> String {
        value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
    }

    /// Emit one counter family with a label dimension: one `# HELP` /
    /// `# TYPE` header, then one series per `(label value, count)`
    /// pair. An empty series list emits nothing — an exposition must
    /// not carry a header without samples.
    pub fn counter_labeled(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        series: &[(String, u64)],
    ) {
        if series.is_empty() || self.register(name) {
            return;
        }
        self.header(name, help, "counter");
        for (value, count) in series {
            let v = Self::escape_label(value);
            let _ = writeln!(self.out, "{name}{{{label}=\"{v}\"}} {count}");
        }
    }

    /// Emit one gauge family with a label dimension (see
    /// [`PromText::counter_labeled`]).
    pub fn gauge_labeled(&mut self, name: &str, help: &str, label: &str, series: &[(String, f64)]) {
        if series.is_empty() || self.register(name) {
            return;
        }
        self.header(name, help, "gauge");
        for (value, gauge) in series {
            let v = Self::escape_label(value);
            let _ = writeln!(self.out, "{name}{{{label}=\"{v}\"}} {gauge}");
        }
    }

    /// Emit a nanosecond-valued histogram snapshot as a summary in
    /// seconds: `{quantile="…"}` series plus `_sum` / `_count`.
    /// `name` should end in `_seconds`.
    pub fn summary_seconds(&mut self, name: &str, help: &str, snap: &HistSnapshot) {
        if self.register(name) {
            return;
        }
        self.header(name, help, "summary");
        for (q, label) in QUANTILES {
            let secs = snap.quantile(q) as f64 / 1e9;
            let _ = writeln!(self.out, "{name}{{quantile=\"{label}\"}} {secs:e}");
        }
        let _ = writeln!(self.out, "{name}_sum {:e}", snap.sum as f64 / 1e9);
        let _ = writeln!(self.out, "{name}_count {}", snap.count);
    }

    /// Emit a unitless histogram snapshot (batch sizes, candidate
    /// counts) as a summary over raw values.
    pub fn summary_units(&mut self, name: &str, help: &str, snap: &HistSnapshot) {
        if self.register(name) {
            return;
        }
        self.header(name, help, "summary");
        for (q, label) in QUANTILES {
            let _ = writeln!(self.out, "{name}{{quantile=\"{label}\"}} {}", snap.quantile(q));
        }
        let _ = writeln!(self.out, "{name}_sum {}", snap.sum);
        let _ = writeln!(self.out, "{name}_count {}", snap.count);
    }

    /// Finish the document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn families_have_help_type_and_no_duplicates() {
        let hist = Histogram::new();
        for v in [1_000u64, 2_000, 1_000_000] {
            hist.record(v);
        }
        let mut doc = PromText::new();
        doc.counter("cc_queries_total", "Queries served.", 7);
        doc.gauge("cc_objects", "Indexed objects.", 123.0);
        doc.summary_seconds("cc_query_seconds", "End-to-end latency.", &hist.snapshot());
        let text = doc.finish();

        assert!(text.contains("# HELP cc_queries_total Queries served."), "{text}");
        assert!(text.contains("# TYPE cc_queries_total counter"), "{text}");
        assert!(text.contains("cc_queries_total 7"), "{text}");
        assert!(text.contains("# TYPE cc_query_seconds summary"), "{text}");
        assert!(text.contains("cc_query_seconds{quantile=\"0.99\"}"), "{text}");
        assert!(text.contains("cc_query_seconds_count 3"), "{text}");

        // Exactly one HELP/TYPE per family.
        for family in ["cc_queries_total", "cc_objects", "cc_query_seconds"] {
            let helps = text.matches(&format!("# HELP {family} ")).count();
            assert_eq!(helps, 1, "family {family} must have exactly one HELP");
        }
    }

    #[test]
    fn labeled_families_escape_values_and_share_one_header() {
        let mut doc = PromText::new();
        doc.counter_labeled(
            "cc_collection_queries_total",
            "Queries per collection.",
            "collection",
            &[("alpha".into(), 3), ("we\"ird\\n".into(), 9)],
        );
        doc.gauge_labeled(
            "cc_collection_objects",
            "Objects per collection.",
            "collection",
            &[("alpha".into(), 12.0)],
        );
        doc.counter_labeled("cc_empty_total", "Never emitted.", "collection", &[]);
        let text = doc.finish();
        assert!(text.contains("cc_collection_queries_total{collection=\"alpha\"} 3"), "{text}");
        assert!(
            text.contains("cc_collection_queries_total{collection=\"we\\\"ird\\\\n\"} 9"),
            "{text}"
        );
        assert!(text.contains("cc_collection_objects{collection=\"alpha\"} 12"), "{text}");
        assert_eq!(
            text.matches("# HELP cc_collection_queries_total ").count(),
            1,
            "one header per family: {text}"
        );
        assert!(!text.contains("cc_empty_total"), "empty family must emit nothing: {text}");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "duplicate metric family"))]
    fn duplicate_family_is_rejected() {
        let mut doc = PromText::new();
        doc.counter("cc_x_total", "x", 1);
        doc.counter("cc_x_total", "x again", 2);
        // Release builds skip the duplicate instead of panicking.
        let text = doc.finish();
        let values = text.lines().filter(|l| l.starts_with("cc_x_total ")).count();
        assert_eq!(values, 1, "{text}");
        panic!("duplicate metric family (release-mode path verified)");
    }
}

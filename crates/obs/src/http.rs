//! A minimal HTTP/1.0 scrape listener.
//!
//! Just enough HTTP for `curl` and a Prometheus scraper: one thread,
//! non-blocking accept polled every 25 ms against a stop flag,
//! `Connection: close` on every response, request line parsed and the
//! rest of the headers discarded. Three routes:
//!
//! * `GET /metrics`  → the source's exposition document
//! * `GET /healthz`  → `ok` (200) or `draining` (503)
//! * `GET /slowlog`  → the slow-query ring, plain text
//!
//! Anything else is 404. The listener owns no metrics itself — it
//! renders on demand through the [`MetricsSource`] the caller hands in.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What the listener serves: implemented by the service over its
/// live metric registry.
pub trait MetricsSource: Send + Sync + 'static {
    /// The `/metrics` document (Prometheus text format).
    fn render_metrics(&self) -> String;
    /// The `/slowlog` document (plain text). Default: empty.
    fn render_slowlog(&self) -> String {
        String::new()
    }
    /// `/healthz` state; `false` answers 503 (e.g. while draining).
    fn healthy(&self) -> bool {
        true
    }
}

/// Handle to a running scrape listener; stops (and joins its thread)
/// on [`MetricsServer::stop`] or drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `source`.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        source: Arc<dyn MetricsSource>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new().name("cc-metrics".into()).spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => handle_conn(stream, &*source),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(25)),
                }
            }
        })?;
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the listener thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_conn(stream: TcpStream, source: &dyn MetricsSource) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers (bounded) so well-behaved clients see a clean close.
    for _ in 0..64 {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => {
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", source.render_metrics())
        }
        "/healthz" => {
            if source.healthy() {
                ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string())
            } else {
                ("503 Service Unavailable", "text/plain; charset=utf-8", "draining\n".to_string())
            }
        }
        "/slowlog" => ("200 OK", "text/plain; charset=utf-8", source.render_slowlog()),
        _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
    };
    let mut stream = reader.into_inner();
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Fetch `path` from an HTTP server with a plain `TcpStream` — the
/// client-side twin of this listener, used by loadgen and the CI lint
/// to scrape `/metrics` without an HTTP dependency. Returns the body
/// iff the status is 200.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: scrape\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no header/body split")
    })?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(std::io::Error::other(format!("GET {path}: {status}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl MetricsSource for Fixed {
        fn render_metrics(&self) -> String {
            "# HELP cc_up Up.\n# TYPE cc_up gauge\ncc_up 1\n".into()
        }
        fn render_slowlog(&self) -> String {
            "# slow queries: 0 retained (cap 4)\n".into()
        }
    }

    #[test]
    fn serves_metrics_healthz_slowlog_and_404() {
        let server = MetricsServer::bind("127.0.0.1:0", Arc::new(Fixed)).unwrap();
        let addr = server.local_addr();

        let metrics = http_get(addr, "/metrics").unwrap();
        assert!(metrics.contains("cc_up 1"), "{metrics}");
        let health = http_get(addr, "/healthz").unwrap();
        assert_eq!(health, "ok\n");
        let slow = http_get(addr, "/slowlog").unwrap();
        assert!(slow.starts_with("# slow queries"), "{slow}");
        let err = http_get(addr, "/nope").unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");

        server.stop();
    }

    struct Unhealthy;
    impl MetricsSource for Unhealthy {
        fn render_metrics(&self) -> String {
            String::new()
        }
        fn healthy(&self) -> bool {
            false
        }
    }

    #[test]
    fn unhealthy_source_answers_503() {
        let server = MetricsServer::bind("127.0.0.1:0", Arc::new(Unhealthy)).unwrap();
        let err = http_get(server.local_addr(), "/healthz").unwrap_err();
        assert!(err.to_string().contains("503"), "{err}");
    }
}

//! Cache-padded striped counters.
//!
//! A single `AtomicU64` incremented from every worker thread ping-pongs
//! its cache line between cores. [`Counter`] stripes the value across
//! cache-line-sized slots; each thread hashes to a stable stripe, so
//! under steady load increments stay core-local. Reads sum the stripes
//! — slightly racy (a scrape may miss in-flight increments) but always
//! monotone between scrapes, which is all Prometheus semantics require.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One cache line worth of counter, padded so neighbouring stripes
/// never share a line.
#[repr(align(64))]
#[derive(Default)]
struct Stripe {
    value: AtomicU64,
}

/// Monotonically assign each thread a stripe slot the first time it
/// touches any [`Counter`]; round-robin keeps stripes balanced.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// A striped, monotone `u64` counter safe to bump from any thread.
pub struct Counter {
    stripes: Box<[Stripe]>,
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// A zeroed counter with one stripe per (rounded-up) core, capped
    /// at 16 — beyond that the scrape-time sum costs more than the
    /// contention it avoids.
    pub fn new() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let stripes = cores.min(16).next_power_of_two();
        Counter { stripes: (0..stripes).map(|_| Stripe::default()).collect() }
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        let slot = SLOT.with(|s| *s) & (self.stripes.len() - 1);
        self.stripes[slot].value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all stripes.
    pub fn get(&self) -> u64 {
        self.stripes.iter().map(|s| s.value.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_from_many_threads_are_exact() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..25_000 {
                        c.inc();
                    }
                    c.add(5);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 8 * 25_000 + 8 * 5);
    }

    #[test]
    fn stripe_count_is_a_power_of_two() {
        let c = Counter::new();
        assert!(c.stripes.len().is_power_of_two());
        assert!(c.stripes.len() <= 16);
    }
}

//! Lock-free log-linear histogram with HDR-style bounded relative
//! error.
//!
//! Values (nanoseconds, bytes, batch sizes — any `u64`) are binned
//! into buckets whose width grows geometrically: each power-of-two
//! octave is split into [`SUBBUCKETS`] linear subbuckets, so any
//! reported quantile is within a factor of `1 + 1/32 ≈ 3.2 %` of the
//! true value. Recording is three relaxed atomic ops — no locks, no
//! allocation, no samples retained — so a histogram can sit on the
//! per-query hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear subbuckets per power-of-two octave (`2^SUB_BITS`).
const SUB_BITS: u32 = 5;
/// Number of linear subbuckets in each octave.
pub(crate) const SUBBUCKETS: usize = 1 << SUB_BITS;
/// Values below this are binned exactly (one bucket per value).
const LINEAR_LIMIT: u64 = (SUBBUCKETS as u64) * 2;
/// Total bucket count: 64 exact buckets + 32 per octave for octaves
/// 6..=63 (the full `u64` range).
pub const NUM_BUCKETS: usize = LINEAR_LIMIT as usize + (63 - SUB_BITS as usize) * SUBBUCKETS;

/// Map a value to its bucket index. Total order preserving: if
/// `a <= b` then `index(a) <= index(b)`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) as usize) & (SUBBUCKETS - 1);
    LINEAR_LIMIT as usize + ((msb - SUB_BITS - 1) as usize) * SUBBUCKETS + sub
}

/// Largest value that maps into bucket `idx` — what quantile queries
/// report, so the estimate errs high by at most one bucket width.
fn bucket_upper(idx: usize) -> u64 {
    if idx < LINEAR_LIMIT as usize {
        return idx as u64;
    }
    let rel = idx - LINEAR_LIMIT as usize;
    let octave = (rel / SUBBUCKETS) as u32; // msb = octave + SUB_BITS + 1
    let sub = (rel % SUBBUCKETS) as u128;
    let shift = octave + 1;
    // u128 arithmetic: the top bucket's edge is 2^64 - 1.
    ((((SUBBUCKETS as u128 + sub + 1) << shift) - 1).min(u64::MAX as u128)) as u64
}

/// A concurrent log-linear histogram. `record` is wait-free; `snapshot`
/// produces a consistent-enough copy for exposition (individual bucket
/// reads are relaxed — scrapes tolerate being a few increments apart).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state into an immutable, mergeable snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state. Snapshots form a
/// commutative monoid under [`merge`](HistSnapshot::merge) with
/// [`HistSnapshot::empty`] as the identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (exact, not bucketed).
    pub max: u64,
}

impl HistSnapshot {
    /// The identity snapshot: zero observations.
    pub fn empty() -> Self {
        HistSnapshot { counts: vec![0; NUM_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Fold `other` into `self`: bucket-wise add, `max` of maxima.
    /// Associative and commutative, so per-shard snapshots can be
    /// folded in any order.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded distribution,
    /// within one bucket width of the true value (≤ 1/32 relative
    /// error for values ≥ 64; exact below that). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket's upper edge can overshoot the true
                // maximum; `max` is tracked exactly, so clamp to it.
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Exhaustive over the small range, spot-checked above it.
        let mut prev = bucket_index(0);
        for v in 1..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index must be monotone at v={v}");
            assert!(idx - prev <= 1, "no bucket may be skipped at v={v}");
            prev = idx;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(63), 63);
        assert_eq!(bucket_index(64), 64);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_bounds_its_members() {
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 65_535, 1 << 40, u64::MAX] {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper({idx}) = {upper} < member {v}");
            if upper < u64::MAX {
                assert!(bucket_index(upper) == idx, "upper edge left its own bucket at v={v}");
                assert!(bucket_index(upper + 1) == idx + 1, "upper edge is not tight at v={v}");
            }
        }
    }

    #[test]
    fn quantiles_are_within_relative_error_of_exact() {
        // A deterministic heavy-tailed sample: exact quantiles from the
        // sorted data vs histogram estimates.
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 7u64;
        for _ in 0..50_000 {
            // xorshift; skew into a long tail with a square.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = (x % 10_000) * (x % 97) + x % 50;
            samples.push(v);
        }
        let hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let snap = hist.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = snap.quantile(q);
            assert!(est >= exact, "estimate must err high: q={q} est={est} exact={exact}");
            let rel = (est - exact) as f64 / (exact.max(1)) as f64;
            assert!(rel <= 1.0 / 32.0 + 1e-9, "q={q}: est={est} exact={exact} rel={rel}");
        }
        assert_eq!(snap.count, samples.len() as u64);
        assert_eq!(snap.sum, samples.iter().sum::<u64>());
        assert_eq!(snap.max, *sorted.last().unwrap());
    }

    #[test]
    fn small_values_are_exact() {
        let hist = Histogram::new();
        for v in 0..64u64 {
            hist.record(v);
        }
        let snap = hist.snapshot();
        for v in 0..64u64 {
            let q = (v + 1) as f64 / 64.0;
            assert_eq!(snap.quantile(q), v, "values below 64 must be exact");
        }
    }

    fn snap_of(values: &[u64]) -> HistSnapshot {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn merge_is_associative_commutative_with_identity() {
        let a = snap_of(&[1, 5, 900, 1 << 20]);
        let b = snap_of(&[0, 63, 64, 12345]);
        let c = snap_of(&[7, 7, 7, u64::MAX]);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);

        // a ⊕ b == b ⊕ a
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        // identity
        let mut a_e = a.clone();
        a_e.merge(&HistSnapshot::empty());
        assert_eq!(a_e, a);
        let mut e_a = HistSnapshot::empty();
        e_a.merge(&a);
        assert_eq!(e_a, a);

        // The merged snapshot equals the snapshot of the concatenation.
        let all = snap_of(&[1, 5, 900, 1 << 20, 0, 63, 64, 12345]);
        assert_eq!(ab, all);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let hist = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        hist.record(t * 1_000 + i % 500);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(hist.count(), 80_000);
        assert_eq!(hist.snapshot().count, 80_000);
    }
}

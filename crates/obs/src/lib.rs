//! `cc-obs` — dependency-free observability primitives for the
//! collision-counting engine and its query service.
//!
//! The crate deliberately uses nothing but `std`: the workspace builds
//! offline against vendored shims, so every building block here is
//! hand-rolled and small enough to audit:
//!
//! * [`Histogram`] — a lock-free log-linear histogram (HDR-style):
//!   p50/p90/p99/p999 with a bounded ≤ 1/32 relative error, without
//!   ever storing samples. Snapshots [`merge`](HistSnapshot::merge)
//!   associatively, so per-shard or per-thread histograms fold into a
//!   fleet-wide view.
//! * [`Counter`] — a cache-padded, striped atomic counter for hot
//!   paths where a single `AtomicU64` would bounce between cores.
//! * [`Trace`] / [`SpanGuard`] / [`span!`] — RAII span guards that
//!   record `(name, start, duration, depth, detail)` tuples into a
//!   per-query trace tree; zero allocation when tracing is off.
//! * [`SlowLog`] — a fixed-capacity ring buffer of the slowest / most
//!   recent offending queries with their span trees.
//! * [`PromText`] — Prometheus text-format exposition (`# HELP` /
//!   `# TYPE`, duplicate-series detection, summary quantiles).
//! * [`MetricsServer`] — a minimal HTTP/1.0 listener serving
//!   `/metrics`, `/healthz` and `/slowlog` for scrapers and humans.
//!
//! Everything is opt-in and gated by [`ObsConfig`]: with observability
//! disabled no histogram is touched and no span is allocated, so the
//! query path pays nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod hist;
mod http;
mod prom;
mod slowlog;
mod span;

pub use counter::Counter;
pub use hist::{HistSnapshot, Histogram, NUM_BUCKETS};
pub use http::{http_get, MetricsServer, MetricsSource};
pub use prom::PromText;
pub use slowlog::{SlowLog, SlowQuery};
pub use span::{SpanGuard, SpanRecord, Trace};

/// Run-time switches for the observability layer.
///
/// The default is everything off — the instrumented code paths check
/// these flags before touching any histogram or allocating any span,
/// so a disabled config is free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch: when `false` no metric is recorded at all.
    pub enabled: bool,
    /// Capture a full span tree for every `trace_sample_every`-th
    /// query (`0` disables sampling entirely).
    pub trace_sample_every: u32,
    /// Queries slower than this end-to-end threshold are recorded in
    /// the slow-query ring log (`0` disables the slow log).
    pub slow_query_ms: u64,
    /// Capacity of the slow-query ring buffer.
    pub slow_log_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { enabled: false, trace_sample_every: 0, slow_query_ms: 0, slow_log_capacity: 64 }
    }
}

impl ObsConfig {
    /// A sensible "everything on" config: metrics enabled, every 64th
    /// query traced, queries over 100 ms logged.
    pub fn all_on() -> Self {
        ObsConfig {
            enabled: true,
            trace_sample_every: 64,
            slow_query_ms: 100,
            slow_log_capacity: 64,
        }
    }
}

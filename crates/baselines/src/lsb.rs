//! LSB-forest (Tao, Yi, Sheng, Kalnis — SIGMOD 2009), the paper's main
//! competitor.
//!
//! Each of the `L` LSB-trees hashes every object with `K` p-stable
//! functions, offsets the buckets into `[0, 2^u)`, interleaves the `K`
//! u-bit values into one **z-order value** of `K·u ≤ 128` bits, and
//! stores `(z, oid)` pairs sorted by `z` (the paper uses a B-tree; a
//! sorted run with in-memory fences is page-for-page equivalent for a
//! static index). A query locates its own z-value in every tree and
//! expands bidirectionally, always consuming — across all `2L` frontiers
//! — the entry with the **longest common prefix (LLCP)** with the query's
//! z-value; a long shared prefix means the pair shares large z-order
//! cells in many hash dimensions, i.e. is likely close.
//!
//! Termination follows the paper's two conditions, adapted to this
//! static layout:
//!
//! * **T-quality**: the current k-th candidate distance is at most
//!   `c · w · 2^(u − 1 − ⌊llcp/K⌋)` — no deeper frontier entry can
//!   improve the c-approximation, or
//! * **T-budget**: `budget` candidates were verified (the paper's
//!   `4L·B/page + …` cost cap generalized to a tunable).
//!
//! I/O model (see `DESIGN.md`): each tree costs its search descent plus
//! `⌈visited·20 B / 4096⌉` sequential leaf pages, plus one page per
//! verified candidate — the same page-granularity arithmetic as the
//! disk-based original.

use crate::BaselineStats;
use cc_storage::pagefile::IoStats;
use cc_vector::dataset::Dataset;
use cc_vector::dist::{dot, euclidean_sq_bounded};
use cc_vector::gt::Neighbor;
use cc_vector::topk::TopK;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Bytes per stored entry: 16-byte z-value + 4-byte object id.
const ENTRY_BYTES: u64 = 20;

/// LSB-forest configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LsbConfig {
    /// Hash functions per tree (z-order dimensions). `K·u` must be ≤ 128.
    pub k_funcs: usize,
    /// Number of trees.
    pub l_trees: usize,
    /// Bits per hash value.
    pub u_bits: u32,
    /// Bucket width of the underlying p-stable functions.
    pub w: f64,
    /// Approximation ratio used by the quality stop rule.
    pub c: u32,
    /// Hard candidate budget per query.
    pub budget: usize,
    /// Apply the c-approximation quality stop (T-quality). Disable to
    /// spend the whole budget — higher recall, more I/O.
    pub quality_stop: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LsbConfig {
    fn default() -> Self {
        Self {
            k_funcs: 8,
            l_trees: 16,
            u_bits: 16,
            w: 1.0,
            c: 2,
            budget: 400,
            quality_stop: true,
            seed: 0,
        }
    }
}

/// One LSB-tree: its hash functions and the sorted `(z, oid)` run.
struct LsbTree {
    /// `K` projection vectors.
    proj: Vec<Vec<f32>>,
    /// `K` offsets.
    offsets: Vec<f64>,
    /// Per-function shift making bucket ids non-negative.
    shifts: Vec<i64>,
    /// Sorted `(z, oid)`.
    entries: Vec<(u128, u32)>,
}

/// The LSB-forest index.
pub struct LsbForest<'d> {
    data: &'d Dataset,
    config: LsbConfig,
    trees: Vec<LsbTree>,
    verify_pages: u64,
}

impl<'d> LsbForest<'d> {
    /// Build `L` trees.
    ///
    /// # Panics
    /// Panics on empty data or when `K·u > 128`.
    pub fn build(data: &'d Dataset, config: LsbConfig) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(config.k_funcs > 0 && config.l_trees > 0, "K and L must be positive");
        assert!(
            config.k_funcs as u32 * config.u_bits <= 128,
            "K*u = {} exceeds 128 bits",
            config.k_funcs as u32 * config.u_bits
        );
        assert!(config.w > 0.0, "w must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x15bf_04e5);
        let mut normal = cc_vector::gen::NormalSampler::new();
        let d = data.dim();

        let trees = (0..config.l_trees)
            .map(|_| {
                let proj: Vec<Vec<f32>> = (0..config.k_funcs)
                    .map(|_| (0..d).map(|_| normal.sample(&mut rng) as f32).collect())
                    .collect();
                let offsets: Vec<f64> =
                    (0..config.k_funcs).map(|_| rng.gen::<f64>() * config.w).collect();
                // Raw buckets per function for the whole dataset.
                let mut raw: Vec<Vec<i64>> = Vec::with_capacity(config.k_funcs);
                for f in 0..config.k_funcs {
                    raw.push(
                        data.iter()
                            .map(|v| ((dot(&proj[f], v) + offsets[f]) / config.w).floor() as i64)
                            .collect(),
                    );
                }
                // Shift each function's buckets so the dataset occupies
                // the middle of [0, 2^u): queries below/above clamp.
                let shifts: Vec<i64> = raw
                    .iter()
                    .map(|col| {
                        let min = *col.iter().min().expect("non-empty");
                        let max = *col.iter().max().expect("non-empty");
                        let span = max - min + 1;
                        let slack = ((1i64 << config.u_bits) - span).max(0) / 2;
                        min - slack
                    })
                    .collect();
                let mut entries: Vec<(u128, u32)> = (0..data.len())
                    .map(|i| {
                        let vals: Vec<u64> = (0..config.k_funcs)
                            .map(|f| clamp_bucket(raw[f][i] - shifts[f], config.u_bits))
                            .collect();
                        (interleave(&vals, config.u_bits), i as u32)
                    })
                    .collect();
                entries.sort_unstable();
                LsbTree { proj, offsets, shifts, entries }
            })
            .collect();
        let verify_pages = (d as u64 * 4).div_ceil(4096).max(1);
        Self { data, config, trees, verify_pages }
    }

    fn z_of_query(&self, tree: &LsbTree, q: &[f32]) -> u128 {
        let vals: Vec<u64> = (0..self.config.k_funcs)
            .map(|f| {
                let raw =
                    ((dot(&tree.proj[f], q) + tree.offsets[f]) / self.config.w).floor() as i64;
                clamp_bucket(raw - tree.shifts[f], self.config.u_bits)
            })
            .collect();
        interleave(&vals, self.config.u_bits)
    }

    /// c-k-ANN query by LLCP-priority merge over all trees.
    pub fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, BaselineStats) {
        assert!(k > 0, "k must be positive");
        let mut stats = BaselineStats::default();
        let total_bits = self.config.k_funcs as u32 * self.config.u_bits;
        let mut seen = vec![false; self.data.len()];
        let mut heap: BinaryHeap<Frontier> = BinaryHeap::new();
        let mut qz = Vec::with_capacity(self.trees.len());
        let mut visited_per_tree = vec![0u64; self.trees.len()];

        for (t, tree) in self.trees.iter().enumerate() {
            let z = self.z_of_query(tree, q);
            qz.push(z);
            let pos = tree.entries.partition_point(|e| e.0 < z);
            stats.probes += 1;
            // Search descent: fences in memory, one leaf read.
            stats.io.reads += 1;
            // Two frontiers: entries[pos] going right, entries[pos-1] left.
            if pos < tree.entries.len() {
                heap.push(Frontier::new(t, pos, 1, tree.entries[pos].0, z, total_bits));
            }
            if pos > 0 {
                heap.push(Frontier::new(t, pos - 1, -1, tree.entries[pos - 1].0, z, total_bits));
            }
        }

        let mut candidates: Vec<Neighbor> = Vec::new();
        let mut topk = TopK::new(k);
        while let Some(f) = heap.pop() {
            let tree = &self.trees[f.tree];
            let (_, oid) = tree.entries[f.pos];
            visited_per_tree[f.tree] += 1;
            if !seen[oid as usize] {
                seen[oid as usize] = true;
                stats.candidates_verified += 1;
                let v = self.data.get(oid as usize);
                match euclidean_sq_bounded(v, q, topk.bound_sq()) {
                    Some(d_sq) => {
                        topk.insert(d_sq, oid);
                        candidates.push(Neighbor::new(oid, d_sq.sqrt()));
                    }
                    None => stats.candidates_abandoned += 1,
                }
            }
            // T-budget.
            if stats.candidates_verified >= self.config.budget {
                break;
            }
            // T-quality: the heap is LLCP-ordered, so `f.llcp` only
            // degrades from here. An entry with LLCP ℓ shares
            // `level = ⌊ℓ/K⌋` z-order levels with the query, i.e. a cell
            // of side `w·2^(u−level)` per hash dimension; once the k-th
            // candidate distance is within `c×` the *half* cell side of
            // the best remaining frontier, deeper entries cannot improve
            // the c-approximation and the sweep stops. The k-th distance
            // comes from the incrementally maintained top-k heap root
            // (abandoned candidates are provably farther than it, so
            // this equals the k-th over all verified candidates) —
            // previously this re-sorted every candidate per iteration.
            if self.config.quality_stop && topk.is_full() {
                let dk = topk.worst_dist();
                let level = (f.llcp / self.config.k_funcs as u32).min(self.config.u_bits - 1);
                let half_cell = self.config.w * 2f64.powi((self.config.u_bits - 1 - level) as i32);
                if dk <= self.config.c as f64 * half_cell {
                    break;
                }
            }
            // Push the successor on the same side.
            let next = f.pos as i64 + f.dir as i64;
            if next >= 0 && (next as usize) < tree.entries.len() {
                heap.push(Frontier::new(
                    f.tree,
                    next as usize,
                    f.dir,
                    tree.entries[next as usize].0,
                    qz[f.tree],
                    total_bits,
                ));
            }
        }

        // Sequential leaf pages per tree.
        for v in visited_per_tree {
            stats.io.reads += (v * ENTRY_BYTES).div_ceil(4096);
        }
        stats.io = IoStats {
            reads: stats.io.reads + stats.candidates_verified as u64 * self.verify_pages,
            writes: 0,
        };
        candidates.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        candidates.truncate(k);
        (candidates, stats)
    }

    /// Index size: `L · n` 20-byte entries plus the projection vectors.
    pub fn size_bytes(&self) -> usize {
        let entries = self.config.l_trees * self.data.len() * ENTRY_BYTES as usize;
        let funcs = self.config.l_trees * self.config.k_funcs * (self.data.dim() * 4 + 24);
        entries + funcs
    }

    /// The configuration in effect.
    pub fn config(&self) -> &LsbConfig {
        &self.config
    }
}

/// A directional cursor into one tree, ordered by LLCP with the query.
struct Frontier {
    llcp: u32,
    tree: usize,
    pos: usize,
    dir: i8,
}

impl Frontier {
    fn new(tree: usize, pos: usize, dir: i8, z: u128, qz: u128, total_bits: u32) -> Self {
        let llcp = llcp_bits(z, qz, total_bits);
        Self { llcp, tree, pos, dir }
    }
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.llcp == other.llcp && self.tree == other.tree && self.pos == other.pos
    }
}
impl Eq for Frontier {}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        self.llcp
            .cmp(&other.llcp)
            .then_with(|| other.tree.cmp(&self.tree))
            .then_with(|| other.pos.cmp(&self.pos))
    }
}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Clamp a shifted bucket id into `[0, 2^u)`.
fn clamp_bucket(v: i64, u_bits: u32) -> u64 {
    v.clamp(0, (1i64 << u_bits) - 1) as u64
}

/// Interleave `K` u-bit values MSB-first: output bit `(u−1−j)·K + i`
/// holds bit `(u−1−j)` of value `i` — standard Morton/z-order encoding.
fn interleave(vals: &[u64], u_bits: u32) -> u128 {
    let k = vals.len() as u32;
    debug_assert!(k * u_bits <= 128);
    let mut z: u128 = 0;
    for bit in (0..u_bits).rev() {
        for (i, &v) in vals.iter().enumerate() {
            z = (z << 1) | (((v >> bit) & 1) as u128);
            let _ = i;
        }
    }
    z
}

/// Length of the common prefix of `a` and `b` within their low
/// `total_bits` bits (values produced by [`interleave`]).
fn llcp_bits(a: u128, b: u128, total_bits: u32) -> u32 {
    let x = a ^ b;
    if x == 0 {
        return total_bits;
    }
    let highest = 127 - x.leading_zeros(); // index of highest differing bit
    if highest >= total_bits {
        0
    } else {
        total_bits - 1 - highest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_vector::gen::{generate, Distribution};
    use cc_vector::gt::knn_linear;
    use cc_vector::metrics::recall;

    fn clustered(n: usize, seed: u64) -> Dataset {
        generate(
            Distribution::GaussianMixture { clusters: 16, spread: 0.015, scale: 10.0 },
            n,
            16,
            seed,
        )
    }

    fn cfg() -> LsbConfig {
        LsbConfig {
            k_funcs: 8,
            l_trees: 12,
            u_bits: 14,
            w: 0.5,
            c: 2,
            budget: 300,
            quality_stop: false,
            seed: 5,
        }
    }

    #[test]
    fn interleave_basics() {
        // Two 2-bit values: a=0b10, b=0b01 -> z = a1 b1 a0 b0 = 1 0 0 1.
        assert_eq!(interleave(&[0b10, 0b01], 2), 0b1001);
        assert_eq!(interleave(&[0b11, 0b11], 2), 0b1111);
        assert_eq!(interleave(&[0, 0], 2), 0);
    }

    #[test]
    fn interleave_orders_by_msb() {
        // Differing in the MSB of any value must dominate lower bits.
        let hi = interleave(&[0b100, 0b000], 3);
        let lo = interleave(&[0b011, 0b111], 3);
        assert!(hi > lo);
    }

    #[test]
    fn llcp_properties() {
        let a = interleave(&[0b1010, 0b0101], 4);
        assert_eq!(llcp_bits(a, a, 8), 8);
        let b = interleave(&[0b1010, 0b0100], 4); // differs in last bit of v1
        assert_eq!(llcp_bits(a, b, 8), 7);
        let c = interleave(&[0b0010, 0b0101], 4); // differs in first bit of v0
        assert_eq!(llcp_bits(a, c, 8), 0);
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp_bucket(-5, 4), 0);
        assert_eq!(clamp_bucket(3, 4), 3);
        assert_eq!(clamp_bucket(99, 4), 15);
    }

    #[test]
    fn finds_exact_match() {
        let data = clustered(500, 1);
        let idx = LsbForest::build(&data, cfg());
        let (nn, _) = idx.query(data.get(3), 1);
        assert_eq!(nn[0].id, 3);
        assert_eq!(nn[0].dist, 0.0);
    }

    #[test]
    fn reasonable_recall_on_clusters() {
        let data = clustered(2000, 2);
        let idx = LsbForest::build(&data, cfg());
        let mut total = 0.0;
        for qi in 0..20 {
            let q = data.get(qi * 83);
            let truth = knn_linear(&data, q, 10);
            let (got, _) = idx.query(q, 10);
            total += recall(&got, &truth);
        }
        let r = total / 20.0;
        assert!(r > 0.5, "recall {r} too low");
    }

    #[test]
    fn budget_caps_verification() {
        let data = clustered(3000, 3);
        let small = LsbForest::build(&data, LsbConfig { budget: 50, ..cfg() });
        let (_, stats) = small.query(data.get(0), 10);
        assert!(stats.candidates_verified <= 50);
    }

    #[test]
    fn io_counted() {
        let data = clustered(1000, 4);
        let idx = LsbForest::build(&data, cfg());
        let (_, stats) = idx.query(data.get(1), 5);
        assert!(stats.io.reads as usize >= idx.config().l_trees);
    }

    #[test]
    fn size_scales_with_trees() {
        let data = clustered(500, 5);
        let a = LsbForest::build(&data, LsbConfig { l_trees: 4, ..cfg() });
        let b = LsbForest::build(&data, LsbConfig { l_trees: 8, ..cfg() });
        assert!(b.size_bytes() > a.size_bytes());
    }

    #[test]
    #[should_panic(expected = "exceeds 128 bits")]
    fn rejects_oversized_z() {
        let data = clustered(10, 6);
        let _ = LsbForest::build(&data, LsbConfig { k_funcs: 10, u_bits: 16, ..cfg() });
    }

    #[test]
    fn determinism() {
        let data = clustered(400, 7);
        let a = LsbForest::build(&data, cfg());
        let b = LsbForest::build(&data, cfg());
        assert_eq!(a.query(data.get(11), 5).0, b.query(data.get(11), 5).0);
    }
}

//! Exact linear scan.
//!
//! The quality upper bound (ratio 1.0, recall 1.0) and the cost lower
//! bound every approximate method must beat. Its disk cost model is the
//! full sequential read of the data file: `⌈n·d·4 / 4096⌉` pages.

use crate::BaselineStats;
use cc_storage::pagefile::IoStats;
use cc_vector::dataset::Dataset;
use cc_vector::gt::{knn_linear, Neighbor};

/// Linear-scan "index" (borrowing the dataset).
#[derive(Debug)]
pub struct LinearScan<'d> {
    data: &'d Dataset,
}

impl<'d> LinearScan<'d> {
    /// Wrap a dataset.
    pub fn new(data: &'d Dataset) -> Self {
        Self { data }
    }

    /// Exact k-NN plus its (trivially predictable) cost.
    pub fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, BaselineStats) {
        let nn = knn_linear(self.data, q, k);
        let bytes = self.data.payload_bytes();
        let stats = BaselineStats {
            candidates_verified: self.data.len(),
            probes: 1,
            io: IoStats { reads: (bytes as u64).div_ceil(4096), writes: 0 },
            ..BaselineStats::default()
        };
        (nn, stats)
    }

    /// Index size: zero — linear scan needs no auxiliary structure.
    pub fn size_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_costed() {
        let data = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![3.0, 3.0]]);
        let scan = LinearScan::new(&data);
        let (nn, stats) = scan.query(&[0.9, 0.9], 2);
        assert_eq!(nn[0].id, 1);
        assert_eq!(nn[1].id, 0);
        assert_eq!(stats.candidates_verified, 3);
        assert_eq!(stats.io.reads, 1); // 24 bytes -> 1 page
        assert_eq!(scan.size_bytes(), 0);
    }
}

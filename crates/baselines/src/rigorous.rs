//! Rigorous-LSH: one E2LSH index per search radius.
//!
//! The theoretically clean way to answer c-ANN with the static framework
//! is to reduce it to `(R, c)`-NN instances for `R ∈ {1, c, c², …}` and
//! build a *separate* E2LSH index for each radius (bucket width `w·R`).
//! The index size multiplies by the number of radii — exactly the
//! overhead C2LSH's virtual rehashing eliminates, and the comparison the
//! paper's index-size table makes.
//!
//! The query walks the radii in increasing order and stops at the first
//! radius that yields `k` candidates within `c·R`.

use crate::e2lsh::{E2lsh, E2lshConfig};
use crate::BaselineStats;
use cc_vector::dataset::Dataset;
use cc_vector::gt::Neighbor;

/// Rigorous-LSH configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigorousConfig {
    /// Base E2LSH shape (applied at every radius, width scaled by `R`).
    pub base: E2lshConfig,
    /// Integer approximation ratio (radius multiplier between levels).
    pub c: u32,
    /// Number of radius levels `R = 1, c, …, c^(levels-1)`.
    pub levels: u32,
}

impl Default for RigorousConfig {
    fn default() -> Self {
        Self { base: E2lshConfig::default(), c: 2, levels: 12 }
    }
}

/// One E2LSH index per radius.
pub struct RigorousLsh<'d> {
    indexes: Vec<E2lsh<'d>>,
    config: RigorousConfig,
}

impl<'d> RigorousLsh<'d> {
    /// Build all `levels` physical indexes.
    ///
    /// # Panics
    /// Panics on empty data, `c < 2`, or zero levels.
    pub fn build(data: &'d Dataset, config: RigorousConfig) -> Self {
        assert!(config.c >= 2, "c must be >= 2");
        assert!(config.levels > 0, "need at least one radius level");
        let indexes = (0..config.levels)
            .map(|lvl| {
                let r = (config.c as f64).powi(lvl as i32);
                let cfg = E2lshConfig {
                    w: config.base.w * r,
                    seed: config.base.seed.wrapping_add(lvl as u64),
                    ..config.base
                };
                E2lsh::build(data, cfg)
            })
            .collect();
        Self { indexes, config }
    }

    /// c-k-ANN by radius sweep.
    pub fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, BaselineStats) {
        let mut stats = BaselineStats::default();
        let mut best: Vec<Neighbor> = Vec::new();
        for (lvl, index) in self.indexes.iter().enumerate() {
            let r = (self.config.c as f64).powi(lvl as i32);
            let (nn, s) = index.query(q, k);
            stats.candidates_verified += s.candidates_verified;
            stats.probes += s.probes;
            stats.io.reads += s.io.reads;
            merge_neighbors(&mut best, &nn, k);
            let within = best.iter().filter(|n| n.dist <= self.config.c as f64 * r).count();
            if within >= k {
                break;
            }
        }
        (best, stats)
    }

    /// Sum of the per-radius index sizes — the number the paper's
    /// index-size comparison holds against C2LSH.
    pub fn size_bytes(&self) -> usize {
        self.indexes.iter().map(|i| i.size_bytes()).sum()
    }

    /// Number of physical radius levels.
    pub fn num_levels(&self) -> usize {
        self.indexes.len()
    }
}

/// Merge `new` into `best`, dedupe by id, keep the `k` nearest.
fn merge_neighbors(best: &mut Vec<Neighbor>, new: &[Neighbor], k: usize) {
    for n in new {
        if !best.iter().any(|b| b.id == n.id) {
            best.push(*n);
        }
    }
    best.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    best.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_vector::gen::{generate, Distribution};

    fn clustered(n: usize, seed: u64) -> Dataset {
        generate(
            Distribution::GaussianMixture { clusters: 8, spread: 0.015, scale: 10.0 },
            n,
            12,
            seed,
        )
    }

    fn cfg() -> RigorousConfig {
        RigorousConfig {
            base: E2lshConfig { k_funcs: 4, l_tables: 16, w: 0.5, seed: 3 },
            c: 2,
            levels: 8,
        }
    }

    #[test]
    fn finds_exact_match_early() {
        let data = clustered(400, 1);
        let idx = RigorousLsh::build(&data, cfg());
        let (nn, _) = idx.query(data.get(9), 1);
        assert_eq!(nn[0].id, 9);
    }

    #[test]
    fn size_is_levels_times_single() {
        let data = clustered(200, 2);
        let multi = RigorousLsh::build(&data, cfg());
        let single = E2lsh::build(&data, cfg().base);
        assert_eq!(multi.num_levels(), 8);
        assert_eq!(multi.size_bytes(), 8 * single.size_bytes());
    }

    #[test]
    fn radius_sweep_accumulates_cost() {
        let data = clustered(400, 3);
        let idx = RigorousLsh::build(&data, cfg());
        // A far query must climb several radii.
        let far = vec![500.0f32; 12];
        let (_, stats) = idx.query(&far, 1);
        assert!(stats.probes >= 16, "expected probes across multiple radii");
    }

    #[test]
    fn merge_dedupes_and_truncates() {
        let mut best = vec![Neighbor::new(1, 1.0), Neighbor::new(2, 2.0)];
        merge_neighbors(&mut best, &[Neighbor::new(1, 1.0), Neighbor::new(3, 0.5)], 2);
        assert_eq!(best.len(), 2);
        assert_eq!(best[0].id, 3);
        assert_eq!(best[1].id, 1);
    }

    #[test]
    #[should_panic(expected = "c must be >= 2")]
    fn rejects_bad_c() {
        let data = clustered(10, 4);
        let _ = RigorousLsh::build(&data, RigorousConfig { c: 1, ..cfg() });
    }
}

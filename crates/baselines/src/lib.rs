//! # cc-baselines — comparators for the C2LSH evaluation
//!
//! Every method the paper's figures compare against, implemented from
//! scratch on the same substrates:
//!
//! * [`linear`] — exact linear scan (ground truth / upper bound),
//! * [`e2lsh`] — classic E2LSH: static concatenation of `K` p-stable
//!   functions into `L` hash tables,
//! * [`rigorous`] — rigorous-LSH: one E2LSH index per search radius
//!   `R ∈ {1, c, c², …}` (the index-size blow-up C2LSH eliminates),
//! * [`lsb`] — LSB-forest (Tao et al., SIGMOD 2009): z-order-encoded
//!   compound hashes in `L` sorted trees merged by longest-common-prefix
//!   priority; the paper's primary competitor.
//!
//! All query entry points return `(Vec<Neighbor>, BaselineStats)` so the
//! harness can tabulate cost alongside quality uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod e2lsh;
pub mod linear;
pub mod lsb;
pub mod multiprobe;
pub mod rigorous;

use cc_storage::pagefile::IoStats;

/// Uniform per-query cost counters for the baseline methods.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BaselineStats {
    /// Objects whose true distance was computed.
    pub candidates_verified: usize,
    /// Of the verified candidates, how many the early-abandon kernel cut
    /// short (partial distance already beyond the running k-th best).
    /// They still count in `candidates_verified` and in the I/O model —
    /// the page fetch happens before the distance loop.
    pub candidates_abandoned: usize,
    /// Hash-table buckets / tree positions probed.
    pub probes: usize,
    /// Modeled page I/O (4 KiB granularity; see each module's cost model).
    pub io: IoStats,
}

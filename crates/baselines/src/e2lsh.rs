//! E2LSH: the static concatenating search framework.
//!
//! The classical scheme of Datar et al. / Andoni's E2LSH package:
//! concatenate `K` i.i.d. p-stable functions into one compound hash
//! `G(o) = (h_1(o), …, h_K(o))`, build `L` independent tables, and at
//! query time verify everything in the `L` buckets `G_j(q)`.
//!
//! This is exactly the framework whose trade-off C2LSH attacks: driving
//! false positives down via `K` also drives true positives down, forcing
//! `L` (and the index size, `O(n·L)` entries plus `K·L` functions) up.
//!
//! Compound keys are SipHash-compressed to `u64`; with `n ≤ 10⁷` the
//! collision probability is ≪ 10⁻⁴ per bucket pair and only ever *adds*
//! false candidates (never loses true ones).

use crate::BaselineStats;
use cc_storage::pagefile::IoStats;
use cc_vector::dataset::Dataset;
use cc_vector::dist::{dot, euclidean_sq_bounded};
use cc_vector::gt::Neighbor;
use cc_vector::topk::TopK;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// One p-stable function (kept local: E2LSH needs no virtual rehashing,
/// so its offsets live in plain `[0, w)`).
#[derive(Debug, Clone)]
struct HashFn {
    a: Vec<f32>,
    b: f64,
    w: f64,
}

impl HashFn {
    fn bucket(&self, o: &[f32]) -> i64 {
        ((dot(&self.a, o) + self.b) / self.w).floor() as i64
    }
}

/// E2LSH configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E2lshConfig {
    /// Number of concatenated functions per compound hash.
    pub k_funcs: usize,
    /// Number of hash tables.
    pub l_tables: usize,
    /// Bucket width.
    pub w: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for E2lshConfig {
    fn default() -> Self {
        Self { k_funcs: 8, l_tables: 32, w: 2.184, seed: 0 }
    }
}

/// The E2LSH index.
pub struct E2lsh<'d> {
    data: &'d Dataset,
    config: E2lshConfig,
    /// `l_tables × k_funcs` functions, row-major.
    functions: Vec<HashFn>,
    tables: Vec<HashMap<u64, Vec<u32>>>,
    /// Pages per candidate verification.
    verify_pages: u64,
}

impl<'d> E2lsh<'d> {
    /// Build the `L` tables.
    ///
    /// # Panics
    /// Panics on empty data or zero `K`/`L`/`w`.
    pub fn build(data: &'d Dataset, config: E2lshConfig) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(config.k_funcs > 0 && config.l_tables > 0, "K and L must be positive");
        assert!(config.w > 0.0, "w must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xe215_4afe);
        let mut normal = cc_vector::gen::NormalSampler::new();
        let d = data.dim();
        let functions: Vec<HashFn> = (0..config.l_tables * config.k_funcs)
            .map(|_| HashFn {
                a: (0..d).map(|_| normal.sample(&mut rng) as f32).collect(),
                b: rng.gen::<f64>() * config.w,
                w: config.w,
            })
            .collect();

        let mut tables = vec![HashMap::new(); config.l_tables];
        let mut key_buf = Vec::with_capacity(config.k_funcs);
        for (i, v) in data.iter().enumerate() {
            for (t, table) in tables.iter_mut().enumerate() {
                key_buf.clear();
                for f in 0..config.k_funcs {
                    key_buf.push(functions[t * config.k_funcs + f].bucket(v));
                }
                let key = compress(&key_buf);
                table.entry(key).or_insert_with(Vec::new).push(i as u32);
            }
        }
        let verify_pages = (d as u64 * 4).div_ceil(4096).max(1);
        Self { data, config, functions, tables, verify_pages }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &E2lshConfig {
        &self.config
    }

    /// c-k-ANN query: verify everything colliding with `q` in any of the
    /// `L` buckets.
    pub fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, BaselineStats) {
        assert!(k > 0, "k must be positive");
        let mut stats = BaselineStats::default();
        let mut seen = vec![false; self.data.len()];
        // Retained candidates for final (dist, id) ranking; the top-k
        // accumulator's root feeds the early-abandon bound (its slack
        // keeps the final ranking identical to full verification).
        let mut candidates: Vec<Neighbor> = Vec::new();
        let mut topk = TopK::new(k);
        let mut key_buf = Vec::with_capacity(self.config.k_funcs);
        for t in 0..self.config.l_tables {
            key_buf.clear();
            for f in 0..self.config.k_funcs {
                key_buf.push(self.functions[t * self.config.k_funcs + f].bucket(q));
            }
            let key = compress(&key_buf);
            stats.probes += 1;
            // One page read per probed bucket (hash directory assumed
            // cached, bucket chain read from disk).
            stats.io.reads += 1;
            if let Some(bucket) = self.tables[t].get(&key) {
                // Long chains spill over pages: 12 B per entry.
                stats.io.reads += (bucket.len() as u64 * 12) / 4096;
                for &oid in bucket {
                    if !seen[oid as usize] {
                        seen[oid as usize] = true;
                        stats.candidates_verified += 1;
                        let v = self.data.get(oid as usize);
                        match euclidean_sq_bounded(v, q, topk.bound_sq()) {
                            Some(d_sq) => {
                                topk.insert(d_sq, oid);
                                candidates.push(Neighbor::new(oid, d_sq.sqrt()));
                            }
                            None => stats.candidates_abandoned += 1,
                        }
                    }
                }
            }
        }
        stats.io = IoStats {
            reads: stats.io.reads + stats.candidates_verified as u64 * self.verify_pages,
            writes: 0,
        };
        candidates.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        candidates.truncate(k);
        (candidates, stats)
    }

    /// Index size: `L` tables of `n` 12-byte entries plus `K·L` functions.
    pub fn size_bytes(&self) -> usize {
        let entries = self.config.l_tables * self.data.len() * 12;
        let funcs = self.functions.len() * (self.data.dim() * 4 + 16);
        entries + funcs
    }
}

/// Compress a compound key to `u64` with SipHash (std's default hasher).
fn compress(key: &[i64]) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_vector::gen::{generate, Distribution};
    use cc_vector::gt::knn_linear;
    use cc_vector::metrics::recall;

    fn clustered(n: usize, seed: u64) -> Dataset {
        generate(
            Distribution::GaussianMixture { clusters: 16, spread: 0.015, scale: 10.0 },
            n,
            16,
            seed,
        )
    }

    fn cfg() -> E2lshConfig {
        E2lshConfig { k_funcs: 6, l_tables: 48, w: 1.0, seed: 9 }
    }

    #[test]
    fn finds_exact_match() {
        let data = clustered(500, 1);
        let idx = E2lsh::build(&data, cfg());
        let (nn, stats) = idx.query(data.get(7), 1);
        assert_eq!(nn[0].id, 7);
        assert_eq!(nn[0].dist, 0.0);
        assert_eq!(stats.probes, 48);
    }

    #[test]
    fn reasonable_recall_on_clusters() {
        let data = clustered(2000, 2);
        let idx = E2lsh::build(&data, cfg());
        let mut total = 0.0;
        for qi in 0..20 {
            let q = data.get(qi * 97);
            let truth = knn_linear(&data, q, 10);
            let (got, _) = idx.query(q, 10);
            total += recall(&got, &truth);
        }
        let r = total / 20.0;
        assert!(r > 0.5, "recall {r} too low for generous K/L");
    }

    #[test]
    fn no_duplicate_candidates_across_tables() {
        let data = clustered(300, 3);
        let idx = E2lsh::build(&data, cfg());
        let (_, stats) = idx.query(data.get(0), 5);
        assert!(stats.candidates_verified <= data.len());
    }

    #[test]
    fn size_grows_linearly_in_l() {
        let data = clustered(400, 4);
        let small = E2lsh::build(&data, E2lshConfig { l_tables: 8, ..cfg() });
        let big = E2lsh::build(&data, E2lshConfig { l_tables: 16, ..cfg() });
        assert!(big.size_bytes() > small.size_bytes());
        assert!(big.size_bytes() < 3 * small.size_bytes());
    }

    #[test]
    fn determinism() {
        let data = clustered(300, 5);
        let a = E2lsh::build(&data, cfg());
        let b = E2lsh::build(&data, cfg());
        assert_eq!(a.query(data.get(1), 5).0, b.query(data.get(1), 5).0);
    }

    #[test]
    fn larger_k_funcs_reduces_candidates() {
        let data = clustered(2000, 6);
        let loose = E2lsh::build(&data, E2lshConfig { k_funcs: 2, ..cfg() });
        let tight = E2lsh::build(&data, E2lshConfig { k_funcs: 10, ..cfg() });
        let q = data.get(50);
        let (_, s_loose) = loose.query(q, 10);
        let (_, s_tight) = tight.query(q, 10);
        assert!(
            s_tight.candidates_verified < s_loose.candidates_verified,
            "tight {} !< loose {}",
            s_tight.candidates_verified,
            s_loose.candidates_verified
        );
    }

    #[test]
    #[should_panic(expected = "K and L must be positive")]
    fn rejects_zero_k() {
        let data = clustered(10, 7);
        let _ = E2lsh::build(&data, E2lshConfig { k_funcs: 0, ..cfg() });
    }
}

//! Multi-Probe LSH (Lv, Josephson, Wang, Charikar, Li — VLDB 2007).
//!
//! The classic space-saving variant of the static concatenating
//! framework: instead of adding more tables, each query probes — in
//! addition to its own bucket — a sequence of *perturbed* buckets
//! `G(q) + Δ` chosen in increasing order of estimated miss probability.
//! This lets `L` drop by an order of magnitude at equal recall, which is
//! why it became the standard E2LSH deployment mode and a natural
//! comparison point for C2LSH's indexing-overhead argument.
//!
//! The perturbation sequence follows the paper's *query-directed*
//! scheme: for each of the `K` hash coordinates, the distance from the
//! projection to the adjacent bucket boundary (`x_i(−1)` below, and
//! `w − x_i(−1)` for `+1`) scores a ±1 perturbation; perturbation *sets*
//! are enumerated in increasing total score with the shift/expand heap
//! construction, so buckets most likely to hold near neighbors are
//! probed first.

use crate::BaselineStats;
use cc_storage::pagefile::IoStats;
use cc_vector::dataset::Dataset;
use cc_vector::dist::{dot, euclidean_sq_bounded};
use cc_vector::gt::Neighbor;
use cc_vector::topk::TopK;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{Hash, Hasher};

/// Multi-Probe LSH configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiProbeConfig {
    /// Concatenated functions per table.
    pub k_funcs: usize,
    /// Number of tables (much smaller than plain E2LSH needs).
    pub l_tables: usize,
    /// Bucket width.
    pub w: f64,
    /// Number of *additional* probes per table (0 = plain E2LSH).
    pub probes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultiProbeConfig {
    fn default() -> Self {
        Self { k_funcs: 8, l_tables: 8, w: 2.184, probes: 16, seed: 0 }
    }
}

struct HashFn {
    a: Vec<f32>,
    b: f64,
}

/// The Multi-Probe LSH index.
pub struct MultiProbeLsh<'d> {
    data: &'d Dataset,
    config: MultiProbeConfig,
    /// `l_tables × k_funcs` functions, row-major.
    functions: Vec<HashFn>,
    tables: Vec<HashMap<u64, Vec<u32>>>,
    verify_pages: u64,
}

/// One perturbation set in the heap, ordered by ascending score.
struct PSet {
    score: f64,
    /// Indices into the sorted per-coordinate perturbation list.
    set: Vec<usize>,
}

impl PartialEq for PSet {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl Eq for PSet {}
impl Ord for PSet {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on score.
        other.score.total_cmp(&self.score)
    }
}
impl PartialOrd for PSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<'d> MultiProbeLsh<'d> {
    /// Build the `L` tables.
    ///
    /// # Panics
    /// Panics on empty data or degenerate parameters.
    pub fn build(data: &'d Dataset, config: MultiProbeConfig) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(config.k_funcs > 0 && config.l_tables > 0, "K and L must be positive");
        assert!(config.w > 0.0, "w must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x6d70_4c53);
        let mut normal = cc_vector::gen::NormalSampler::new();
        let d = data.dim();
        let functions: Vec<HashFn> = (0..config.l_tables * config.k_funcs)
            .map(|_| HashFn {
                a: (0..d).map(|_| normal.sample(&mut rng) as f32).collect(),
                b: rng.gen::<f64>() * config.w,
            })
            .collect();
        let mut tables = vec![HashMap::new(); config.l_tables];
        let mut key = Vec::with_capacity(config.k_funcs);
        for (i, v) in data.iter().enumerate() {
            for (t, table) in tables.iter_mut().enumerate() {
                key.clear();
                for f in 0..config.k_funcs {
                    let hf = &functions[t * config.k_funcs + f];
                    key.push(((dot(&hf.a, v) + hf.b) / config.w).floor() as i64);
                }
                table.entry(compress(&key)).or_insert_with(Vec::new).push(i as u32);
            }
        }
        let verify_pages = (d as u64 * 4).div_ceil(4096).max(1);
        Self { data, config, functions, tables, verify_pages }
    }

    /// Generate the probing sequence for one table: the home bucket plus
    /// up to `probes` perturbed buckets in ascending score order
    /// (shift/expand enumeration over per-coordinate ±1 perturbations).
    fn probe_sequence(&self, t: usize, q: &[f32]) -> Vec<Vec<i64>> {
        let kf = self.config.k_funcs;
        let w = self.config.w;
        // Home bucket and, per coordinate, the score of moving ±1:
        // distance from the projection to the relevant bucket boundary.
        let mut home = Vec::with_capacity(kf);
        let mut moves: Vec<(f64, usize, i64)> = Vec::with_capacity(2 * kf); // (score, coord, delta)
        for f in 0..kf {
            let hf = &self.functions[t * kf + f];
            let proj = dot(&hf.a, q) + hf.b;
            let bucket = (proj / w).floor();
            let frac = proj - bucket * w; // position within the bucket, [0, w)
            home.push(bucket as i64);
            moves.push((frac * frac, f, -1)); // cross the lower boundary
            moves.push(((w - frac) * (w - frac), f, 1)); // cross the upper
        }
        moves.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Enumerate perturbation sets in ascending total score using the
        // shift/expand heap over indices into `moves`.
        let mut out = vec![home.clone()];
        if self.config.probes == 0 || moves.is_empty() {
            return out;
        }
        let mut heap: BinaryHeap<PSet> = BinaryHeap::new();
        heap.push(PSet { score: moves[0].0, set: vec![0] });
        while out.len() <= self.config.probes {
            let Some(top) = heap.pop() else { break };
            // Validity: a set may not perturb the same coordinate twice
            // (indices 2i and 2i+1 after sorting refer to arbitrary
            // coordinates, so check explicitly).
            let mut coords: Vec<usize> = top.set.iter().map(|&i| moves[i].1).collect();
            coords.sort_unstable();
            let valid = coords.windows(2).all(|p| p[0] != p[1]);
            if valid {
                let mut probe = home.clone();
                for &i in &top.set {
                    probe[moves[i].1] += moves[i].2;
                }
                out.push(probe);
            }
            // Shift: advance the last element; expand: append successor.
            let last = *top.set.last().expect("non-empty set");
            if last + 1 < moves.len() {
                let mut shifted = top.set.clone();
                *shifted.last_mut().unwrap() = last + 1;
                let score = top.score - moves[last].0 + moves[last + 1].0;
                heap.push(PSet { score, set: shifted });
                let mut expanded = top.set;
                expanded.push(last + 1);
                let score = top.score + moves[last + 1].0;
                heap.push(PSet { score, set: expanded });
            }
        }
        out
    }

    /// c-k-ANN query probing `1 + probes` buckets per table.
    pub fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, BaselineStats) {
        assert!(k > 0, "k must be positive");
        assert_eq!(q.len(), self.data.dim(), "query dimensionality mismatch");
        let mut stats = BaselineStats::default();
        let mut seen = vec![false; self.data.len()];
        let mut candidates: Vec<Neighbor> = Vec::new();
        let mut topk = TopK::new(k);
        for t in 0..self.config.l_tables {
            for probe in self.probe_sequence(t, q) {
                stats.probes += 1;
                stats.io.reads += 1;
                if let Some(bucket) = self.tables[t].get(&compress(&probe)) {
                    stats.io.reads += (bucket.len() as u64 * 12) / 4096;
                    for &oid in bucket {
                        if !seen[oid as usize] {
                            seen[oid as usize] = true;
                            stats.candidates_verified += 1;
                            let v = self.data.get(oid as usize);
                            match euclidean_sq_bounded(v, q, topk.bound_sq()) {
                                Some(d_sq) => {
                                    topk.insert(d_sq, oid);
                                    candidates.push(Neighbor::new(oid, d_sq.sqrt()));
                                }
                                None => stats.candidates_abandoned += 1,
                            }
                        }
                    }
                }
            }
        }
        stats.io = IoStats {
            reads: stats.io.reads + stats.candidates_verified as u64 * self.verify_pages,
            writes: 0,
        };
        candidates.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        candidates.truncate(k);
        (candidates, stats)
    }

    /// Index size: `L` tables of 12-byte entries plus `K·L` functions.
    pub fn size_bytes(&self) -> usize {
        self.config.l_tables * self.data.len() * 12
            + self.functions.len() * (self.data.dim() * 4 + 16)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &MultiProbeConfig {
        &self.config
    }
}

fn compress(key: &[i64]) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_vector::gen::{generate, Distribution};
    use cc_vector::gt::knn_linear;
    use cc_vector::metrics::recall;

    fn clustered(n: usize, seed: u64) -> Dataset {
        generate(
            Distribution::GaussianMixture { clusters: 16, spread: 0.015, scale: 10.0 },
            n,
            16,
            seed,
        )
    }

    fn cfg() -> MultiProbeConfig {
        MultiProbeConfig { k_funcs: 6, l_tables: 8, w: 1.0, probes: 24, seed: 13 }
    }

    #[test]
    fn finds_exact_match() {
        let data = clustered(500, 1);
        let idx = MultiProbeLsh::build(&data, cfg());
        let (nn, stats) = idx.query(data.get(11), 1);
        assert_eq!(nn[0].id, 11);
        assert_eq!(nn[0].dist, 0.0);
        // 1 + probes buckets per table.
        assert_eq!(stats.probes, 8 * 25);
    }

    #[test]
    fn probes_boost_recall_over_plain_e2lsh_shape() {
        // Same (K, L): more probes => strictly more candidates reachable,
        // therefore recall must not decrease and should increase
        // substantially on clustered data.
        let data = clustered(2000, 2);
        let plain = MultiProbeLsh::build(&data, MultiProbeConfig { probes: 0, ..cfg() });
        let probed = MultiProbeLsh::build(&data, cfg());
        let mut r_plain = 0.0;
        let mut r_probed = 0.0;
        for qi in 0..20 {
            let q = data.get(qi * 97);
            let truth = knn_linear(&data, q, 10);
            r_plain += recall(&plain.query(q, 10).0, &truth);
            r_probed += recall(&probed.query(q, 10).0, &truth);
        }
        assert!(
            r_probed > r_plain + 1.0,
            "probing should lift recall: plain {r_plain}, probed {r_probed} (sums over 20)"
        );
    }

    #[test]
    fn probe_sequence_scores_ascend_and_start_at_home() {
        let data = clustered(100, 3);
        let idx = MultiProbeLsh::build(&data, cfg());
        let q = data.get(0);
        let seq = idx.probe_sequence(0, q);
        assert_eq!(seq.len(), 1 + idx.config().probes);
        // First is the home bucket; all probes differ from home by ±1 in
        // at least one coordinate and never by more than 1 anywhere.
        let home = &seq[0];
        for probe in &seq[1..] {
            assert_ne!(probe, home);
            for (a, b) in probe.iter().zip(home) {
                assert!((a - b).abs() <= 1, "perturbation beyond ±1");
            }
        }
        // No duplicate probes.
        let mut sorted = seq.clone();
        sorted.sort();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(sorted.len(), before, "duplicate probes in sequence");
    }

    #[test]
    fn matches_e2lsh_candidates_at_zero_probes() {
        // probes = 0 reduces to plain static concatenation over the same
        // bucket structure: verified count equals number of distinct
        // colliders in the L home buckets.
        let data = clustered(400, 4);
        let idx = MultiProbeLsh::build(&data, MultiProbeConfig { probes: 0, ..cfg() });
        let (_, stats) = idx.query(data.get(7), 5);
        assert_eq!(stats.probes, idx.config().l_tables);
        assert!(stats.candidates_verified >= 1);
    }

    #[test]
    fn determinism() {
        let data = clustered(300, 5);
        let a = MultiProbeLsh::build(&data, cfg());
        let b = MultiProbeLsh::build(&data, cfg());
        assert_eq!(a.query(data.get(9), 5).0, b.query(data.get(9), 5).0);
    }

    #[test]
    fn smaller_l_with_probes_matches_bigger_l_without() {
        // The multi-probe selling point: L=4 with 24 probes should reach
        // the recall ballpark of L=16 with none, at a quarter the index.
        let data = clustered(2000, 6);
        let small =
            MultiProbeLsh::build(&data, MultiProbeConfig { l_tables: 4, probes: 24, ..cfg() });
        let big =
            MultiProbeLsh::build(&data, MultiProbeConfig { l_tables: 16, probes: 0, ..cfg() });
        let mut r_small = 0.0;
        let mut r_big = 0.0;
        for qi in 0..20 {
            let q = data.get(qi * 83);
            let truth = knn_linear(&data, q, 10);
            r_small += recall(&small.query(q, 10).0, &truth);
            r_big += recall(&big.query(q, 10).0, &truth);
        }
        assert!(small.size_bytes() * 3 < big.size_bytes());
        assert!(
            r_small > r_big - 2.0,
            "L=4+probes recall {r_small} far below L=16 recall {r_big} (sums over 20)"
        );
    }
}

//! Index persistence: serialize a built [`crate::C2lshIndex`]'s state so
//! it can be reloaded without re-hashing the dataset.
//!
//! The serialized form (`C2L1` format) contains the configuration, the
//! derived parameters, the hash family (`a` vectors and offsets) and the
//! sorted hash tables — everything except the raw vectors, which the
//! caller keeps (the index borrows them at load time, and a fingerprint
//! of the dataset shape guards against loading an index against the
//! wrong data).
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic "C2L1" | n | dim | c | w | delta | base_radius | beta_num |
//! m | l | beta_n | seed |
//! per function: d×f32 (a), f64 (b) |
//! per table:    n×(i64 bucket, u32 oid) |
//! xor-fold checksum
//! ```
//!
//! The magic word doubles as the version stamp: the `"C2L"` prefix
//! identifies the format family and the trailing byte (`'1'`) its
//! version. A blob with the right prefix but a different version byte
//! is rejected as [`PersistError::UnsupportedVersion`] *before* the
//! checksum runs, so "written by a newer release" never masquerades as
//! corruption. Loading is panic-free on arbitrary input: every read is
//! bounds-checked and truncation at any byte boundary reports
//! [`PersistError::Malformed`] (see `tests/proptest_persist.rs`).

use crate::config::{Beta, C2lshConfig};
use crate::dynamic::DynamicIndex;
use crate::index::C2lshIndex;
use crate::meta::PointMeta;
use bytes::BufMut;
use cc_vector::dataset::Dataset;
use std::fmt;

const MAGIC: u32 = 0x4332_4C31; // "C2L1": "C2L" prefix + version byte '1'
/// High three bytes of the magic word — the format family tag.
const MAGIC_PREFIX: u32 = MAGIC & !0xFF;
/// Low byte of the magic word — the format version this build writes
/// and the only one it reads.
const FORMAT_VERSION: u8 = (MAGIC & 0xFF) as u8;

/// Magic of the dynamic-index checkpoint format: `"C2D"` family prefix
/// plus version byte `'1'`. A separate family from `"C2L"` because the
/// two formats persist different things: `C2L1` is a borrow-the-dataset
/// static index, `C2D1` owns its vectors (the full slot array,
/// tombstones included) plus the WAL high-water mark.
const DYN_MAGIC: u32 = 0x4332_4431; // "C2D1"
const DYN_MAGIC_PREFIX: u32 = DYN_MAGIC & !0xFF;
const DYN_FORMAT_VERSION: u8 = (DYN_MAGIC & 0xFF) as u8;
/// Version `'2'` of the dynamic checkpoint: identical to `C2D1` except
/// each live slot carries its [`PointMeta`] (`u64 tag | u32 label`)
/// before the coordinates. The writer picks the version by content —
/// an index whose points all carry default (zero) metadata saves as
/// plain `C2D1`, byte-identical to what older builds wrote — and the
/// loader reads both.
const DYN_MAGIC_V2: u32 = 0x4332_4432; // "C2D2"
const DYN_FORMAT_VERSION_V2: u8 = (DYN_MAGIC_V2 & 0xFF) as u8;

/// Why loading failed.
#[derive(Debug, PartialEq)]
pub enum PersistError {
    /// Wrong magic / truncated / checksum mismatch.
    Malformed(String),
    /// The blob carries the right magic prefix but a format version
    /// this build does not understand (e.g. a file written by a newer
    /// release). Distinct from [`PersistError::Malformed`] so callers
    /// can tell "upgrade the reader" apart from "the file is damaged".
    UnsupportedVersion {
        /// The version byte found in the blob.
        found: u8,
    },
    /// The provided dataset does not match the fingerprint recorded at
    /// save time.
    DatasetMismatch {
        /// Expected number of vectors.
        want_n: usize,
        /// Expected dimensionality.
        want_dim: usize,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Malformed(m) => write!(f, "malformed index blob: {m}"),
            PersistError::UnsupportedVersion { found } => write!(
                f,
                "unsupported index format version {:?} (this build reads {:?} only)",
                *found as char, FORMAT_VERSION as char
            ),
            PersistError::DatasetMismatch { want_n, want_dim } => write!(
                f,
                "dataset mismatch: index was built over {want_n} vectors of dim {want_dim}"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

/// Serialize a built index (excluding the raw vectors).
pub fn save_index(index: &C2lshIndex<'_>) -> Vec<u8> {
    let (n, dim) = index.data_shape();
    let cfg = index.config();
    let mut buf = Vec::with_capacity(64 + index.size_bytes());
    buf.put_u32_le(MAGIC);
    buf.put_u64_le(n as u64);
    buf.put_u32_le(dim as u32);
    buf.put_u32_le(cfg.c);
    buf.put_f64_le(cfg.w);
    buf.put_f64_le(cfg.delta);
    buf.put_f64_le(cfg.base_radius);
    match cfg.beta {
        Beta::Count(c) => {
            buf.put_u8(0);
            buf.put_u64_le(c);
        }
        Beta::Fraction(f) => {
            buf.put_u8(1);
            buf.put_f64_le(f);
        }
    }
    buf.put_u64_le(cfg.seed);
    let p = index.params();
    buf.put_u32_le(p.m as u32);
    buf.put_u32_le(p.l as u32);
    buf.put_u32_le(p.beta_n as u32);

    for h in index.family().iter() {
        for &a in h.projection_coeffs() {
            buf.put_f32_le(a);
        }
        buf.put_f64_le(h.offset());
    }
    index.for_each_table_entry(|bucket, oid| {
        buf.put_i64_le(bucket);
        buf.put_u32_le(oid);
    });
    let checksum = xor_fold(&buf);
    buf.put_u32_le(checksum);
    buf
}

/// Bounds-checked little-endian reader: every getter reports
/// truncation as [`PersistError::Malformed`] instead of panicking, so
/// arbitrary byte strings — including every truncation of a valid blob
/// — are safe to feed through [`load_index`].
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.buf.len() < n {
            return Err(PersistError::Malformed(format!(
                "truncated: wanted {n} more bytes, {} left",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn get_u32_le(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn get_u64_le(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_i64_le(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_f32_le(&mut self) -> Result<f32, PersistError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn get_f64_le(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Reload an index over the same (caller-kept) dataset.
pub fn load_index<'d>(data: &'d Dataset, buf: &[u8]) -> Result<C2lshIndex<'d>, PersistError> {
    if buf.len() < 4 + 8 + 4 {
        return Err(PersistError::Malformed("header too short".into()));
    }
    // Identify the format before verifying the checksum: a well-formed
    // blob from a newer format version must surface as
    // `UnsupportedVersion`, not be folded into the corruption path
    // (newer versions may checksum differently).
    let magic = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if magic & !0xFF != MAGIC_PREFIX {
        return Err(PersistError::Malformed(format!("bad magic {magic:#010x}")));
    }
    let version = (magic & 0xFF) as u8;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    let (payload, tail) = buf.split_at(buf.len() - 4);
    if xor_fold(payload) != u32::from_le_bytes(tail.try_into().unwrap()) {
        return Err(PersistError::Malformed("checksum mismatch".into()));
    }

    // Magic already consumed; the trailing checksum already verified.
    let mut r = Reader::new(&payload[4..]);
    let n = r.get_u64_le()? as usize;
    let dim = r.get_u32_le()? as usize;
    if n != data.len() || dim != data.dim() {
        return Err(PersistError::DatasetMismatch { want_n: n, want_dim: dim });
    }
    let c = r.get_u32_le()?;
    let w = r.get_f64_le()?;
    let delta = r.get_f64_le()?;
    let base_radius = r.get_f64_le()?;
    let beta = match r.get_u8()? {
        0 => Beta::Count(r.get_u64_le()?),
        1 => Beta::Fraction(r.get_f64_le()?),
        x => return Err(PersistError::Malformed(format!("unknown beta tag {x}"))),
    };
    let seed = r.get_u64_le()?;
    let m = r.get_u32_le()? as usize;
    let l = r.get_u32_le()? as usize;
    let beta_n = r.get_u32_le()? as usize;
    if m == 0 || l == 0 || l > m {
        return Err(PersistError::Malformed(format!("bad (m, l) = ({m}, {l})")));
    }

    let config = C2lshConfig {
        c,
        w,
        delta,
        base_radius,
        beta,
        seed,
        m_override: Some(m),
        l_override: Some(l),
    };
    config.validate().map_err(|e| PersistError::Malformed(e.to_string()))?;

    // Size the payload up front (in u128: m and dim come from the wire
    // and must not overflow the check itself) so a corrupt header can't
    // trigger huge allocations below.
    let need = m as u128 * (dim as u128 * 4 + 8) + m as u128 * n as u128 * 12;
    if r.remaining() as u128 != need {
        return Err(PersistError::Malformed(format!(
            "payload size {} != expected {need}",
            r.remaining()
        )));
    }
    let mut functions = Vec::with_capacity(m);
    for _ in 0..m {
        let mut a = Vec::with_capacity(dim);
        for _ in 0..dim {
            a.push(r.get_f32_le()?);
        }
        let b = r.get_f64_le()?;
        functions.push(crate::hash::PstableHash::from_parts(a, b, w));
    }
    let mut tables = Vec::with_capacity(m);
    for _ in 0..m {
        let mut buckets = Vec::with_capacity(n);
        let mut oids = Vec::with_capacity(n);
        for _ in 0..n {
            buckets.push(r.get_i64_le()?);
            oids.push(r.get_u32_le()?);
        }
        if !buckets.windows(2).all(|p| p[0] <= p[1]) {
            return Err(PersistError::Malformed("table not sorted".into()));
        }
        if oids.iter().any(|&o| o as usize >= n) {
            return Err(PersistError::Malformed("object id out of range".into()));
        }
        tables.push((buckets, oids));
    }
    // beta_n re-derives identically from (beta, n); sanity-check it.
    let idx = C2lshIndex::from_parts(data, config, functions, tables);
    if idx.params().beta_n != beta_n {
        return Err(PersistError::Malformed(format!(
            "beta_n mismatch: stored {beta_n}, derived {}",
            idx.params().beta_n
        )));
    }
    Ok(idx)
}

/// Serialize a [`DynamicIndex`] checkpoint (`C2D1` format), including
/// every vector slot (tombstones preserved so object ids survive) and
/// `last_seq`, the WAL sequence number of the last mutation the
/// checkpoint reflects: replay resumes from `last_seq + 1`.
///
/// Layout (all little-endian):
///
/// ```text
/// magic "C2D1" | dim | expected_n | c | w | delta | base_radius |
/// beta tag+value | seed | m_override tag(+val) | l_override tag(+val) |
/// m | l | beta_n | last_seq |
/// slot_count | per slot: u8 tag (0 = tombstone, 1 = live + dim×f32) |
/// xor-fold checksum
/// ```
///
/// A `C2D2` checkpoint differs only in each live slot's body, which
/// gains the point's metadata before the coordinates:
/// `u8 1 | u64 tag | u32 label | dim×f32`. The version is chosen by
/// content: only an index carrying at least one non-default
/// [`PointMeta`] needs (and gets) the `'2'` stamp.
///
/// The hash family is *not* stored: it re-generates deterministically
/// from `(m, dim, config)` at load time, exactly as the original was
/// built, keeping checkpoints proportional to the data rather than the
/// data plus `m × dim` projections.
pub fn save_dynamic(index: &DynamicIndex, last_seq: u64) -> Vec<u8> {
    let cfg = index.config();
    let slots = index.slots();
    let metas = index.meta_slots();
    let has_meta = metas.iter().any(|m| *m != PointMeta::default());
    let mut buf = Vec::with_capacity(64 + slots.len() * (1 + 4 * index.params().m.min(1)));
    buf.put_u32_le(if has_meta { DYN_MAGIC_V2 } else { DYN_MAGIC });
    buf.put_u32_le(index.dim() as u32);
    buf.put_u64_le(index.expected_n() as u64);
    buf.put_u32_le(cfg.c);
    buf.put_f64_le(cfg.w);
    buf.put_f64_le(cfg.delta);
    buf.put_f64_le(cfg.base_radius);
    match cfg.beta {
        Beta::Count(c) => {
            buf.put_u8(0);
            buf.put_u64_le(c);
        }
        Beta::Fraction(f) => {
            buf.put_u8(1);
            buf.put_f64_le(f);
        }
    }
    buf.put_u64_le(cfg.seed);
    for over in [cfg.m_override, cfg.l_override] {
        match over {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                buf.put_u32_le(v as u32);
            }
        }
    }
    let p = index.params();
    buf.put_u32_le(p.m as u32);
    buf.put_u32_le(p.l as u32);
    buf.put_u32_le(p.beta_n as u32);
    buf.put_u64_le(last_seq);
    buf.put_u64_le(slots.len() as u64);
    for (i, slot) in slots.iter().enumerate() {
        match slot {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                if has_meta {
                    let m = metas.get(i).copied().unwrap_or_default();
                    buf.put_u64_le(m.tag);
                    buf.put_u32_le(m.label);
                }
                for &x in v {
                    buf.put_f32_le(x);
                }
            }
        }
    }
    let checksum = xor_fold(&buf);
    buf.put_u32_le(checksum);
    buf
}

/// Reload a [`DynamicIndex`] checkpoint; returns the index and the WAL
/// sequence number it reflects ([`save_dynamic`]'s `last_seq`).
/// Panic-free on arbitrary input, like [`load_index`]: truncation,
/// corruption and impossible values all surface as
/// [`PersistError::Malformed`], a right-family/newer-version blob as
/// [`PersistError::UnsupportedVersion`].
pub fn load_dynamic(buf: &[u8]) -> Result<(DynamicIndex, u64), PersistError> {
    if buf.len() < 4 + 4 {
        return Err(PersistError::Malformed("header too short".into()));
    }
    let magic = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if magic & !0xFF != DYN_MAGIC_PREFIX {
        return Err(PersistError::Malformed(format!("bad magic {magic:#010x}")));
    }
    let version = (magic & 0xFF) as u8;
    if version != DYN_FORMAT_VERSION && version != DYN_FORMAT_VERSION_V2 {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    let has_meta = version == DYN_FORMAT_VERSION_V2;
    let (payload, tail) = buf.split_at(buf.len() - 4);
    if xor_fold(payload) != u32::from_le_bytes(tail.try_into().unwrap()) {
        return Err(PersistError::Malformed("checksum mismatch".into()));
    }

    let mut r = Reader::new(&payload[4..]);
    let dim = r.get_u32_le()? as usize;
    let expected_n = r.get_u64_le()? as usize;
    if dim == 0 || expected_n == 0 {
        return Err(PersistError::Malformed(format!("bad shape ({expected_n}, {dim})")));
    }
    let c = r.get_u32_le()?;
    let w = r.get_f64_le()?;
    let delta = r.get_f64_le()?;
    let base_radius = r.get_f64_le()?;
    let beta = match r.get_u8()? {
        0 => Beta::Count(r.get_u64_le()?),
        1 => Beta::Fraction(r.get_f64_le()?),
        x => return Err(PersistError::Malformed(format!("unknown beta tag {x}"))),
    };
    let seed = r.get_u64_le()?;
    let mut overrides = [None, None];
    for slot in overrides.iter_mut() {
        *slot = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_u32_le()? as usize),
            x => return Err(PersistError::Malformed(format!("unknown override tag {x}"))),
        };
    }
    let m = r.get_u32_le()? as usize;
    let l = r.get_u32_le()? as usize;
    let beta_n = r.get_u32_le()? as usize;
    if m == 0 || l == 0 || l > m {
        return Err(PersistError::Malformed(format!("bad (m, l) = ({m}, {l})")));
    }
    let last_seq = r.get_u64_le()?;

    let config = C2lshConfig {
        c,
        w,
        delta,
        base_radius,
        beta,
        seed,
        m_override: overrides[0],
        l_override: overrides[1],
    };
    config.validate().map_err(|e| PersistError::Malformed(e.to_string()))?;

    let slot_count = r.get_u64_le()? as usize;
    // Every slot costs at least its tag byte; a fabricated count that
    // exceeds the remaining bytes must not drive the allocation below.
    if slot_count > r.remaining() {
        return Err(PersistError::Malformed(format!(
            "slot count {slot_count} exceeds remaining {} bytes",
            r.remaining()
        )));
    }
    let mut slots: Vec<Option<Vec<f32>>> = Vec::with_capacity(slot_count);
    let mut metas: Vec<PointMeta> = Vec::with_capacity(if has_meta { slot_count } else { 0 });
    for i in 0..slot_count {
        match r.get_u8()? {
            0 => {
                slots.push(None);
                if has_meta {
                    // Tombstones carry no payload on disk; restore the
                    // slot with a default to keep the arrays parallel.
                    metas.push(PointMeta::default());
                }
            }
            1 => {
                if has_meta {
                    let tag = r.get_u64_le()?;
                    let label = r.get_u32_le()?;
                    metas.push(PointMeta::new(tag, label));
                }
                let mut v = Vec::with_capacity(dim);
                for _ in 0..dim {
                    let x = r.get_f32_le()?;
                    if !x.is_finite() {
                        return Err(PersistError::Malformed(format!(
                            "non-finite coordinate in slot {i}"
                        )));
                    }
                    v.push(x);
                }
                slots.push(Some(v));
            }
            x => return Err(PersistError::Malformed(format!("unknown slot tag {x}"))),
        }
    }
    if r.remaining() != 0 {
        return Err(PersistError::Malformed(format!("{} trailing bytes", r.remaining())));
    }

    let index = DynamicIndex::from_slots(dim, expected_n, &config, slots, metas);
    // (m, l, beta_n) re-derive from (expected_n, config); a mismatch
    // means the checkpoint and this build disagree on the derivation
    // and the restored index would not answer like the saved one.
    let p = index.params();
    if (p.m, p.l, p.beta_n) != (m, l, beta_n) {
        return Err(PersistError::Malformed(format!(
            "derived params ({}, {}, {}) != stored ({m}, {l}, {beta_n})",
            p.m, p.l, p.beta_n
        )));
    }
    Ok((index, last_seq))
}

fn xor_fold(bytes: &[u8]) -> u32 {
    let mut acc = 0u32;
    for chunk in bytes.chunks(4) {
        let mut word = [0u8; 4];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = acc.rotate_left(1) ^ u32::from_le_bytes(word);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_vector::gen::{generate, Distribution};

    fn clustered(n: usize, d: usize, seed: u64) -> Dataset {
        generate(
            Distribution::GaussianMixture { clusters: 8, spread: 0.02, scale: 10.0 },
            n,
            d,
            seed,
        )
    }

    fn cfg() -> C2lshConfig {
        C2lshConfig::builder().bucket_width(1.0).seed(9).build()
    }

    #[test]
    fn save_load_roundtrip_preserves_queries() {
        let data = clustered(600, 10, 1);
        let idx = C2lshIndex::build(&data, &cfg());
        let blob = save_index(&idx);
        let loaded = load_index(&data, &blob).unwrap();
        for qi in [0usize, 123, 599] {
            let q = data.get(qi);
            assert_eq!(idx.query(q, 7).0, loaded.query(q, 7).0, "query {qi}");
        }
        assert_eq!(idx.params().m, loaded.params().m);
        assert_eq!(idx.params().l, loaded.params().l);
    }

    #[test]
    fn rejects_wrong_dataset() {
        let data = clustered(100, 8, 2);
        let idx = C2lshIndex::build(&data, &cfg());
        let blob = save_index(&idx);
        let other = clustered(101, 8, 2);
        assert!(matches!(
            load_index(&other, &blob),
            Err(PersistError::DatasetMismatch { want_n: 100, want_dim: 8 })
        ));
        let other_dim = clustered(100, 9, 2);
        assert!(load_index(&other_dim, &blob).is_err());
    }

    #[test]
    fn detects_corruption() {
        let data = clustered(80, 6, 3);
        let idx = C2lshIndex::build(&data, &cfg());
        let mut blob = save_index(&idx);
        let mid = blob.len() / 2;
        blob[mid] ^= 0xFF;
        let err = load_index(&data, &blob).unwrap_err();
        assert!(matches!(err, PersistError::Malformed(_)), "{err}");
    }

    #[test]
    fn rejects_truncation_and_bad_magic() {
        let data = clustered(50, 4, 4);
        let idx = C2lshIndex::build(&data, &cfg());
        let blob = save_index(&idx);
        assert!(load_index(&data, &blob[..10]).is_err());
        // Corrupt the prefix (byte 1 holds 'L'), not the version byte.
        let mut bad = blob.clone();
        bad[1] ^= 1;
        assert!(matches!(load_index(&data, &bad), Err(PersistError::Malformed(_))));
    }

    /// Re-stamp a valid blob's version byte and fix up the trailing
    /// checksum so only the version differs from a well-formed file.
    fn with_version(blob: &[u8], version: u8) -> Vec<u8> {
        let mut out = blob.to_vec();
        out[0] = version; // little-endian magic: byte 0 is the low (version) byte
        let end = out.len() - 4;
        let sum = xor_fold(&out[..end]).to_le_bytes();
        out[end..].copy_from_slice(&sum);
        out
    }

    #[test]
    fn future_version_rejected_explicitly() {
        let data = clustered(60, 5, 6);
        let idx = C2lshIndex::build(&data, &cfg());
        let blob = save_index(&idx);
        // A hypothetical "C2L2" file — valid checksum, newer version —
        // must name the version, not claim corruption.
        let future = with_version(&blob, b'2');
        assert_eq!(
            load_index(&data, &future).unwrap_err(),
            PersistError::UnsupportedVersion { found: b'2' }
        );
        // Even without a fixed-up checksum the version verdict wins:
        // version is checked before the checksum.
        let mut unfixed = blob.clone();
        unfixed[0] = b'3';
        assert_eq!(
            load_index(&data, &unfixed).unwrap_err(),
            PersistError::UnsupportedVersion { found: b'3' }
        );
        // The version this build writes still loads.
        assert!(load_index(&data, &with_version(&blob, b'1')).is_ok());
    }

    fn mutated_dynamic() -> (DynamicIndex, Dataset) {
        let data = clustered(300, 8, 11);
        let mut idx = DynamicIndex::from_dataset(&data, &cfg());
        for oid in [5u32, 100, 299] {
            assert!(idx.delete(oid));
        }
        idx.insert(vec![3.0; 8]);
        (idx, data)
    }

    #[test]
    fn dynamic_roundtrip_preserves_queries_ids_and_seq() {
        let (idx, data) = mutated_dynamic();
        let blob = save_dynamic(&idx, 417);
        let (loaded, last_seq) = load_dynamic(&blob).unwrap();
        assert_eq!(last_seq, 417);
        assert_eq!(loaded.len(), idx.len());
        assert_eq!(loaded.slots().len(), idx.slots().len(), "tombstones preserved");
        for qi in [0usize, 42, 250] {
            let q = data.get(qi);
            assert_eq!(idx.query(q, 6).0, loaded.query(q, 6).0, "query {qi}");
        }
        // Post-restore inserts keep assigning the same ids.
        let mut a = idx;
        let mut b = loaded;
        assert_eq!(a.insert(vec![1.0; 8]), b.insert(vec![1.0; 8]));
    }

    #[test]
    fn dynamic_rejects_corruption_everywhere() {
        let (idx, _) = mutated_dynamic();
        let blob = save_dynamic(&idx, 1);
        for at in [0usize, 3, 10, blob.len() / 2, blob.len() - 5] {
            let mut bad = blob.clone();
            bad[at] ^= 0x40;
            let r = load_dynamic(&bad);
            assert!(r.is_err(), "flip at {at} accepted");
        }
        for cut in [0usize, 4, 20, blob.len() / 3, blob.len() - 1] {
            assert!(load_dynamic(&blob[..cut]).is_err(), "truncation to {cut} accepted");
        }
    }

    #[test]
    fn dynamic_future_version_and_wrong_family() {
        let (idx, _) = mutated_dynamic();
        let blob = save_dynamic(&idx, 0);
        // "C2D3": right family, newer version, checksum fixed up.
        let future = with_version(&blob, b'3');
        assert_eq!(
            load_dynamic(&future).unwrap_err(),
            PersistError::UnsupportedVersion { found: b'3' }
        );
        // "C2D2" is a *known* version now, but re-stamping a v1 blob as
        // v2 makes the slot bodies unparseable (v2 expects 12 meta bytes
        // per live slot) — corruption, not version skew.
        assert!(matches!(
            load_dynamic(&with_version(&blob, b'2')),
            Err(PersistError::Malformed(_))
        ));
        // A C2L1 blob is a different family, not a version skew.
        let data = clustered(50, 4, 12);
        let static_blob = save_index(&C2lshIndex::build(&data, &cfg()));
        assert!(matches!(load_dynamic(&static_blob), Err(PersistError::Malformed(_))));
        assert!(load_dynamic(&with_version(&blob, b'1')).is_ok());
    }

    #[test]
    fn dynamic_checkpoint_version_tracks_metadata_content() {
        // Meta-free indexes keep writing byte-for-byte C2D1.
        let (idx, _) = mutated_dynamic();
        let blob = save_dynamic(&idx, 7);
        assert_eq!(blob[0], b'1', "meta-free checkpoint must stay v1");

        // A single non-default payload upgrades the blob to C2D2, and
        // the round-trip preserves every slot's metadata.
        let data = clustered(120, 8, 13);
        let mut rich = DynamicIndex::new(8, 300, &cfg());
        for (i, v) in data.iter().enumerate() {
            rich.insert_with_meta(v.to_vec(), PointMeta::new((i as u64) << 1, (i % 4) as u32));
        }
        assert!(rich.delete(60), "keep a tombstone in the slot array");
        let blob = save_dynamic(&rich, 121);
        assert_eq!(blob[0], b'2');
        let (loaded, last_seq) = load_dynamic(&blob).unwrap();
        assert_eq!(last_seq, 121);
        assert_eq!(loaded.slots(), rich.slots());
        let want: Vec<PointMeta> = rich
            .meta_slots()
            .iter()
            .enumerate()
            .map(|(i, m)| if i == 60 { PointMeta::default() } else { *m })
            .collect();
        assert_eq!(loaded.meta_slots(), &want[..], "tombstones restore with default meta");
        use crate::engine::SearchOptions;
        use crate::meta::Predicate;
        let opts = SearchOptions { filter: Some(Predicate::label(3)), ..Default::default() };
        assert_eq!(
            loaded.query_with(data.get(5), 4, &opts).0,
            rich.query_with(data.get(5), 4, &opts).0
        );
    }
}

//! Crash-safe online mutations over the dynamic index.
//!
//! [`MutableIndex`] wraps a [`DynamicIndex`] behind two guarantees the
//! serving layer needs and the raw index does not give:
//!
//! * **Snapshot-consistent reads.** Readers obtain an `Arc` to an
//!   immutable published index and query it without any lock held;
//!   a writer clones the current index, applies a whole batch to the
//!   clone and publishes it in one pointer swap. A concurrent query
//!   therefore sees the pre-batch or the post-batch index — never a
//!   half-applied one (pinned by `tests/concurrency.rs`).
//! * **Durability of acknowledged writes.** With a backing directory,
//!   every applied mutation is appended to a write-ahead log
//!   ([`cc_storage::wal`]) and fsynced *before* the new snapshot is
//!   published or any acknowledgement returned — one group-commit sync
//!   per batch. After a kill at any byte offset, [`MutableIndex::open`]
//!   restores the last checkpoint and replays the WAL back to the last
//!   acknowledged mutation (pinned by the fault-injection proptests in
//!   `tests/proptest_persist.rs` and the kill/restart test in
//!   `cc-service`).
//!
//! The ordering — apply to the private clone, then WAL-append, then
//! fsync, then publish, then ack — means a crash can lose only
//! *unacknowledged* work, and replay (which re-runs the same
//! deterministic oid assignment) can only *re-create* state that was
//! already acknowledged.

use crate::config::C2lshConfig;
use crate::dynamic::DynamicIndex;
use crate::engine::SearchOptions;
use crate::meta::PointMeta;
use crate::persist::{load_dynamic, save_dynamic};
use crate::stats::{BatchStats, MutationStats, QueryStats};
use cc_storage::wal::{Wal, WalOp, WalRecord};
use cc_vector::dataset::Dataset;
use cc_vector::gt::Neighbor;
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One requested mutation, as carried by the service protocol and the
/// batching worker.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationOp {
    /// Insert a vector (the index assigns the object id).
    Insert {
        /// The vector to insert; must match the index dimension and be
        /// finite in every coordinate.
        vector: Vec<f32>,
        /// Attribute payload stored alongside the vector (default:
        /// empty). Persisted in the WAL record and in checkpoints, so
        /// filtered search keeps working across crash recovery.
        meta: PointMeta,
    },
    /// Delete an object by id.
    Delete {
        /// The object id to remove.
        oid: u32,
    },
}

/// Per-request acknowledgement for one [`MutationOp`]. Returned only
/// after the batch's WAL records are fsynced, so holding an ack means
/// the mutation survives any subsequent crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationAck {
    /// The insert was applied and logged.
    Inserted {
        /// Object id the index assigned.
        oid: u32,
        /// WAL sequence number of the logged record.
        seq: u64,
    },
    /// The delete was processed.
    Deleted {
        /// The requested object id.
        oid: u32,
        /// `true` when the object existed and was removed (and logged);
        /// `false` for unknown/already-deleted ids, which are
        /// acknowledged without a WAL record.
        found: bool,
        /// WAL sequence number of the logged record; for a miss, the
        /// current high-water mark (nothing new was logged).
        seq: u64,
    },
}

impl MutationAck {
    /// The sequence number this ack certifies as durable.
    pub fn seq(&self) -> u64 {
        match *self {
            MutationAck::Inserted { seq, .. } | MutationAck::Deleted { seq, .. } => seq,
        }
    }
}

/// The published read state: an immutable index plus the sequence
/// number of the last mutation it contains.
struct Snapshot {
    seq: u64,
    index: Arc<DynamicIndex>,
}

/// Writer-side state, serialized by a mutex: at most one batch is in
/// flight at a time.
struct Writer {
    wal: Option<Wal>,
    dir: Option<PathBuf>,
    /// Next sequence number in ephemeral mode (WAL-backed mode asks the
    /// log).
    next_seq: u64,
    /// Cumulative write-path counters since open.
    stats: MutationStats,
    /// Set when a WAL failure could not be rolled back: the on-disk log
    /// may hold garbage between acknowledged records, so accepting (and
    /// fsync-acking) further batches on top of it would let replay
    /// silently drop them. While poisoned every mutation is refused;
    /// reads keep serving the last published snapshot. Reopening the
    /// directory recovers (open truncates the torn bytes away).
    poisoned: Option<String>,
}

/// In-memory retention of applied WAL records, feeding replication
/// subscribers. Seeded from the replayed log at open and appended on
/// every applied batch; checkpoints truncate the *disk* log but never
/// this buffer, so a connected follower survives checkpoints. The
/// buffer grows with process-lifetime mutations — bounded retention
/// plus snapshot shipping for too-far-behind followers is the
/// documented follow-up (DESIGN.md §14).
struct ReplLog {
    /// Sequence number *before* the first retained record: subscribers
    /// must start at or above this floor. Nonzero when the index was
    /// opened from a checkpoint (the pre-checkpoint history is gone).
    floor: u64,
    records: VecDeque<WalRecord>,
}

/// A [`DynamicIndex`] made safe for concurrent serving: lock-free-read
/// snapshots plus (optionally) a WAL-backed crash-recovery story. See
/// the module docs for the contract.
pub struct MutableIndex {
    snapshot: RwLock<Snapshot>,
    writer: Mutex<Writer>,
    repl: Mutex<ReplLog>,
}

/// Apply one replicated/replayed WAL record to an index, with the
/// divergence checks shared by crash recovery and follower apply: an
/// insert must reproduce the logged oid, a delete must find its
/// victim — anything else means the histories forked.
fn apply_wal_record(index: &mut DynamicIndex, rec: &WalRecord) -> io::Result<()> {
    match &rec.op {
        WalOp::Insert { oid, vector, tag, label } => {
            let got = index.insert_with_meta(vector.clone(), PointMeta::new(*tag, *label));
            if got != *oid {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "WAL replay divergence at seq {}: insert produced oid {got}, log says {oid}",
                        rec.seq
                    ),
                ));
            }
        }
        WalOp::Delete { oid } => {
            if !index.delete(*oid) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "WAL replay divergence at seq {}: delete of unknown oid {oid}",
                        rec.seq
                    ),
                ));
            }
        }
    }
    Ok(())
}

impl std::fmt::Debug for MutableIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot.read();
        f.debug_struct("MutableIndex")
            .field("seq", &snap.seq)
            .field("index", &snap.index)
            .finish_non_exhaustive()
    }
}

/// File name of the checkpoint inside a [`MutableIndex::open`] directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.c2d";
/// File name of the write-ahead log inside a [`MutableIndex::open`]
/// directory.
pub const WAL_FILE: &str = "wal.log";

impl MutableIndex {
    /// Wrap an existing index with snapshot semantics but **no
    /// durability** (no WAL): acknowledged mutations die with the
    /// process. For tests and self-contained benchmarks.
    pub fn ephemeral(index: DynamicIndex) -> Self {
        Self {
            snapshot: RwLock::new(Snapshot { seq: 0, index: Arc::new(index) }),
            writer: Mutex::new(Writer {
                wal: None,
                dir: None,
                next_seq: 1,
                stats: MutationStats::default(),
                poisoned: None,
            }),
            repl: Mutex::new(ReplLog { floor: 0, records: VecDeque::new() }),
        }
    }

    /// Open (or create) a durable index backed by directory `dir`,
    /// holding `dir/checkpoint.c2d` and `dir/wal.log`. Restores the
    /// checkpoint if present — it must agree with `(dim, expected_n,
    /// config)` — then replays the WAL's valid prefix on top. A torn
    /// WAL tail (a kill mid-write) is truncated away; it can never
    /// contain an acknowledged mutation, because acks happen only after
    /// fsync.
    pub fn open(
        dir: impl AsRef<Path>,
        dim: usize,
        expected_n: usize,
        config: &C2lshConfig,
    ) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let ckpt_path = dir.join(CHECKPOINT_FILE);
        let (mut index, ckpt_seq) = if ckpt_path.exists() {
            let blob = std::fs::read(&ckpt_path)?;
            let (index, seq) = load_dynamic(&blob)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if index.dim() != dim || index.expected_n() != expected_n || index.config() != config {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "checkpoint does not match the requested (dim, expected_n, config)",
                ));
            }
            (index, seq)
        } else {
            (DynamicIndex::new(dim, expected_n, config), 0)
        };

        let (wal, records, _report) = Wal::open(dir.join(WAL_FILE), ckpt_seq)?;
        let mut last_seq = ckpt_seq;
        let mut retained = VecDeque::new();
        for rec in records {
            if rec.seq <= ckpt_seq {
                // Already reflected by the checkpoint (log written
                // before the checkpoint's reset, e.g. a kill between
                // checkpoint rename and WAL reset).
                continue;
            }
            apply_wal_record(&mut index, &rec)?;
            last_seq = rec.seq;
            retained.push_back(rec);
        }

        Ok(Self {
            snapshot: RwLock::new(Snapshot { seq: last_seq, index: Arc::new(index) }),
            writer: Mutex::new(Writer {
                next_seq: wal.next_seq(),
                wal: Some(wal),
                dir: Some(dir),
                stats: MutationStats { last_seq, ..MutationStats::default() },
                poisoned: None,
            }),
            repl: Mutex::new(ReplLog { floor: ckpt_seq, records: retained }),
        })
    }

    /// Apply a batch of mutations atomically with respect to readers:
    /// WAL-append + one fsync (durable mode), then publish the
    /// post-batch snapshot, then return per-op acks and this batch's
    /// [`MutationStats`] delta. Concurrent callers serialize on the
    /// writer lock; readers are never blocked for longer than the final
    /// pointer swap.
    ///
    /// Every op is validated up front — wrong dimension, non-finite
    /// coordinates — and an invalid op fails the whole batch with
    /// [`io::ErrorKind::InvalidInput`] *before* anything is applied or
    /// logged (the service validates per-request at decode time, so a
    /// mixed batch of independent clients never dies on one bad op).
    ///
    /// # Failure handling
    ///
    /// A WAL append or sync that fails mid-batch (ENOSPC, an I/O error)
    /// discards the in-memory clone *and* rolls the on-disk log back to
    /// the pre-batch boundary, so partially-written record bytes never
    /// sit between acknowledged records (replay truncates at the first
    /// torn record — garbage mid-log would silently swallow everything
    /// after it). If even the rollback fails, the writer is **poisoned**:
    /// every further mutation is refused with the original error until
    /// the index is reopened, while reads keep serving the last published
    /// snapshot. Either way no snapshot is published and no ack returned,
    /// so the durability contract holds.
    pub fn apply_batch(&self, ops: &[MutationOp]) -> io::Result<(Vec<MutationAck>, MutationStats)> {
        let mut writer = self.writer.lock();
        if let Some(why) = &writer.poisoned {
            return Err(io::Error::other(format!(
                "mutation refused, write path poisoned ({why}); reopen to recover"
            )));
        }

        let dim = self.snapshot.read().index.dim();
        for (i, op) in ops.iter().enumerate() {
            if let MutationOp::Insert { vector, .. } = op {
                if vector.len() != dim {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("op {i}: vector has dim {}, index has {dim}", vector.len()),
                    ));
                }
                if !vector.iter().all(|x| x.is_finite()) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("op {i}: vector has non-finite coordinates"),
                    ));
                }
            }
        }

        // Clone-and-mutate: the published index stays untouched (and
        // readable) while the batch lands on the private clone. The
        // clone is O(index size) per batch — acceptable while group
        // commit amortizes it over the flush, but a larger deployment
        // wants persistent (Arc-shared, copy-on-write) hash tables so a
        // one-op batch stops paying for the whole index.
        let mut next = DynamicIndex::clone(&self.snapshot.read().index);
        let mut delta = MutationStats { batches: 1, ..MutationStats::default() };
        let mut acks = Vec::with_capacity(ops.len());
        let mut logged: Vec<WalOp> = Vec::with_capacity(ops.len());
        // (ack index, assigned later once the WAL hands out seqs)
        let mut last_seq = writer.stats.last_seq.max(self.snapshot.read().seq);
        let wal_bytes_before = writer.wal.as_ref().map_or(0, Wal::size_bytes);

        for op in ops {
            match op {
                MutationOp::Insert { vector, meta } => {
                    let oid = next.insert_with_meta(vector.clone(), *meta);
                    logged.push(WalOp::Insert {
                        oid,
                        vector: vector.clone(),
                        tag: meta.tag,
                        label: meta.label,
                    });
                    delta.inserts += 1;
                    acks.push(MutationAck::Inserted { oid, seq: 0 });
                }
                MutationOp::Delete { oid } => {
                    if next.delete(*oid) {
                        logged.push(WalOp::Delete { oid: *oid });
                        delta.deletes += 1;
                        acks.push(MutationAck::Deleted { oid: *oid, found: true, seq: 0 });
                    } else {
                        delta.delete_misses += 1;
                        acks.push(MutationAck::Deleted { oid: *oid, found: false, seq: 0 });
                    }
                }
            }
        }

        // Durability point: append all records, one fsync for the whole
        // batch (group commit). Sequence numbers flow back into acks.
        let mut seqs = Vec::with_capacity(logged.len());
        match writer.wal.as_mut() {
            Some(wal) => {
                let pos = wal.position();
                let appended = (|| -> io::Result<()> {
                    for rec in &logged {
                        seqs.push(wal.append(rec)?);
                    }
                    if !logged.is_empty() {
                        wal.sync()?;
                        delta.wal_syncs = 1;
                    }
                    Ok(())
                })();
                if let Err(e) = appended {
                    // Restore the log to the pre-batch boundary before
                    // surfacing the error: partial record bytes (or
                    // whole-but-unsynced records) must not stay behind,
                    // or the next batch would append after garbage and
                    // be silently dropped by the next replay. When the
                    // rollback itself fails the on-disk state is
                    // unknowable — poison the write path.
                    let poisoned = match wal.rollback(pos) {
                        Ok(()) => None,
                        Err(rb) => Some(format!("{e}; WAL rollback also failed: {rb}")),
                    };
                    writer.poisoned = poisoned;
                    return Err(e);
                }
                delta.wal_records = logged.len() as u64;
                delta.wal_bytes = wal.size_bytes() - wal_bytes_before;
            }
            None => {
                for _ in &logged {
                    let s = writer.next_seq;
                    writer.next_seq += 1;
                    seqs.push(s);
                }
            }
        }
        let mut seq_iter = seqs.iter();
        for ack in acks.iter_mut() {
            match ack {
                MutationAck::Inserted { seq, .. } => {
                    *seq = *seq_iter.next().expect("seq per logged op")
                }
                MutationAck::Deleted { found: true, seq, .. } => {
                    *seq = *seq_iter.next().expect("seq per logged op");
                }
                MutationAck::Deleted { found: false, seq, .. } => *seq = last_seq,
            }
            last_seq = last_seq.max(ack.seq());
        }
        delta.last_seq = last_seq;
        let publish = !logged.is_empty();

        // Feed replication subscribers: these records are past the
        // durability point (fsynced, or accepted in ephemeral mode),
        // so they may ship to followers.
        if publish {
            let recs = logged.into_iter().zip(&seqs).map(|(op, &seq)| WalRecord { seq, op });
            self.repl.lock().records.extend(recs);
        }

        // Publish: one pointer swap; readers holding the old Arc finish
        // on the pre-batch snapshot. A batch of pure delete misses
        // changed nothing — keep the old snapshot (and its readers'
        // cache residency) instead of swapping in an identical clone.
        if publish {
            *self.snapshot.write() = Snapshot { seq: last_seq, index: Arc::new(next) };
        }
        writer.stats.merge(&delta);
        Ok((acks, delta))
    }

    /// The replication tail: every retained record with sequence number
    /// strictly greater than `from_seq`, capped at `max` records, plus
    /// the current high-water mark. An empty vec with a high-water mark
    /// equal to `from_seq` means the subscriber is caught up.
    ///
    /// # Errors
    ///
    /// `from_seq` below the retained floor (the index was opened from a
    /// checkpoint and the earlier history is gone) is refused with
    /// [`io::ErrorKind::InvalidInput`] — such a follower needs a full
    /// snapshot copy, not a log tail.
    pub fn replication_tail(&self, from_seq: u64, max: usize) -> io::Result<(u64, Vec<WalRecord>)> {
        let repl = self.repl.lock();
        if from_seq < repl.floor {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "replication tail from seq {from_seq} is below the retained floor {}; \
                     the subscriber must re-seed from a checkpoint copy",
                    repl.floor
                ),
            ));
        }
        let last = repl.records.back().map_or(repl.floor, |r| r.seq);
        let tail: Vec<WalRecord> =
            repl.records.iter().filter(|r| r.seq > from_seq).take(max).cloned().collect();
        Ok((last, tail))
    }

    /// Apply a batch of replicated WAL records shipped from a primary.
    /// Records at or below the local high-water mark are skipped
    /// (idempotent redelivery after a reconnect); the remainder must
    /// continue the local sequence densely. Applied records go through
    /// the same divergence checks as crash recovery, land in the local
    /// WAL under their *shipped* sequence numbers (one fsync per call),
    /// and are retained for downstream subscribers. Returns the new
    /// high-water mark.
    pub fn apply_replicated(&self, records: &[WalRecord]) -> io::Result<u64> {
        let mut writer = self.writer.lock();
        if let Some(why) = &writer.poisoned {
            return Err(io::Error::other(format!(
                "replicated apply refused, write path poisoned ({why}); reopen to recover"
            )));
        }
        let mut last_seq = writer.stats.last_seq.max(self.snapshot.read().seq);
        let fresh: Vec<&WalRecord> = records.iter().filter(|r| r.seq > last_seq).collect();
        if fresh.is_empty() {
            return Ok(last_seq);
        }
        let mut expect = last_seq + 1;
        for rec in &fresh {
            if rec.seq != expect {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("replication gap: expected seq {expect}, got {}", rec.seq),
                ));
            }
            expect += 1;
        }
        let dim = self.snapshot.read().index.dim();
        for rec in &fresh {
            if let WalOp::Insert { vector, .. } = &rec.op {
                if vector.len() != dim || !vector.iter().all(|x| x.is_finite()) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("replicated record at seq {} carries an invalid vector", rec.seq),
                    ));
                }
            }
        }

        let mut next = DynamicIndex::clone(&self.snapshot.read().index);
        let mut delta = MutationStats { batches: 1, ..MutationStats::default() };
        for rec in &fresh {
            apply_wal_record(&mut next, rec)?;
            match rec.op {
                WalOp::Insert { .. } => delta.inserts += 1,
                WalOp::Delete { .. } => delta.deletes += 1,
            }
        }

        // Durability under the shipped sequence numbers: the local log
        // assigns dense seqs from the same base as the primary's, so a
        // mismatch here means the histories forked and the node must
        // not serve.
        if let Some(wal) = writer.wal.as_mut() {
            let wal_bytes_before = wal.size_bytes();
            let pos = wal.position();
            let appended = (|| -> io::Result<()> {
                for rec in &fresh {
                    let got = wal.append(&rec.op)?;
                    if got != rec.seq {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "local WAL assigned seq {got} to a record shipped as seq {}",
                                rec.seq
                            ),
                        ));
                    }
                }
                wal.sync()?;
                Ok(())
            })();
            if let Err(e) = appended {
                let poisoned = match wal.rollback(pos) {
                    Ok(()) => None,
                    Err(rb) => Some(format!("{e}; WAL rollback also failed: {rb}")),
                };
                writer.poisoned = poisoned;
                return Err(e);
            }
            delta.wal_syncs = 1;
            delta.wal_records = fresh.len() as u64;
            delta.wal_bytes = wal.size_bytes() - wal_bytes_before;
        } else {
            writer.next_seq = expect;
        }
        last_seq = expect - 1;
        delta.last_seq = last_seq;

        self.repl.lock().records.extend(fresh.iter().map(|r| (*r).clone()));
        *self.snapshot.write() = Snapshot { seq: last_seq, index: Arc::new(next) };
        writer.stats.merge(&delta);
        Ok(last_seq)
    }

    /// The lowest sequence number replication can serve *from* (see
    /// [`MutableIndex::replication_tail`]): subscribers asking below
    /// this floor are refused.
    pub fn replication_floor(&self) -> u64 {
        self.repl.lock().floor
    }

    /// Write a checkpoint (`checkpoint.c2d`, via tmp-file + rename) of
    /// the current snapshot and truncate the WAL, bounding recovery
    /// time. No-op in ephemeral mode. Readers are unaffected; writers
    /// wait on the writer lock for the file I/O.
    pub fn checkpoint(&self) -> io::Result<()> {
        let writer = self.writer.lock();
        if let Some(why) = &writer.poisoned {
            return Err(io::Error::other(format!(
                "checkpoint refused, write path poisoned ({why}); reopen to recover"
            )));
        }
        let Some(dir) = writer.dir.clone() else { return Ok(()) };
        // With the writer lock held no batch can publish, so the
        // current snapshot is the latest durable state.
        let (index, seq) = {
            let snap = self.snapshot.read();
            (Arc::clone(&snap.index), snap.seq)
        };
        let blob = save_dynamic(&index, seq);
        let tmp = dir.join("checkpoint.c2d.tmp");
        let final_path = dir.join(CHECKPOINT_FILE);
        {
            let mut f = std::fs::File::create(&tmp)?;
            io::Write::write_all(&mut f, &blob)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &final_path)?;
        // Make the rename itself durable before dropping the log.
        std::fs::File::open(&dir)?.sync_all()?;
        drop(index);
        let mut writer = writer;
        if let Some(wal) = writer.wal.as_mut() {
            wal.reset()?;
        }
        Ok(())
    }

    /// [`MutableIndex::checkpoint`], but only once the WAL has grown
    /// past `wal_bytes` — the trigger a serving layer calls after every
    /// mutation flush so recovery time stays bounded instead of the log
    /// growing forever (a bulk seed alone can be tens of MB). Returns
    /// whether a checkpoint ran; always `Ok(false)` in ephemeral mode.
    /// Pass 0 to force one (any real log is at least its header).
    pub fn checkpoint_if_wal_exceeds(&self, wal_bytes: u64) -> io::Result<bool> {
        // Racing a concurrent batch between the size probe and the
        // checkpoint is benign: the checkpoint takes the writer lock
        // and snapshots whatever is published at that point.
        if self.wal_size_bytes().is_none_or(|b| b <= wal_bytes) {
            return Ok(false);
        }
        self.checkpoint()?;
        Ok(true)
    }

    /// Current WAL size in bytes (header included); `None` in ephemeral
    /// mode.
    pub fn wal_size_bytes(&self) -> Option<u64> {
        self.writer.lock().wal.as_ref().map(Wal::size_bytes)
    }

    /// `true` once a WAL failure could not be rolled back and the write
    /// path refuses all further mutations (reads stay available).
    /// Recovery is a reopen of the backing directory.
    pub fn is_poisoned(&self) -> bool {
        self.writer.lock().poisoned.is_some()
    }

    /// Test support (fault injection): run `f` against the underlying
    /// WAL. `None` in ephemeral mode.
    #[doc(hidden)]
    pub fn with_wal<R>(&self, f: impl FnOnce(&mut Wal) -> R) -> Option<R> {
        self.writer.lock().wal.as_mut().map(f)
    }

    /// The current read snapshot: an immutable index plus the sequence
    /// number of the last mutation it reflects. Hold the `Arc` as long
    /// as needed — it never mutates.
    pub fn snapshot(&self) -> (Arc<DynamicIndex>, u64) {
        let snap = self.snapshot.read();
        (Arc::clone(&snap.index), snap.seq)
    }

    /// c-k-ANN query against the current snapshot, with
    /// [`QueryStats::snapshot_seq`] stamped.
    pub fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        self.query_with(q, k, &SearchOptions::default())
    }

    /// [`MutableIndex::query`] with explicit observability options.
    pub fn query_with(
        &self,
        q: &[f32],
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<Neighbor>, QueryStats) {
        let (index, seq) = self.snapshot();
        let (nn, mut stats) = index.query_with(q, k, opts);
        stats.snapshot_seq = seq;
        (nn, stats)
    }

    /// Batch query against one coherent snapshot (every query in the
    /// batch sees the same index), with per-query
    /// [`QueryStats::snapshot_seq`] stamped.
    pub fn query_batch_with(
        &self,
        queries: &Dataset,
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        let (index, seq) = self.snapshot();
        let (mut per_query, batch) = index.query_batch_with(queries, k, opts);
        for (_, stats) in per_query.iter_mut() {
            stats.snapshot_seq = seq;
        }
        (per_query, batch)
    }

    /// Number of live objects in the current snapshot.
    pub fn len(&self) -> usize {
        self.snapshot.read().index.len()
    }

    /// `true` when the current snapshot holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dataset dimensionality.
    pub fn dim(&self) -> usize {
        self.snapshot.read().index.dim()
    }

    /// Sequence number of the last acknowledged mutation (0 when none).
    pub fn last_seq(&self) -> u64 {
        self.snapshot.read().seq
    }

    /// Cumulative write-path counters since open.
    pub fn mutation_stats(&self) -> MutationStats {
        self.writer.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_storage::wal::scratch_dir;
    use cc_vector::gen::{generate, Distribution};

    fn cfg() -> C2lshConfig {
        C2lshConfig::builder().bucket_width(1.0).seed(42).build()
    }

    fn points(n: usize, d: usize, seed: u64) -> Dataset {
        generate(
            Distribution::GaussianMixture { clusters: 8, spread: 0.02, scale: 10.0 },
            n,
            d,
            seed,
        )
    }

    fn insert(v: &[f32]) -> MutationOp {
        MutationOp::Insert { vector: v.to_vec(), meta: PointMeta::default() }
    }

    #[test]
    fn ephemeral_apply_and_query() {
        let data = points(50, 6, 1);
        let m = MutableIndex::ephemeral(DynamicIndex::new(6, 200, &cfg()));
        let ops: Vec<MutationOp> = data.iter().map(insert).collect();
        let (acks, delta) = m.apply_batch(&ops).unwrap();
        assert_eq!(acks.len(), 50);
        assert_eq!(delta.inserts, 50);
        assert_eq!(delta.last_seq, 50);
        assert_eq!(m.len(), 50);
        let (nn, stats) = m.query(data.get(7), 1);
        assert_eq!(nn[0].id, 7);
        assert_eq!(stats.snapshot_seq, 50, "queries carry the snapshot seq");
        // Deletes: one hit, one miss.
        let (acks, delta) = m
            .apply_batch(&[MutationOp::Delete { oid: 7 }, MutationOp::Delete { oid: 999 }])
            .unwrap();
        assert_eq!(acks[0], MutationAck::Deleted { oid: 7, found: true, seq: 51 });
        assert_eq!(acks[1], MutationAck::Deleted { oid: 999, found: false, seq: 51 });
        assert_eq!((delta.deletes, delta.delete_misses), (1, 1));
        assert_ne!(m.query(data.get(7), 1).0[0].id, 7);
        let total = m.mutation_stats();
        assert_eq!((total.inserts, total.deletes, total.batches), (50, 1, 2));
    }

    #[test]
    fn invalid_ops_fail_the_batch_before_any_effect() {
        let m = MutableIndex::ephemeral(DynamicIndex::new(4, 100, &cfg()));
        let bad_dim = m.apply_batch(&[insert(&[1.0; 4]), insert(&[1.0; 3])]).unwrap_err();
        assert_eq!(bad_dim.kind(), io::ErrorKind::InvalidInput);
        let nan = m.apply_batch(&[insert(&[f32::NAN; 4])]).unwrap_err();
        assert_eq!(nan.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(m.len(), 0, "failed batches must not partially apply");
        assert_eq!(m.last_seq(), 0);
    }

    #[test]
    fn durable_open_apply_reopen_recovers() {
        let dir = scratch_dir("mutable-reopen");
        let data = points(40, 5, 2);
        let q = data.get(3).to_vec();
        {
            let m = MutableIndex::open(&dir, 5, 100, &cfg()).unwrap();
            let ops: Vec<MutationOp> = data.iter().map(insert).collect();
            m.apply_batch(&ops).unwrap();
            m.apply_batch(&[MutationOp::Delete { oid: 3 }]).unwrap();
            assert_eq!(m.last_seq(), 41);
        } // dropped without checkpoint: recovery is pure WAL replay
        let m = MutableIndex::open(&dir, 5, 100, &cfg()).unwrap();
        assert_eq!(m.last_seq(), 41);
        assert_eq!(m.len(), 39);
        assert_ne!(m.query(&q, 1).0[0].id, 3, "deleted object stays deleted across reopen");
        // New mutations continue the sequence.
        let (acks, _) = m.apply_batch(&[insert(&[0.5; 5])]).unwrap();
        assert_eq!(acks[0], MutationAck::Inserted { oid: 40, seq: 42 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_reopen_agrees() {
        let dir = scratch_dir("mutable-ckpt");
        let data = points(30, 4, 3);
        {
            let m = MutableIndex::open(&dir, 4, 100, &cfg()).unwrap();
            let ops: Vec<MutationOp> = data.iter().map(insert).collect();
            m.apply_batch(&ops).unwrap();
            m.checkpoint().unwrap();
            // Post-checkpoint mutations land in the (reset) WAL.
            m.apply_batch(&[MutationOp::Delete { oid: 0 }]).unwrap();
            assert_eq!(m.last_seq(), 31);
        }
        assert!(dir.join(CHECKPOINT_FILE).exists());
        let wal_len = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        assert!(
            wal_len < 100,
            "WAL should hold only the post-checkpoint delete, got {wal_len} bytes"
        );
        let m = MutableIndex::open(&dir, 4, 100, &cfg()).unwrap();
        assert_eq!(m.last_seq(), 31);
        assert_eq!(m.len(), 29);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The review-found poison scenario: a WAL append dying mid-record
    /// (ENOSPC) must not leave garbage that swallows later acknowledged
    /// batches at replay. The failed batch rolls the log back to the
    /// pre-batch boundary, a subsequent batch is acknowledged on a
    /// clean log, and recovery after a kill serves exactly the
    /// acknowledged history.
    #[test]
    fn failed_append_mid_batch_rolls_back_and_later_acks_survive_reopen() {
        let dir = scratch_dir("mutable-enospc");
        let data = points(12, 4, 9);
        let config = cfg();
        {
            let m = MutableIndex::open(&dir, 4, 100, &config).unwrap();
            let a: Vec<MutationOp> = data.iter().take(4).map(insert).collect();
            m.apply_batch(&a).unwrap();

            // Batch B: the second of three records tears after 7 bytes.
            m.with_wal(|w| w.inject_append_failure(1, 7)).unwrap();
            let b: Vec<MutationOp> = data.iter().skip(4).take(3).map(insert).collect();
            let err = m.apply_batch(&b).unwrap_err();
            assert_eq!(err.to_string(), "injected append failure");
            assert!(!m.is_poisoned(), "a successful rollback keeps the writer usable");
            assert_eq!(m.len(), 4, "the failed batch must not partially apply");
            assert_eq!(m.last_seq(), 4);

            // Batch C lands on the rolled-back log and is acknowledged.
            let c: Vec<MutationOp> = data.iter().skip(8).take(3).map(insert).collect();
            let (acks, _) = m.apply_batch(&c).unwrap();
            assert_eq!(acks[0], MutationAck::Inserted { oid: 4, seq: 5 });
            assert_eq!(m.last_seq(), 7);
        } // kill
        let r = MutableIndex::open(&dir, 4, 100, &config).unwrap();
        assert_eq!(r.last_seq(), 7, "every acknowledged mutation recovered");
        assert_eq!(r.len(), 7);
        let mut reference = DynamicIndex::new(4, 100, &config);
        for v in data.iter().take(4).chain(data.iter().skip(8).take(3)) {
            reference.insert(v.to_vec());
        }
        assert_eq!(r.snapshot().0.slots(), reference.slots(), "recovered state is A ++ C");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_sync_rolls_back_fully_written_records_too() {
        let dir = scratch_dir("mutable-syncfail");
        let data = points(8, 4, 10);
        let config = cfg();
        {
            let m = MutableIndex::open(&dir, 4, 100, &config).unwrap();
            let a: Vec<MutationOp> = data.iter().take(3).map(insert).collect();
            m.apply_batch(&a).unwrap();
            // Whole batch written, group-commit fsync fails: the
            // records are unacknowledged and must be truncated away,
            // not left to reappear at replay.
            m.with_wal(|w| w.inject_sync_failures(1)).unwrap();
            let err = m.apply_batch(&[insert(data.get(3))]).unwrap_err();
            assert_eq!(err.to_string(), "injected sync failure");
            assert!(!m.is_poisoned());
            assert_eq!(m.len(), 3);
            m.apply_batch(&[insert(data.get(4))]).unwrap();
        } // kill
        let r = MutableIndex::open(&dir, 4, 100, &config).unwrap();
        assert_eq!(r.last_seq(), 4);
        let mut reference = DynamicIndex::new(4, 100, &config);
        for v in data.iter().take(3).chain(std::iter::once(data.get(4))) {
            reference.insert(v.to_vec());
        }
        assert_eq!(r.snapshot().0.slots(), reference.slots());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unrollbackable_failure_poisons_writes_until_reopen() {
        let dir = scratch_dir("mutable-poison");
        let data = points(6, 4, 11);
        let config = cfg();
        {
            let m = MutableIndex::open(&dir, 4, 100, &config).unwrap();
            let a: Vec<MutationOp> = data.iter().take(3).map(insert).collect();
            m.apply_batch(&a).unwrap();
            // First injected failure kills the batch's group commit,
            // the second kills the rollback's truncation fsync: the
            // on-disk state is now unknowable.
            m.with_wal(|w| w.inject_sync_failures(2)).unwrap();
            m.apply_batch(&[insert(data.get(3))]).unwrap_err();
            assert!(m.is_poisoned());
            // Mutations and checkpoints are refused; reads still serve.
            let err = m.apply_batch(&[insert(data.get(4))]).unwrap_err();
            assert!(err.to_string().contains("poisoned"), "{err}");
            let err = m.checkpoint().unwrap_err();
            assert!(err.to_string().contains("poisoned"), "{err}");
            assert_eq!(m.checkpoint_if_wal_exceeds(0).unwrap_err().kind(), err.kind());
            assert_eq!(m.len(), 3);
            assert_eq!(m.query(data.get(0), 1).0[0].id, 0);
        } // kill

        // Reopen truncates whatever the torn log holds past the last
        // acknowledged prefix and the write path works again.
        let r = MutableIndex::open(&dir, 4, 100, &config).unwrap();
        assert!(!r.is_poisoned());
        assert_eq!(r.last_seq(), 3, "only acknowledged batches recovered");
        r.apply_batch(&[insert(data.get(5))]).unwrap();
        assert_eq!(r.last_seq(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_if_wal_exceeds_respects_the_threshold() {
        let dir = scratch_dir("mutable-ckpt-threshold");
        let data = points(10, 4, 12);
        let m = MutableIndex::open(&dir, 4, 100, &cfg()).unwrap();
        let ops: Vec<MutationOp> = data.iter().map(insert).collect();
        m.apply_batch(&ops).unwrap();
        let size = m.wal_size_bytes().unwrap();
        assert!(!m.checkpoint_if_wal_exceeds(size).unwrap(), "at-threshold is not over it");
        assert!(m.checkpoint_if_wal_exceeds(size - 1).unwrap());
        assert!(dir.join(CHECKPOINT_FILE).exists());
        assert!(m.wal_size_bytes().unwrap() < size, "checkpoint truncated the log");
        // Ephemeral indexes never checkpoint.
        let e = MutableIndex::ephemeral(DynamicIndex::new(4, 100, &cfg()));
        assert_eq!(e.wal_size_bytes(), None);
        assert!(!e.checkpoint_if_wal_exceeds(0).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metadata_survives_wal_replay_and_checkpoint() {
        use crate::meta::Predicate;
        let dir = scratch_dir("mutable-meta");
        let data = points(60, 6, 20);
        let config = cfg();
        let ops: Vec<MutationOp> = data
            .iter()
            .enumerate()
            .map(|(i, v)| MutationOp::Insert {
                vector: v.to_vec(),
                meta: PointMeta::new(1 << (i % 8), (i % 3) as u32),
            })
            .collect();
        let opts = SearchOptions {
            filter: Some(Predicate::label(1).and_tag_any(0xFF)),
            ..Default::default()
        };
        let q = data.get(13).to_vec();
        let want = {
            let m = MutableIndex::open(&dir, 6, 100, &config).unwrap();
            m.apply_batch(&ops).unwrap();
            m.query_with(&q, 4, &opts).0
        }; // kill without checkpoint: recovery is pure WAL replay
        assert!(!want.is_empty());
        for n in &want {
            assert_eq!(n.id % 3, 1, "predicate violated by {}", n.id);
        }
        {
            let m = MutableIndex::open(&dir, 6, 100, &config).unwrap();
            assert_eq!(m.query_with(&q, 4, &opts).0, want, "WAL replay lost metadata");
            m.checkpoint().unwrap();
        }
        // Now recovery goes through the checkpoint instead of the log.
        let m = MutableIndex::open(&dir, 6, 100, &config).unwrap();
        assert_eq!(m.query_with(&q, 4, &opts).0, want, "checkpoint lost metadata");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_mismatched_config() {
        let dir = scratch_dir("mutable-cfg");
        {
            let m = MutableIndex::open(&dir, 4, 100, &cfg()).unwrap();
            m.apply_batch(&[insert(&[1.0; 4])]).unwrap();
            m.checkpoint().unwrap();
        }
        let other = C2lshConfig::builder().bucket_width(2.0).seed(42).build();
        let err = MutableIndex::open(&dir, 4, 100, &other).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replication_tail_ships_and_apply_replicated_converges() {
        let dir_p = scratch_dir("repl-primary");
        let dir_f = scratch_dir("repl-follower");
        let data = points(30, 5, 33);
        let config = cfg();
        let primary = MutableIndex::open(&dir_p, 5, 100, &config).unwrap();
        let follower = MutableIndex::open(&dir_f, 5, 100, &config).unwrap();

        let ops: Vec<MutationOp> = data.iter().take(20).map(insert).collect();
        primary.apply_batch(&ops).unwrap();
        primary.apply_batch(&[MutationOp::Delete { oid: 3 }]).unwrap();

        // Ship the whole tail in two pulls.
        let (last, tail) = primary.replication_tail(0, 15).unwrap();
        assert_eq!(last, 21);
        assert_eq!(tail.len(), 15);
        assert_eq!(follower.apply_replicated(&tail).unwrap(), 15);
        let (_, tail) = primary.replication_tail(15, 100).unwrap();
        assert_eq!(tail.len(), 6);
        assert_eq!(follower.apply_replicated(&tail).unwrap(), 21);

        // Converged: same answers, same seq, same live count.
        assert_eq!(follower.last_seq(), primary.last_seq());
        assert_eq!(follower.len(), primary.len());
        let q = data.get(7).to_vec();
        assert_eq!(follower.query(&q, 3).0, primary.query(&q, 3).0);

        // Idempotent redelivery: replaying the same tail is a no-op.
        assert_eq!(follower.apply_replicated(&tail).unwrap(), 21);
        assert_eq!(follower.len(), primary.len());

        // A gap is refused, not silently applied.
        let (_, all) = primary.replication_tail(0, 1000).unwrap();
        let gapped = [all[0].clone(), all[2].clone()];
        let fresh = MutableIndex::ephemeral(DynamicIndex::new(5, 100, &config));
        let err = fresh.apply_replicated(&gapped).unwrap_err();
        assert!(err.to_string().contains("replication gap"), "{err}");

        // Caught-up probe: empty tail, high-water mark echoed.
        let (last, tail) = primary.replication_tail(21, 100).unwrap();
        assert_eq!((last, tail.len()), (21, 0));

        // The follower's own WAL carried the shipped seqs: a cold
        // reopen of the follower directory reproduces the state.
        drop(follower);
        let reopened = MutableIndex::open(&dir_f, 5, 100, &config).unwrap();
        assert_eq!(reopened.last_seq(), 21);
        assert_eq!(reopened.query(&q, 3).0, primary.query(&q, 3).0);
        std::fs::remove_dir_all(&dir_p).unwrap();
        std::fs::remove_dir_all(&dir_f).unwrap();
    }

    #[test]
    fn replication_floor_rises_with_checkpointed_reopen() {
        let dir = scratch_dir("repl-floor");
        let data = points(10, 4, 34);
        let config = cfg();
        {
            let m = MutableIndex::open(&dir, 4, 100, &config).unwrap();
            let ops: Vec<MutationOp> = data.iter().map(insert).collect();
            m.apply_batch(&ops).unwrap();
            assert_eq!(m.replication_floor(), 0, "fresh open retains from the start");
            m.checkpoint().unwrap();
            // A live index keeps its in-memory retention across the
            // checkpoint — connected followers are unaffected.
            assert_eq!(m.replication_tail(0, 100).unwrap().1.len(), 10);
            m.apply_batch(&[MutationOp::Delete { oid: 0 }]).unwrap();
        }
        // A reopen only has the post-checkpoint history.
        let m = MutableIndex::open(&dir, 4, 100, &config).unwrap();
        assert_eq!(m.replication_floor(), 10);
        let err = m.replication_tail(5, 100).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let (last, tail) = m.replication_tail(10, 100).unwrap();
        assert_eq!((last, tail.len()), (11, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn readers_see_pre_or_post_batch_never_torn() {
        let data = points(200, 6, 4);
        let m = MutableIndex::ephemeral(DynamicIndex::new(6, 400, &cfg()));
        let ops: Vec<MutationOp> = data.iter().map(insert).collect();
        m.apply_batch(&ops).unwrap();
        let q = data.get(11).to_vec();
        let pre = m.query(&q, 3).0;
        let stop = std::sync::atomic::AtomicBool::new(false);
        crossbeam::scope(|s| {
            let stop = &stop;
            let m = &m;
            let q = &q;
            let pre = &pre;
            for _ in 0..4 {
                s.spawn(move |_| {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let (nn, stats) = m.query(q, 3);
                        // Exactly one of the two published states.
                        if stats.snapshot_seq <= 200 {
                            assert_eq!(&nn, pre, "torn view at seq {}", stats.snapshot_seq);
                        } else {
                            assert_ne!(nn[0].id, 11, "post-batch view must not contain oid 11");
                        }
                    }
                });
            }
            // One mutation batch racing the readers: delete the top
            // answer plus neighbors-of-neighbors, insert replacements.
            let mut batch = vec![MutationOp::Delete { oid: 11 }];
            for v in data.iter().take(20) {
                batch.push(insert(v));
            }
            m.apply_batch(&batch).unwrap();
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        })
        .unwrap();
    }
}

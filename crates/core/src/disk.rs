//! The disk-resident C2LSH index.
//!
//! Identical logical layout to [`crate::index::C2lshIndex`], but every
//! hash table is a [`BucketFile`] — sorted `(bucket, oid)` entries packed
//! into 4 KiB pages of a [`PageFile`] — so each query's page I/O can be
//! measured exactly, reproducing the paper's I/O-cost experiments.
//!
//! The [`crate::engine`] loop runs against this store; the in-memory
//! fence keys of each [`BucketFile`] play the role of the (always-cached)
//! sparse index over each sorted run, and leaf-page reads are charged to
//! the embedded [`PageFile`]'s counters.

use crate::config::C2lshConfig;
use crate::engine::QueryScratch;
use crate::engine::{self, BucketWindows, SearchOptions, SearchParams, TableStore};
use crate::hash::HashFamily;
use crate::meta::PointMeta;
use crate::params::FullParams;
use crate::stats::{BatchStats, QueryStats};
use cc_storage::bucket_file::BucketFile;
use cc_storage::pagefile::PageFile;
use cc_vector::dataset::Dataset;
use cc_vector::gt::Neighbor;
use parking_lot::Mutex;

/// The paged C2LSH index.
pub struct DiskIndex<'d> {
    data: &'d Dataset,
    config: C2lshConfig,
    params: FullParams,
    family: HashFamily,
    file: PageFile,
    tables: Vec<BucketFile>,
    /// Per-point attribute payloads; empty = every point defaults.
    metas: Vec<PointMeta>,
    scratch: Mutex<QueryScratch>,
    /// Pages a candidate verification costs: reading one data vector.
    /// `⌈d·4 / 4096⌉`, at least 1 — the paper charges one page per
    /// candidate unless vectors exceed a page.
    verify_pages: u64,
}

impl<'d> DiskIndex<'d> {
    /// Build the paged index (hash, sort, pack into pages).
    ///
    /// # Panics
    /// Panics on an empty dataset or invalid config.
    pub fn build(data: &'d Dataset, config: &C2lshConfig) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        let params = FullParams::derive(data.len(), config);
        let family = HashFamily::generate(params.m, data.dim(), config);
        let mut file = PageFile::new();
        let tables: Vec<BucketFile> = family
            .iter()
            .map(|h| {
                let mut pairs: Vec<(i64, u32)> =
                    data.iter().enumerate().map(|(i, v)| (h.bucket(v), i as u32)).collect();
                pairs.sort_unstable();
                BucketFile::build(&mut file, &pairs)
            })
            .collect();
        file.reset_stats();
        let verify_pages = (data.dim() as u64 * 4).div_ceil(4096).max(1);
        Self {
            data,
            config: config.clone(),
            params,
            family,
            file,
            tables,
            metas: Vec::new(),
            scratch: Mutex::new(QueryScratch::new(data.len())),
            verify_pages,
        }
    }

    /// Attach per-point metadata (one entry per indexed point, in id
    /// order). Filtered queries resolve [`Predicate`] clauses against
    /// these payloads.
    ///
    /// [`Predicate`]: crate::meta::Predicate
    ///
    /// # Panics
    /// Panics when `metas.len() != len()`.
    pub fn set_meta(&mut self, metas: Vec<PointMeta>) {
        assert_eq!(metas.len(), self.data.len(), "one PointMeta per indexed point");
        self.metas = metas;
    }

    /// Builder-style [`DiskIndex::set_meta`].
    #[must_use]
    pub fn with_meta(mut self, metas: Vec<PointMeta>) -> Self {
        self.set_meta(metas);
        self
    }

    /// The derived parameters in effect.
    pub fn params(&self) -> &FullParams {
        &self.params
    }

    fn search_params(&self) -> SearchParams {
        SearchParams {
            c: self.config.c,
            l: self.params.l as u32,
            beta_n: self.params.beta_n,
            base_radius: self.config.base_radius,
        }
    }

    /// c-k-ANN query with exact page-I/O accounting.
    ///
    /// The returned [`QueryStats::io`] contains the pages read from the
    /// hash tables *plus* one page per verified candidate (fetching the
    /// vector to compute its true distance), matching the paper's cost
    /// model for disk-resident data.
    pub fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        self.query_with(q, k, &SearchOptions::default())
    }

    /// [`DiskIndex::query`] with explicit observability options.
    pub fn query_with(
        &self,
        q: &[f32],
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<Neighbor>, QueryStats) {
        let mut scratch = self.scratch.lock();
        engine::run_query(self, &self.search_params(), &mut scratch, q, k, opts)
    }

    /// Convenience c-ANN (k = 1).
    pub fn query_one(&self, q: &[f32]) -> (Option<Neighbor>, QueryStats) {
        let (mut nn, stats) = self.query(q, 1);
        (nn.pop(), stats)
    }

    /// Answer a whole query set in parallel across scoped threads.
    ///
    /// Per-query [`QueryStats::io`] carries the deterministic
    /// verification charge; the table page reads of the whole batch are
    /// reported once in [`BatchStats::io`] (workers share the page
    /// file's counters, so a per-query table delta is not attributable
    /// under concurrency).
    pub fn query_batch(
        &self,
        queries: &Dataset,
        k: usize,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        self.query_batch_with(queries, k, &SearchOptions::default())
    }

    /// [`DiskIndex::query_batch`] with explicit observability options.
    pub fn query_batch_with(
        &self,
        queries: &Dataset,
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        engine::run_query_batch(self, &self.search_params(), queries, k, opts)
    }

    /// Index size in pages (hash tables only; the paper's index-size
    /// metric excludes the raw data file, which every method shares).
    pub fn size_pages(&self) -> usize {
        self.file.len()
    }

    /// The backing page file (exposed for I/O-trace experiments).
    pub fn page_file(&self) -> &PageFile {
        &self.file
    }

    /// Index size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.file.size_bytes()
    }
}

impl TableStore for DiskIndex<'_> {
    type Cursor = BucketWindows;

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn num_tables(&self) -> usize {
        self.tables.len()
    }

    fn begin(&self, q: &[f32]) -> BucketWindows {
        BucketWindows::new(self.family.buckets(q))
    }

    fn begin_batch(&self, queries: &Dataset) -> Vec<BucketWindows> {
        let m = self.family.len();
        self.family
            .buckets_batch(queries)
            .chunks_exact(m)
            .map(|b| BucketWindows::new(b.to_vec()))
            .collect()
    }

    fn expand(
        &self,
        cursor: &mut BucketWindows,
        t: usize,
        radius: i64,
        visit: &mut dyn FnMut(u32) -> bool,
    ) {
        let table = &self.tables[t];
        let n = self.data.len();
        let (left, right) = cursor.grow(t, radius, n, |b, _, _| table.lower_bound(&self.file, b));
        for range in [left, right] {
            if !range.is_empty() {
                table.scan_while(&self.file, range.start, range.end, |_, oid| visit(oid));
            }
        }
    }

    fn exhausted(&self, cursor: &BucketWindows) -> bool {
        cursor.exhausted(self.data.len())
    }

    fn vector(&self, oid: u32) -> Option<&[f32]> {
        Some(self.data.get(oid as usize))
    }

    fn meta(&self, oid: u32) -> PointMeta {
        self.metas.get(oid as usize).copied().unwrap_or_default()
    }

    fn verify_pages(&self) -> u64 {
        self.verify_pages
    }

    fn io_reads(&self) -> u64 {
        self.file.stats().reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_vector::gen::{generate, Distribution};

    fn clustered(n: usize, d: usize, seed: u64) -> Dataset {
        generate(
            Distribution::GaussianMixture { clusters: 16, spread: 0.015, scale: 10.0 },
            n,
            d,
            seed,
        )
    }

    fn cfg() -> C2lshConfig {
        C2lshConfig::builder().bucket_width(1.0).seed(42).build()
    }

    #[test]
    fn disk_results_match_memory_results() {
        use crate::index::C2lshIndex;
        let data = clustered(1500, 16, 10);
        let mem = C2lshIndex::build(&data, &cfg());
        let disk = DiskIndex::build(&data, &cfg());
        for qi in [0usize, 100, 700] {
            let q = data.get(qi);
            let (m_nn, _) = mem.query(q, 10);
            let (d_nn, _) = disk.query(q, 10);
            assert_eq!(m_nn, d_nn, "query {qi} diverged between backends");
        }
    }

    #[test]
    fn io_is_counted_and_positive() {
        let data = clustered(2000, 16, 11);
        let disk = DiskIndex::build(&data, &cfg());
        let (_, stats) = disk.query(data.get(3), 10);
        assert!(stats.io.reads > 0);
        // Verification I/O is included.
        assert!(stats.io.reads >= stats.candidates_verified as u64);
    }

    #[test]
    fn io_resets_between_queries() {
        let data = clustered(1000, 8, 12);
        let disk = DiskIndex::build(&data, &cfg());
        let (_, s1) = disk.query(data.get(0), 5);
        let (_, s2) = disk.query(data.get(0), 5);
        assert_eq!(s1.io, s2.io, "identical queries must cost identical I/O");
    }

    #[test]
    fn size_pages_scales_with_m() {
        let data = clustered(2000, 8, 13);
        let disk = DiskIndex::build(&data, &cfg());
        let per_table = 2000usize.div_ceil(cc_storage::bucket_file::ENTRIES_PER_PAGE);
        assert_eq!(disk.size_pages(), per_table * disk.params().m);
        assert_eq!(disk.size_bytes(), disk.size_pages() * 4096);
    }

    #[test]
    fn wide_vectors_charge_multiple_verify_pages() {
        let data = clustered(300, 1500, 14); // 6000 B per vector -> 2 pages
        let disk = DiskIndex::build(&data, &cfg());
        assert_eq!(disk.verify_pages, 2);
    }

    #[test]
    fn batch_results_match_sequential_and_io_is_conserved() {
        let data = clustered(900, 12, 15);
        let disk = DiskIndex::build(&data, &cfg());
        let queries = data.slice_rows(0, 16);
        let (batch, agg) = disk.query_batch(&queries, 5);
        let mut seq_table_reads = 0u64;
        let mut seq_verify_reads = 0u64;
        for (qi, (nn, stats)) in batch.iter().enumerate() {
            let (seq_nn, seq_stats) = disk.query(queries.get(qi), 5);
            assert_eq!(nn, &seq_nn, "query {qi}");
            let verify = seq_stats.candidates_verified as u64 * disk.verify_pages;
            // Per-query batch I/O carries only the verification charge.
            assert_eq!(stats.io.reads, verify, "query {qi}");
            seq_verify_reads += verify;
            seq_table_reads += seq_stats.io.reads - verify;
        }
        // Batch-level I/O = all verification charges + table reads of
        // the whole batch, which matches the sequential sum exactly
        // (bucket scans read the same pages either way).
        assert_eq!(agg.io.reads, seq_verify_reads + seq_table_reads);
    }
}

//! # c2lsh — Locality-Sensitive Hashing with Dynamic Collision Counting
//!
//! A from-scratch Rust implementation of **C2LSH** (Gan, Feng, Fang, Ng —
//! *"Locality-Sensitive Hashing Scheme Based on Dynamic Collision
//! Counting"*, SIGMOD 2012), the LSH scheme that replaces E2LSH's static
//! concatenation of `K` hash functions with per-object collision counting
//! over `m` *single-function* hash tables, and replaces per-radius
//! physical indexes with **virtual rehashing** over one set of tables.
//!
//! ## Quick start
//!
//! ```
//! use c2lsh::{C2lshConfig, C2lshIndex};
//! use cc_vector::gen::{generate, Distribution};
//!
//! // 1000 clustered vectors in R^16.
//! let data = generate(
//!     Distribution::GaussianMixture { clusters: 10, spread: 0.02, scale: 10.0 },
//!     1000, 16, 42,
//! );
//! let config = C2lshConfig::builder().approximation_ratio(2).bucket_width(1.0).seed(7).build();
//! let index = C2lshIndex::build(&data, &config);
//!
//! let query = data.get(0).to_vec();
//! let (neighbors, stats) = index.query(&query, 5);
//! assert_eq!(neighbors.len(), 5);
//! assert_eq!(neighbors[0].id, 0); // the query itself is in the data
//! assert!(stats.candidates_verified >= 5);
//! ```
//!
//! ## Crate layout
//!
//! * [`config`] — tunables (`c`, `w`, `δ`, `β`, seed) with a builder,
//! * [`params`] — per-dataset derived parameters (`m`, `l`, `α`),
//! * [`hash`] — the p-stable hash family and hash-string computation,
//! * [`index`] — the in-memory virtual-rehashing index,
//! * [`disk`] — the same index over 4 KiB pages with I/O accounting,
//! * [`rehash`] — virtual rehashing window arithmetic (shared by both),
//! * [`counting`] — epoch-stamped collision counters,
//! * [`query`] — the c-k-ANN search loop (terminating conditions T1/T2),
//! * [`stats`] — per-query cost counters,
//! * [`error`] — configuration errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod counting;
pub mod disk;
pub mod dynamic;
pub mod error;
pub mod hash;
pub mod index;
pub mod params;
pub mod persist;
pub mod query;
pub mod rehash;
pub mod stats;

pub use config::{Beta, C2lshConfig, ConfigBuilder};
pub use disk::DiskIndex;
pub use dynamic::DynamicIndex;
pub use error::C2lshError;
pub use hash::{HashFamily, PstableHash};
pub use index::C2lshIndex;
pub use params::FullParams;
pub use persist::{load_index, save_index, PersistError};
pub use stats::QueryStats;

//! # c2lsh — Locality-Sensitive Hashing with Dynamic Collision Counting
//!
//! A from-scratch Rust implementation of **C2LSH** (Gan, Feng, Fang, Ng —
//! *"Locality-Sensitive Hashing Scheme Based on Dynamic Collision
//! Counting"*, SIGMOD 2012), the LSH scheme that replaces E2LSH's static
//! concatenation of `K` hash functions with per-object collision counting
//! over `m` *single-function* hash tables, and replaces per-radius
//! physical indexes with **virtual rehashing** over one set of tables.
//!
//! ## Quick start
//!
//! ```
//! use c2lsh::{C2lshConfig, C2lshIndex};
//! use cc_vector::gen::{generate, Distribution};
//!
//! // 1000 clustered vectors in R^16.
//! let data = generate(
//!     Distribution::GaussianMixture { clusters: 10, spread: 0.02, scale: 10.0 },
//!     1000, 16, 42,
//! );
//! let config = C2lshConfig::builder().approximation_ratio(2).bucket_width(1.0).seed(7).build();
//! let index = C2lshIndex::build(&data, &config);
//!
//! let query = data.get(0).to_vec();
//! let (neighbors, stats) = index.query(&query, 5);
//! assert_eq!(neighbors.len(), 5);
//! assert_eq!(neighbors[0].id, 0); // the query itself is in the data
//! assert!(stats.candidates_verified >= 5);
//! ```
//!
//! ## Crate layout
//!
//! The c-k-ANN search loop — virtual rehashing, dynamic collision
//! counting, the T1/T2 terminating conditions — is implemented exactly
//! once, in [`engine`]. Each backend (in-memory sorted runs, 4 KiB
//! paged tables, updatable B-tree tables, and the query-aware trees of
//! the downstream `qalsh` crate) implements [`engine::TableStore`] and
//! gets `query`, `query_one` and a parallel `query_batch` from the
//! engine, along with the [`stats`] observability layer.
//!
//! * [`config`] — tunables (`c`, `w`, `δ`, `β`, seed) with a builder,
//! * [`params`] — per-dataset derived parameters (`m`, `l`, `α`),
//! * [`hash`] — the p-stable hash family and hash-string computation,
//! * [`engine`] — the generic collision-counting search engine: the
//!   [`engine::TableStore`] backend trait, the single c-k-ANN loop
//!   ([`engine::run_query`]), the parallel batch executor
//!   ([`engine::run_query_batch`]), window cursors
//!   ([`engine::BucketWindows`], [`engine::KeyWindows`]) and the
//!   epoch-stamped [`engine::counting::CollisionCounter`],
//! * [`index`] — the in-memory backend over sorted runs,
//! * [`disk`] — the paged backend with exact I/O accounting,
//! * [`dynamic`] — the updatable backend over per-table B-trees,
//! * [`sharded`] — one logical index over `S` disjoint data shards:
//!   exact single-loop queries over concatenated shard tables, plus a
//!   parallel per-shard fan-out with `total_cmp` top-k merging,
//! * [`mutable`] — crash-safe online mutations: snapshot-consistent
//!   reads over the dynamic backend plus WAL-backed durability
//!   (acknowledged inserts/deletes survive a kill at any byte offset),
//! * [`meta`] — per-point attribute payloads ([`meta::PointMeta`]) and
//!   the conjunctive [`meta::Predicate`] filters evaluated inside the
//!   counting loop (filtered search),
//! * [`rehash`] — virtual rehashing window arithmetic (shared),
//! * [`stats`] — per-query, per-round and per-batch cost counters,
//! * [`persist`] — index save/load (static `C2L1` blobs and dynamic
//!   `C2D1` checkpoints),
//! * [`error`] — configuration errors plus the unified [`Error`] /
//!   [`ErrorKind`] type whose stable numeric codes ride the service's
//!   protocol Error frames.

// `deny` rather than `forbid`: the [`kernels`] module carries the
// crate's only `unsafe` (stable `std::arch` SIMD with per-site safety
// comments) behind narrowly scoped `#[allow(unsafe_code)]`; everything
// else still fails to compile if it tries to use `unsafe`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod disk;
pub mod dynamic;
pub mod engine;
pub mod error;
pub mod hash;
pub mod index;
pub mod kernels;
pub mod meta;
pub mod mutable;
pub mod paged;
pub mod params;
pub mod persist;
pub mod rehash;
pub mod sharded;
pub mod stats;

/// Epoch-stamped collision counters (re-export of [`engine::counting`]).
pub use engine::counting;

pub use config::{Beta, C2lshConfig, ConfigBuilder};
pub use disk::DiskIndex;
pub use dynamic::DynamicIndex;
pub use engine::{QueryScratch, SearchOptions, SearchParams, TableStore};
pub use error::{C2lshError, Error, ErrorKind};
pub use hash::{HashFamily, PstableHash};
pub use index::C2lshIndex;
pub use kernels::{Kernel, KernelDispatch};
pub use meta::{PointMeta, Predicate};
pub use mutable::{MutableIndex, MutationAck, MutationOp};
pub use paged::{PagedBuilder, PagedStore};
pub use params::FullParams;
pub use persist::{load_dynamic, load_index, save_dynamic, save_index, PersistError};
pub use sharded::{ShardedData, ShardedEngine};
pub use stats::{BatchStats, MutationStats, QueryStats, RoundStats, StageNanos, Termination};

/// Re-export of the page size ([`cc_storage::PAGE_SIZE`]) the paged
/// tier is built on, so downstream crates can size buffer pools
/// without a direct `cc-storage` dep.
pub use cc_storage::PAGE_SIZE;

/// Re-export of the observability primitives ([`cc_obs`]) the stats
/// layer builds on, so downstream crates need no direct `cc-obs` dep
/// to consume [`stats::QueryStats::spans`].
pub use cc_obs::{SpanRecord, Trace};

//! Derived per-dataset parameters.
//!
//! Bridges the configuration to the Hoeffding machinery in
//! [`cc_math::hoeffding`]: resolves `β` against the dataset size,
//! computes `p1 = p(1, w)` and `p2 = p(c, w)` from the p-stable collision
//! probability, and derives `(α*, m, l)`.
//!
//! Note the scale convention: the theory is stated for search radius
//! `R = 1`; `w` is expressed in the same units. Because
//! `p(s, w) = p(s/w, 1)` depends only on the ratio, re-scaling the data
//! and `w` together leaves every derived parameter unchanged.

use crate::config::C2lshConfig;
use cc_math::hoeffding::{derive_params, DerivedParams};
use cc_math::pstable::collision_probability;

/// Everything the index needs, derived from a config and a dataset size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FullParams {
    /// The Hoeffding-derived core (`p1`, `p2`, `α`, `m`, `l`, `δ`, `β`).
    pub derived: DerivedParams,
    /// Number of hash functions actually used (override-aware).
    pub m: usize,
    /// Collision threshold actually used (override-aware).
    pub l: usize,
    /// Resolved false-positive budget as an absolute object count.
    pub beta_n: usize,
}

impl FullParams {
    /// Derive parameters for a dataset of `n` objects under `config`.
    ///
    /// # Panics
    /// Panics when `n == 0` (an index over nothing is a caller bug) or
    /// when the config fails validation.
    pub fn derive(n: usize, config: &C2lshConfig) -> FullParams {
        assert!(n > 0, "cannot derive parameters for an empty dataset");
        config.validate().expect("invalid config reached FullParams::derive");

        let p1 = collision_probability(config.base_radius, config.w);
        let p2 = collision_probability(config.c as f64 * config.base_radius, config.w);
        let beta = config.beta.resolve(n);
        let derived = derive_params(p1, p2, config.delta, beta);
        // Guard against a width/base-radius mismatch: when `w` is far off
        // the data's near-neighbor scale the p1/p2 gap collapses and the
        // Hoeffding bound demands an absurd number of hash tables. Fail
        // fast with advice instead of letting the build exhaust memory.
        assert!(
            config.m_override.is_some() || derived.m <= 50_000,
            "derived m = {} hash tables (p1 = {:.4}, p2 = {:.4}): bucket_width {} is far from \
             the data's near-neighbor scale; normalize the data (see cc_vector::scale) or set \
             base_radius to the intended 'near' distance",
            derived.m,
            p1,
            p2,
            config.w
        );

        let m = config.m_override.unwrap_or(derived.m);
        let l = match (config.l_override, config.m_override) {
            (Some(l), _) => l,
            // m overridden without l: rescale the threshold percentage.
            (None, Some(_)) => ((derived.alpha * m as f64).ceil() as usize).clamp(1, m),
            // No overrides: use the solver's feasible threshold verbatim.
            (None, None) => derived.l,
        };
        let beta_n = ((beta * n as f64).ceil() as usize).max(1);
        FullParams { derived, m, l, beta_n }
    }

    /// The collision-threshold percentage in effect (`l/m`).
    pub fn alpha_effective(&self) -> f64 {
        self.l as f64 / self.m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Beta;

    #[test]
    fn derives_sane_parameters() {
        let cfg = C2lshConfig::default();
        let p = FullParams::derive(54_387, &cfg);
        assert!(p.derived.p1 > p.derived.p2);
        assert!(p.m >= 20 && p.m <= 500, "m = {} out of expected range", p.m);
        assert!(p.l <= p.m && p.l >= 1);
        assert!(p.alpha_effective() > p.derived.p2 && p.alpha_effective() < p.derived.p1);
        assert_eq!(p.beta_n, 100);
    }

    #[test]
    fn m_grows_with_n() {
        let cfg = C2lshConfig::default();
        let small = FullParams::derive(10_000, &cfg);
        let big = FullParams::derive(10_000_000, &cfg);
        assert!(big.m > small.m);
    }

    #[test]
    fn larger_c_needs_fewer_functions() {
        // Wider p1/p2 gap at c = 3 ⇒ smaller m.
        let c2 = C2lshConfig::builder().approximation_ratio(2).build();
        let c3 = C2lshConfig::builder().approximation_ratio(3).build();
        let m2 = FullParams::derive(100_000, &c2).m;
        let m3 = FullParams::derive(100_000, &c3).m;
        assert!(m3 < m2, "m(c=3) = {m3} should be below m(c=2) = {m2}");
    }

    #[test]
    fn overrides_are_respected() {
        let cfg = C2lshConfig::builder().m_override(64).l_override(40).build();
        let p = FullParams::derive(1_000, &cfg);
        assert_eq!(p.m, 64);
        assert_eq!(p.l, 40);
    }

    #[test]
    fn m_override_rescales_l() {
        let cfg = C2lshConfig::builder().m_override(64).build();
        let p = FullParams::derive(50_000, &cfg);
        assert_eq!(p.m, 64);
        assert!((p.alpha_effective() - p.derived.alpha).abs() < 0.03);
    }

    #[test]
    fn beta_fraction_resolves_to_count() {
        let cfg = C2lshConfig::builder().beta(Beta::Fraction(0.01)).build();
        let p = FullParams::derive(5_000, &cfg);
        assert_eq!(p.beta_n, 50);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_dataset() {
        FullParams::derive(0, &C2lshConfig::default());
    }

    #[test]
    fn base_radius_is_scale_invariant() {
        // Scaling (base_radius, w) together must leave every derived
        // parameter unchanged: p depends only on s/w.
        let unit = C2lshConfig::builder().bucket_width(2.184).build();
        let scaled = C2lshConfig::builder().base_radius(0.15).bucket_width(2.184 * 0.15).build();
        let a = FullParams::derive(50_000, &unit);
        let b = FullParams::derive(50_000, &scaled);
        assert_eq!(a.m, b.m);
        assert_eq!(a.l, b.l);
        assert!((a.derived.p1 - b.derived.p1).abs() < 1e-12);
        assert!((a.derived.p2 - b.derived.p2).abs() < 1e-12);
    }

    #[test]
    fn mismatched_base_radius_inflates_m() {
        // Keeping w at the unit-scale optimum while declaring a much
        // smaller base radius shrinks the p1/p2 gap and inflates m —
        // the failure mode base_radius exists to avoid.
        let good = C2lshConfig::builder().base_radius(0.15).bucket_width(0.15 * 2.184).build();
        let bad = C2lshConfig::builder().base_radius(0.15).bucket_width(2.184).build();
        let m_good = FullParams::derive(50_000, &good).m;
        let m_bad = FullParams::derive(50_000, &bad).m;
        assert!(m_bad > 2 * m_good, "m_bad = {m_bad}, m_good = {m_good}");
    }
}

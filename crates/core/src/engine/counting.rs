//! Epoch-stamped collision counters.
//!
//! The query phase maintains `#Col(o)` for every object that collides
//! with the query at the current radius. A `HashMap` would allocate per
//! query; instead we keep two flat arrays indexed by object id — a count
//! and an epoch stamp — and bump the epoch to "clear" in O(1) between
//! queries. A separate flag array (same trick) remembers which objects
//! were already verified, so an object is never verified twice even
//! though its count keeps growing past `l`.

/// Collision counter for up to `n` objects.
#[derive(Debug)]
pub struct CollisionCounter {
    counts: Vec<u32>,
    count_epoch: Vec<u32>,
    verified_epoch: Vec<u32>,
    epoch: u32,
}

impl CollisionCounter {
    /// Counter sized for object ids `0..n`.
    pub fn new(n: usize) -> Self {
        Self { counts: vec![0; n], count_epoch: vec![0; n], verified_epoch: vec![0; n], epoch: 0 }
    }

    /// Begin a new query: logically clears all counts and verified flags.
    pub fn begin_query(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped (after 2^32 queries): hard-reset the stamps so
            // stale entries from epoch 0 cannot alias.
            self.count_epoch.fill(0);
            self.verified_epoch.fill(0);
            self.epoch = 1;
        }
    }

    /// Increment the collision count of `oid`; returns the new count.
    #[inline]
    pub fn increment(&mut self, oid: u32) -> u32 {
        let i = oid as usize;
        if self.count_epoch[i] != self.epoch {
            self.count_epoch[i] = self.epoch;
            self.counts[i] = 1;
        } else {
            self.counts[i] += 1;
        }
        self.counts[i]
    }

    /// Current count of `oid` in this query (0 when untouched).
    pub fn count(&self, oid: u32) -> u32 {
        let i = oid as usize;
        if self.count_epoch[i] == self.epoch {
            self.counts[i]
        } else {
            0
        }
    }

    /// Mark `oid` verified; returns `false` when it already was.
    #[inline]
    pub fn mark_verified(&mut self, oid: u32) -> bool {
        let i = oid as usize;
        if self.verified_epoch[i] == self.epoch {
            false
        } else {
            self.verified_epoch[i] = self.epoch;
            true
        }
    }

    /// Whether `oid` was verified in this query.
    pub fn is_verified(&self, oid: u32) -> bool {
        self.verified_epoch[oid as usize] == self.epoch
    }

    /// Capacity (number of object ids representable).
    pub fn capacity(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut c = CollisionCounter::new(10);
        c.begin_query();
        assert_eq!(c.count(3), 0);
        assert_eq!(c.increment(3), 1);
        assert_eq!(c.increment(3), 2);
        assert_eq!(c.increment(5), 1);
        assert_eq!(c.count(3), 2);
        assert_eq!(c.count(5), 1);
        assert_eq!(c.count(0), 0);
    }

    #[test]
    fn begin_query_resets_logically() {
        let mut c = CollisionCounter::new(4);
        c.begin_query();
        c.increment(1);
        c.increment(1);
        c.mark_verified(1);
        c.begin_query();
        assert_eq!(c.count(1), 0);
        assert!(!c.is_verified(1));
        assert_eq!(c.increment(1), 1, "stale count must not leak across queries");
    }

    #[test]
    fn verification_happens_once() {
        let mut c = CollisionCounter::new(4);
        c.begin_query();
        assert!(c.mark_verified(2));
        assert!(!c.mark_verified(2));
        assert!(c.is_verified(2));
        assert!(!c.is_verified(3));
    }

    #[test]
    fn epoch_wrap_is_safe() {
        let mut c = CollisionCounter::new(2);
        c.begin_query();
        c.increment(0);
        c.mark_verified(0);
        // Force a wrap.
        c.epoch = u32::MAX;
        c.begin_query();
        assert_eq!(c.epoch, 1);
        assert_eq!(c.count(0), 0, "wrapped epoch must not alias old stamps");
        assert!(!c.is_verified(0));
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(CollisionCounter::new(7).capacity(), 7);
    }
}

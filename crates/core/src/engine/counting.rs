//! Epoch-stamped collision counters.
//!
//! The query phase maintains `#Col(o)` for every object that collides
//! with the query at the current radius. A `HashMap` would allocate per
//! query; instead we keep flat arrays indexed by object id and bump an
//! epoch to "clear" in O(1) between queries. The count and its epoch
//! stamp are packed into one `u64` word (`epoch << 32 | count`) so the
//! counting hot loop — the single most executed code in a query, one
//! increment per collision — touches exactly one cache line per object
//! instead of two parallel arrays. A separate flag array (same epoch
//! trick) remembers which objects were already verified, so an object
//! is never verified twice even though its count keeps growing past `l`.

/// Collision counter for up to `n` objects.
#[derive(Debug)]
pub struct CollisionCounter {
    /// Per-object `epoch << 32 | count` word.
    state: Vec<u64>,
    verified_epoch: Vec<u32>,
    epoch: u32,
}

impl CollisionCounter {
    /// Counter sized for object ids `0..n`.
    pub fn new(n: usize) -> Self {
        Self { state: vec![0; n], verified_epoch: vec![0; n], epoch: 0 }
    }

    /// Begin a new query: logically clears all counts and verified flags.
    pub fn begin_query(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped (after 2^32 queries): hard-reset the stamps so
            // stale entries from epoch 0 cannot alias.
            self.state.fill(0);
            self.verified_epoch.fill(0);
            self.epoch = 1;
        }
    }

    /// Increment the collision count of `oid`; returns the new count.
    ///
    /// Branchless on purpose: whether a touched object's stamp is
    /// current is data-dependent (≈ one stale touch then several fresh
    /// ones per object), so a branch here mispredicts constantly in the
    /// hottest loop of a query. `old_count * same_epoch + 1` compiles to
    /// a compare + masked multiply with no jump.
    #[inline]
    pub fn increment(&mut self, oid: u32) -> u32 {
        let i = oid as usize;
        let v = self.state[i];
        let same = u32::from((v >> 32) as u32 == self.epoch);
        let c = (v as u32) * same + 1;
        self.state[i] = (u64::from(self.epoch) << 32) | u64::from(c);
        c
    }

    /// Hint that `oid`'s counter word will be incremented shortly (see
    /// [`crate::kernels::prefetch_read_u64`]); out-of-range ids are
    /// ignored.
    #[inline]
    pub fn prefetch(&self, oid: u32) {
        crate::kernels::prefetch_read_u64(&self.state, oid as usize);
    }

    /// Current count of `oid` in this query (0 when untouched).
    pub fn count(&self, oid: u32) -> u32 {
        let v = self.state[oid as usize];
        if (v >> 32) as u32 == self.epoch {
            v as u32
        } else {
            0
        }
    }

    /// Mark `oid` verified; returns `false` when it already was.
    #[inline]
    pub fn mark_verified(&mut self, oid: u32) -> bool {
        let i = oid as usize;
        if self.verified_epoch[i] == self.epoch {
            false
        } else {
            self.verified_epoch[i] = self.epoch;
            true
        }
    }

    /// Whether `oid` was verified in this query.
    pub fn is_verified(&self, oid: u32) -> bool {
        self.verified_epoch[oid as usize] == self.epoch
    }

    /// Capacity (number of object ids representable).
    pub fn capacity(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut c = CollisionCounter::new(10);
        c.begin_query();
        assert_eq!(c.count(3), 0);
        assert_eq!(c.increment(3), 1);
        assert_eq!(c.increment(3), 2);
        assert_eq!(c.increment(5), 1);
        assert_eq!(c.count(3), 2);
        assert_eq!(c.count(5), 1);
        assert_eq!(c.count(0), 0);
    }

    #[test]
    fn begin_query_resets_logically() {
        let mut c = CollisionCounter::new(4);
        c.begin_query();
        c.increment(1);
        c.increment(1);
        c.mark_verified(1);
        c.begin_query();
        assert_eq!(c.count(1), 0);
        assert!(!c.is_verified(1));
        assert_eq!(c.increment(1), 1, "stale count must not leak across queries");
    }

    #[test]
    fn verification_happens_once() {
        let mut c = CollisionCounter::new(4);
        c.begin_query();
        assert!(c.mark_verified(2));
        assert!(!c.mark_verified(2));
        assert!(c.is_verified(2));
        assert!(!c.is_verified(3));
    }

    #[test]
    fn epoch_wrap_is_safe() {
        let mut c = CollisionCounter::new(2);
        c.begin_query();
        c.increment(0);
        c.mark_verified(0);
        // Force a wrap.
        c.epoch = u32::MAX;
        c.begin_query();
        assert_eq!(c.epoch, 1);
        assert_eq!(c.count(0), 0, "wrapped epoch must not alias old stamps");
        assert!(!c.is_verified(0));
    }

    #[test]
    fn counts_saturate_well_below_the_stamp_bits() {
        // Many increments never bleed into the epoch half of the word.
        let mut c = CollisionCounter::new(1);
        c.begin_query();
        for expect in 1..=1000u32 {
            assert_eq!(c.increment(0), expect);
        }
        assert_eq!(c.count(0), 1000);
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(CollisionCounter::new(7).capacity(), 7);
    }
}

//! The collision-counting search engine — the c-k-ANN loop of C2LSH.
//!
//! Exactly one implementation of the paper's query algorithm lives here
//! (virtual rehashing, dynamic collision counting, terminating
//! conditions T1/T2); every index backend drives it through the
//! [`TableStore`] trait:
//!
//! * [`crate::index::C2lshIndex`] — in-memory sorted runs,
//! * [`crate::disk::DiskIndex`] — 4 KiB-paged bucket files,
//! * [`crate::dynamic::DynamicIndex`] — updatable `BTreeMap` tables,
//! * `qalsh::Qalsh` (sibling crate) — query-aware B+-tree cursors.
//!
//! ## The algorithm (paper §4)
//!
//! ```text
//! R ← 1;  C ← ∅                         // verified candidates
//! loop:
//!   for each hash table i ∈ 1..m:
//!     grow table i's covered window to the level-R bucket of q
//!     for each newly covered object o:
//!       #Col(o) += 1
//!       if #Col(o) = l:                  // o became frequent
//!         verify o (compute true distance), C ← C ∪ {o}
//!         if |C| ≥ k + βn: STOP          // T2
//!   if |{o ∈ C : dist(o, q) ≤ c·R}| ≥ k: STOP   // T1
//!   if every window covers its whole table: STOP // exhausted
//!   R ← c·R
//! return the k nearest members of C
//! ```
//!
//! Because the per-level windows nest, each `(object, table)` pair is
//! visited at most once per query, so the cumulative count *is* the
//! collision count at the current radius. A store only has to answer
//! "which entries became newly covered when the radius grew to R" —
//! [`TableStore::expand`] — plus a handful of bookkeeping queries; the
//! engine owns counting, verification, termination, result ranking,
//! per-round observability ([`crate::stats::RoundStats`]) and the
//! parallel batch executor ([`run_query_batch`]).

pub mod counting;

use crate::kernels;
use crate::meta::{PointMeta, Predicate};
use crate::rehash::{radius_at, window, Window};
use crate::stats::{BatchStats, QueryStats, RoundStats, Termination};
use cc_vector::dataset::Dataset;
use cc_vector::gt::Neighbor;
use cc_vector::topk::TopK;
use counting::CollisionCounter;
use std::ops::Range;
use std::time::Instant;

/// Entries buffered per flush by the default [`TableStore::expand_slices`]
/// adapter (a stack buffer; 1 KiB).
pub const EXPAND_SLICE_BUF: usize = 256;

/// How many entries ahead the counting loop prefetches its counter
/// words (far enough to cover an L2 round-trip at ~1 entry/cycle-ish
/// consumption, near enough to stay inside typical slice lengths).
const COUNT_PREFETCH_AHEAD: usize = 16;

/// The parameters the search loop needs, independent of how they were
/// derived (C2LSH's Chernoff bounds and QALSH's Hoeffding bounds both
/// reduce to this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchParams {
    /// Integer approximation ratio `c ≥ 2` (radius grows by ×c per round).
    pub c: u32,
    /// Collision threshold `l`: an object is verified when its count
    /// reaches `l`.
    pub l: u32,
    /// False-positive budget `β·n`; T2 stops after `k + β·n`
    /// verifications.
    pub beta_n: usize,
    /// Data-units distance the theoretical radius `R = 1` maps to; T1
    /// compares true distances against `c·R·base_radius`.
    pub base_radius: f64,
}

/// Per-query knobs for the observability layer. All default to off /
/// cheapest; the flags only cost a branch when disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOptions {
    /// Record a [`RoundStats`] entry per virtual-rehashing round.
    pub per_round: bool,
    /// Measure wall-clock time (whole query, and per round when
    /// `per_round` is also set).
    pub timing: bool,
    /// Charge the store's table I/O delta to this query's stats.
    /// Disabled by the batch executor, where concurrent queries share
    /// the store's I/O counters and a per-query delta would be noise;
    /// the batch-level delta is reported in [`BatchStats::io`] instead.
    pub charge_table_io: bool,
    /// Early-abandon candidate verification against the running k-th
    /// best distance ([`cc_vector::dist::euclidean_sq_bounded`]). The
    /// returned neighbors, the per-round progress, and the terminating
    /// condition are bit-identical either way (pinned by proptest); only
    /// the verification cost and [`QueryStats::candidates_abandoned`]
    /// change. On by default; turn off to measure the plain kernel.
    pub early_abandon: bool,
    /// Attribute wall clock to pipeline stages
    /// ([`crate::stats::StageNanos`]: hash / count / verify / rank).
    /// Costs two clock reads per *verified* candidate plus two per
    /// round; off by default so the plain hot path pays one branch.
    pub stage_timing: bool,
    /// Capture a span tree ([`QueryStats::spans`]) for this query:
    /// one `hash` span, one `round` span per level (detail = radius),
    /// one `rank` span. Off by default (zero allocation).
    pub capture_spans: bool,
    /// In [`run_query_batch`]: additionally capture spans for every
    /// `trace_every`-th query of the batch (0 = only what
    /// `capture_spans` says). Lets a service trace a sample of live
    /// traffic without paying for every query.
    pub trace_every: u32,
    /// Per-query attribute filter, evaluated against
    /// [`TableStore::meta`] for every frequent object *before* its
    /// true distance is computed. Rejected objects count in
    /// [`QueryStats::candidates_filtered`] and never reach
    /// `euclidean_sq_bounded`. `None` (the default) skips the check
    /// entirely.
    pub filter: Option<Predicate>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            per_round: false,
            timing: false,
            charge_table_io: true,
            early_abandon: true,
            stage_timing: false,
            capture_spans: false,
            trace_every: 0,
            filter: None,
        }
    }
}

/// Storage abstraction over the `m` per-function hash tables.
///
/// Implementations answer range-expansion queries against whatever
/// physical layout they keep — positional windows over sorted runs
/// ([`BucketWindows`]), key windows over ordered maps ([`KeyWindows`]),
/// or cursor pairs over B+-trees — and resolve object ids to vectors.
pub trait TableStore {
    /// Per-query expansion state: the query's per-table hash position
    /// plus how far each table's window has grown.
    type Cursor;

    /// Dataset dimensionality.
    fn dim(&self) -> usize;

    /// Number of live (queryable) objects.
    fn len(&self) -> usize;

    /// `true` when the store holds no live objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exclusive upper bound on object ids (≥ [`TableStore::len`]; they
    /// differ for stores with tombstoned deletes). Sizes the collision
    /// counter.
    fn id_bound(&self) -> usize {
        self.len()
    }

    /// Number of hash tables `m`.
    fn num_tables(&self) -> usize;

    /// Start a query: hash `q` under every function and position the
    /// per-table windows (all empty).
    fn begin(&self, q: &[f32]) -> Self::Cursor;

    /// Start a whole coalesced query batch: one cursor per query, in
    /// query order, each identical to [`TableStore::begin`] on that
    /// query. The default maps `begin`; backends whose cursors are
    /// bucket ids override this with one blocked
    /// [`crate::hash::HashFamily::buckets_batch`] matrix product so the
    /// hash matrix streams through cache once per query block instead
    /// of once per query.
    fn begin_batch(&self, queries: &Dataset) -> Vec<Self::Cursor> {
        (0..queries.len()).map(|qi| self.begin(queries.get(qi))).collect()
    }

    /// Grow table `t`'s window to `radius` and call `visit` once per
    /// newly covered object id, in table order; stop early when `visit`
    /// returns `false`.
    fn expand(
        &self,
        cursor: &mut Self::Cursor,
        t: usize,
        radius: i64,
        visit: &mut dyn FnMut(u32) -> bool,
    );

    /// Slice-granular [`TableStore::expand`]: deliver the newly covered
    /// object ids as contiguous `&[u32]` slices (in table order,
    /// arbitrary slice boundaries) instead of one virtual call per id.
    /// The engine's counting loop runs inlined over each slice, so the
    /// per-collision cost drops from a `dyn FnMut` round-trip (~6 ns) to
    /// a couple of instructions — counting is ~90 % of query time, which
    /// makes this the load-bearing expansion path.
    ///
    /// Stopping is entry-precise either way: when `visit` returns
    /// `false` the expansion stops, and the engine stops *consuming* a
    /// slice at the exact entry that hit the budget, so semantics
    /// (collision counts, verification order, T2 cut-off) are identical
    /// to the per-id path regardless of slice boundaries.
    ///
    /// The default adapts [`TableStore::expand`] through a
    /// [`EXPAND_SLICE_BUF`]-entry stack buffer; backends whose tables
    /// are already contiguous id runs override it to hand out their
    /// runs directly (zero copies).
    fn expand_slices(
        &self,
        cursor: &mut Self::Cursor,
        t: usize,
        radius: i64,
        visit: &mut dyn FnMut(&[u32]) -> bool,
    ) {
        let mut buf = [0u32; EXPAND_SLICE_BUF];
        let mut len = 0usize;
        let mut stopped = false;
        self.expand(cursor, t, radius, &mut |oid| {
            buf[len] = oid;
            len += 1;
            if len == EXPAND_SLICE_BUF {
                len = 0;
                if !visit(&buf) {
                    stopped = true;
                    return false;
                }
            }
            true
        });
        if !stopped && len > 0 {
            visit(&buf[..len]);
        }
    }

    /// `true` once every table's window covers its entire table (no
    /// further expansion can reach new entries).
    fn exhausted(&self, cursor: &Self::Cursor) -> bool;

    /// Resolve an object id to its vector; `None` for tombstoned ids
    /// (such objects are skipped, not verified).
    fn vector(&self, oid: u32) -> Option<&[f32]>;

    /// `true` when vectors live in addressable memory and
    /// [`TableStore::vector`] is the cheap path (the default). Paged
    /// stores return `false` and serve verification reads through
    /// [`TableStore::vector_into`] instead; [`TableStore::vector`] may
    /// then always return `None`.
    fn vectors_resident(&self) -> bool {
        true
    }

    /// Copy object `oid`'s vector into `out` (cleared first), returning
    /// `false` for tombstoned/unknown ids. The default delegates to
    /// [`TableStore::vector`]; paged stores override this to read through
    /// their buffer pool without holding borrows across the engine loop.
    fn vector_into(&self, oid: u32, out: &mut Vec<f32>) -> bool {
        match self.vector(oid) {
            Some(v) => {
                out.clear();
                out.extend_from_slice(v);
                true
            }
            None => false,
        }
    }

    /// Resolve an object id to its attribute payload. Stores without
    /// metadata (or ids out of range) report the default payload,
    /// which trivial predicates accept — so unfiltered behaviour is
    /// unchanged and filters degrade predictably on metadata-free
    /// corpora.
    fn meta(&self, _oid: u32) -> PointMeta {
        PointMeta::default()
    }

    /// Pages charged per verified candidate (reading the vector under
    /// the paper's disk cost model; 0 for in-memory stores).
    fn verify_pages(&self) -> u64 {
        0
    }

    /// Monotone table-read counter (pages / nodes), used to attribute
    /// I/O deltas; 0 forever for stores that don't model I/O.
    fn io_reads(&self) -> u64 {
        0
    }

    /// `true` when this store supports online [`TableStore::insert`] /
    /// [`TableStore::delete`]. The static backends (sorted runs, paged
    /// files, B+-trees frozen at build time) say `false`; only the
    /// dynamic backend — the paper's update story — says `true`.
    fn supports_mutations(&self) -> bool {
        false
    }

    /// Insert a vector, returning its assigned object id, or `None`
    /// when the store is immutable (the default). Mutable stores must
    /// assign ids deterministically from their current state so WAL
    /// replay reproduces the same ids.
    fn insert(&mut self, _vector: Vec<f32>) -> Option<u32> {
        None
    }

    /// Delete an object by id; `true` when it existed and was removed,
    /// `false` for unknown/tombstoned ids or immutable stores (the
    /// default).
    fn delete(&mut self, _oid: u32) -> bool {
        false
    }
}

/// Positional window state for stores whose tables are runs of
/// `(bucket id, oid)` entries sorted by bucket id ([`crate::index`],
/// [`crate::disk`]): maps bucket intervals to entry-index intervals and
/// yields only the newly covered delta ranges as the radius grows.
#[derive(Debug, Clone)]
pub struct BucketWindows {
    q_buckets: Vec<i64>,
    windows: Vec<Window>,
}

impl BucketWindows {
    /// State for a query hashing to `q_buckets` (one level-1 bucket per
    /// table).
    pub fn new(q_buckets: Vec<i64>) -> Self {
        let m = q_buckets.len();
        Self { q_buckets, windows: vec![Window::empty(); m] }
    }

    /// Grow table `t`'s window to `radius`; returns the two delta entry
    /// ranges (left of and right of the previously covered range).
    /// `lower_bound(b, lo, hi)` must return the index of the first entry
    /// of table `t` with bucket id ≥ `b`, which is guaranteed to lie in
    /// `[lo, hi]` — window nesting means the new lower boundary can only
    /// move left of the previous window and the new upper boundary only
    /// right of it, so each round's searches run over the (much
    /// smaller, recently touched) complement of the already-covered
    /// range instead of the whole table. Implementations may ignore the
    /// hint (a full-table search returns the same index); `n` is the
    /// table length.
    pub fn grow(
        &mut self,
        t: usize,
        radius: i64,
        n: usize,
        mut lower_bound: impl FnMut(i64, usize, usize) -> usize,
    ) -> (Range<usize>, Range<usize>) {
        let (blo, bhi) = window(self.q_buckets[t], radius);
        let w = &self.windows[t];
        let first_grow = w.lo == w.hi;
        let lo_domain_end = if first_grow { n } else { w.lo };
        let hi_domain_start = if first_grow { 0 } else { w.hi };
        let elo = lower_bound(blo, 0, lo_domain_end);
        // `bhi` saturates/wraps past the key space at extreme radii;
        // treat it as "end of table".
        let ehi = if bhi == i64::MIN { n } else { lower_bound(bhi, hi_domain_start.max(elo), n) };
        self.windows[t].grow(elo, ehi)
    }

    /// `true` once every window covers its full table of `n` entries.
    pub fn exhausted(&self, n: usize) -> bool {
        self.windows.iter().all(|w| w.is_full(n))
    }
}

/// Key-range window state for stores whose tables are ordered maps
/// keyed by bucket id ([`crate::dynamic`]): tracks the covered bucket
/// interval per table and yields the delta key ranges as the radius
/// grows.
#[derive(Debug, Clone)]
pub struct KeyWindows {
    q_buckets: Vec<i64>,
    covered: Vec<Option<(i64, i64)>>,
}

impl KeyWindows {
    /// State for a query hashing to `q_buckets`.
    pub fn new(q_buckets: Vec<i64>) -> Self {
        let m = q_buckets.len();
        Self { q_buckets, covered: vec![None; m] }
    }

    /// Grow table `t`'s covered interval to `radius`; returns up to two
    /// half-open delta key ranges (empty ranges where nothing grew).
    pub fn grow(&mut self, t: usize, radius: i64) -> [(i64, i64); 2] {
        let (blo, bhi) = window(self.q_buckets[t], radius);
        let deltas = match self.covered[t] {
            None => [(blo, bhi), (0, 0)],
            Some((plo, phi)) => [(blo, plo), (phi, bhi)],
        };
        self.covered[t] = Some((blo, bhi));
        deltas
    }

    /// `true` when table `t`'s covered interval contains the key range
    /// `[min, max]` reported by the store (`None` for an empty table).
    pub fn covers(&self, t: usize, key_range: Option<(i64, i64)>) -> bool {
        let Some((lo, hi)) = self.covered[t] else { return false };
        match key_range {
            Some((min, max)) => lo <= min && hi > max,
            None => true,
        }
    }
}

/// Caller-owned per-query scratch: the collision counter's O(n) arrays,
/// the retained-candidate buffer, and the top-k accumulator that feeds
/// the early-abandon bound. One `QueryScratch` per concurrent query
/// stream (the backends keep one behind a `Mutex`; the batch executor
/// gives each worker its own) kills all per-candidate and most per-query
/// allocation — only the k-sized result vector is allocated per query.
#[derive(Debug)]
pub struct QueryScratch {
    counter: CollisionCounter,
    /// Every verified (non-abandoned) candidate, in verification order.
    candidates: Vec<Neighbor>,
    /// Running k nearest by squared distance; its root bounds the
    /// early-abandon kernel.
    topk: TopK,
    /// Vector staging buffer for stores whose vectors are not memory
    /// resident ([`TableStore::vector_into`]).
    vec_buf: Vec<f32>,
}

impl QueryScratch {
    /// Scratch sized for object ids below `id_bound`. The counter grows
    /// on demand if the store outgrows it ([`run_query`] resizes).
    pub fn new(id_bound: usize) -> Self {
        QueryScratch {
            counter: CollisionCounter::new(id_bound),
            candidates: Vec::new(),
            topk: TopK::new(1),
            vec_buf: Vec::new(),
        }
    }

    /// Capacity of the underlying collision counter.
    pub fn capacity(&self) -> usize {
        self.counter.capacity()
    }
}

/// Run one c-k-ANN query against `store`. Returns the k nearest
/// verified candidates (ascending distance, ties by id) plus cost
/// counters.
///
/// `scratch` is caller-owned so batches and repeated queries reuse its
/// O(n) counter arrays and candidate buffers; it is (re)sized and
/// epoch-cleared here.
pub fn run_query<S: TableStore>(
    store: &S,
    params: &SearchParams,
    scratch: &mut QueryScratch,
    q: &[f32],
    k: usize,
    opts: &SearchOptions,
) -> (Vec<Neighbor>, QueryStats) {
    let query_start = opts.timing.then(Instant::now);
    let trace = opts.capture_spans.then(cc_obs::Trace::new);
    let hash_start = opts.stage_timing.then(Instant::now);
    let cursor = {
        let _span = trace.as_ref().map(|tr| tr.span("hash"));
        store.begin(q)
    };
    let hash_ns = hash_start.map_or(0, |s| s.elapsed().as_nanos() as u64);
    run_query_with(store, params, scratch, q, k, opts, cursor, hash_ns, trace, query_start)
}

/// [`run_query`] with hashing already done: `cursor` came from
/// [`TableStore::begin`] or one slot of [`TableStore::begin_batch`], and
/// `hash_ns` is the hashing time to attribute to this query's
/// [`crate::stats::StageNanos::hash`] (a batch passes its per-query
/// share). The batch executor uses this to hash a whole batch as one
/// blocked matrix product before fanning queries out to workers.
/// Results are identical to [`run_query`]; the only observable
/// differences are that [`QueryStats::elapsed_nanos`] excludes hashing
/// and a captured span tree has no `hash` span.
#[allow(clippy::too_many_arguments)] // mirrors run_query plus the batch cursor/hash share
pub fn run_query_prepared<S: TableStore>(
    store: &S,
    params: &SearchParams,
    scratch: &mut QueryScratch,
    q: &[f32],
    k: usize,
    opts: &SearchOptions,
    cursor: S::Cursor,
    hash_ns: u64,
) -> (Vec<Neighbor>, QueryStats) {
    let query_start = opts.timing.then(Instant::now);
    let trace = opts.capture_spans.then(cc_obs::Trace::new);
    run_query_with(store, params, scratch, q, k, opts, cursor, hash_ns, trace, query_start)
}

#[allow(clippy::too_many_arguments)] // internal seam between the two entry points above
fn run_query_with<S: TableStore>(
    store: &S,
    params: &SearchParams,
    scratch: &mut QueryScratch,
    q: &[f32],
    k: usize,
    opts: &SearchOptions,
    mut cursor: S::Cursor,
    hash_ns: u64,
    trace: Option<cc_obs::Trace>,
    query_start: Option<Instant>,
) -> (Vec<Neighbor>, QueryStats) {
    assert!(k > 0, "k must be positive");
    assert_eq!(q.len(), store.dim(), "query dimensionality mismatch");
    assert!(q.iter().all(|x| x.is_finite()), "query contains non-finite coordinates");

    let m = store.num_tables();
    let n = store.len();
    let l = params.l;
    let cap = k + params.beta_n; // T2 budget
                                 // Normalize the filter once: a trivial predicate (no clauses)
                                 // matches everything, so the hot loop skips the check entirely.
    let filter = opts.filter.filter(|p| !p.is_trivial());
    if scratch.counter.capacity() < store.id_bound() {
        scratch.counter = CollisionCounter::new(store.id_bound());
    }
    scratch.counter.begin_query();
    let counter = &mut scratch.counter;
    let candidates = &mut scratch.candidates;
    candidates.clear();
    // The budget threshold stays `k + β·n`, but no query can verify more
    // than the live objects — clamp the allocation, not the condition.
    candidates.reserve(cap.min(n));
    let topk = &mut scratch.topk;
    topk.reset(k);
    let vec_buf = &mut scratch.vec_buf;
    // Hoisted: resident stores keep the zero-copy `vector()` path; paged
    // stores stage reads through `vec_buf` via `vector_into`.
    let resident = store.vectors_resident();
    // Hoisted kernel dispatch: one global load per query, not per
    // candidate.
    let kd = kernels::dispatch();

    let mut stats = QueryStats::new();
    let io_before = opts.charge_table_io.then(|| store.io_reads());
    // Stage accounting (hash / count / verify / rank) and span capture
    // are both opt-in; when off, the hot loop pays one branch per
    // verified candidate and nothing per collision increment.
    let stage_on = opts.stage_timing;
    let mut verify_ns: u64 = 0;
    let mut count_ns: u64 = 0;

    let mut level: u32 = 0;
    loop {
        let radius = radius_at(params.c, level);
        stats.rounds += 1;
        stats.final_radius = radius;
        let round_start = (opts.timing && opts.per_round).then(Instant::now);
        let round_collisions = stats.collisions_counted;
        let round_verified = stats.candidates_verified;
        let verify_ns_before = verify_ns;
        let expand_start = stage_on.then(Instant::now);
        let round_span = trace.as_ref().map(|tr| {
            let mut s = tr.span("round");
            s.detail(radius as u64);
            s
        });

        let mut budget_hit = false;
        for t in 0..m {
            // Slice-granular expansion: the per-collision work below is
            // inlined straight-line code, paying one virtual call per
            // *slice* instead of one per id.
            store.expand_slices(&mut cursor, t, radius, &mut |oids| {
                // Collision accounting is per *slice*: one add for the
                // whole slice on the fall-through path, `idx + 1` on the
                // early-stop path — never a per-entry counter RMW.
                for (idx, &oid) in oids.iter().enumerate() {
                    // Counter updates are random-access over the state
                    // array while the oid slices stream it out of L1;
                    // pull the line a few entries ahead so the
                    // increment doesn't stall on it.
                    if let Some(&ahead) = oids.get(idx + COUNT_PREFETCH_AHEAD) {
                        counter.prefetch(ahead);
                    }
                    if counter.increment(oid) == l && counter.mark_verified(oid) {
                        // Frequent: the query's predicate prunes before
                        // the distance kernel — rejected objects are
                        // counted separately and never charge the T2
                        // budget.
                        if let Some(pred) = &filter {
                            if !pred.matches(store.meta(oid)) {
                                stats.candidates_filtered += 1;
                                continue;
                            }
                        }
                        // Verify unless tombstoned.
                        let v: Option<&[f32]> = if resident {
                            store.vector(oid)
                        } else if store.vector_into(oid, vec_buf) {
                            Some(vec_buf.as_slice())
                        } else {
                            None
                        };
                        if let Some(v) = v {
                            // The budget counts *verifications* (distance
                            // computations paid for), abandoned or not —
                            // identical to the pre-abandon candidate
                            // count.
                            stats.candidates_verified += 1;
                            let verify_start = stage_on.then(Instant::now);
                            let bound =
                                if opts.early_abandon { topk.bound_sq() } else { f64::INFINITY };
                            match kd.euclidean_sq_bounded(v, q, bound) {
                                Some(d_sq) => {
                                    topk.insert(d_sq, oid);
                                    candidates.push(Neighbor::new(oid, d_sq.sqrt()));
                                }
                                // Abandoned: provably farther than the
                                // final k-th best (the bound carries
                                // slack for the sqrt rounding used in
                                // ranking), so it can affect neither the
                                // result nor T1.
                                None => stats.candidates_abandoned += 1,
                            }
                            if let Some(s) = verify_start {
                                verify_ns += s.elapsed().as_nanos() as u64;
                            }
                            if stats.candidates_verified >= cap {
                                stats.collisions_counted += (idx + 1) as u64;
                                budget_hit = true;
                                return false; // T2: stop scanning
                            }
                        }
                    }
                }
                stats.collisions_counted += oids.len() as u64;
                true
            });
            if budget_hit {
                break;
            }
        }

        if let Some(s) = expand_start {
            // Counting time is the expansion total minus the verify
            // work interleaved inside it.
            let round_total = s.elapsed().as_nanos() as u64;
            count_ns += round_total.saturating_sub(verify_ns - verify_ns_before);
        }
        drop(round_span);

        // T1 progress: verified candidates within the geometric radius
        // c·R·base_radius. Abandoned candidates are not counted, which
        // cannot change the `≥ k` decision: the k nearest candidates are
        // never abandoned, so whenever the full count would reach k the
        // retained count does too.
        let c_r = params.c as f64 * radius as f64 * params.base_radius;
        let within_c_r = candidates.iter().filter(|cand| cand.dist <= c_r).count();

        if opts.per_round {
            stats.per_round.push(RoundStats {
                level,
                radius,
                collisions: stats.collisions_counted - round_collisions,
                verified: stats.candidates_verified - round_verified,
                within_c_r,
                elapsed_nanos: round_start.map_or(0, |s| s.elapsed().as_nanos() as u64),
            });
        }

        if budget_hit {
            stats.terminated_by = Termination::T2CandidateBudget;
            break;
        }
        if within_c_r >= k {
            stats.terminated_by = Termination::T1AtRadius;
            break;
        }
        if store.exhausted(&cursor) {
            stats.terminated_by = Termination::Exhausted;
            break;
        }
        level += 1;
    }

    stats.io.reads = stats.candidates_verified as u64 * store.verify_pages();
    if let Some(before) = io_before {
        stats.io.reads += store.io_reads() - before;
    }
    // Rank exactly as before the early-abandon change: sort *all*
    // retained candidates by (dist, id) and take k. (The top-k heap
    // selects by squared distance, whose ties can differ from post-sqrt
    // ties at the boundary, so it serves only as the abandon bound.)
    let rank_start = stage_on.then(Instant::now);
    let result = {
        let mut _span = trace.as_ref().map(|tr| tr.span("rank"));
        if let Some(s) = _span.as_mut() {
            s.detail(candidates.len() as u64);
        }
        candidates.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        candidates.truncate(k);
        candidates.clone()
    };
    if stage_on {
        stats.stage = crate::stats::StageNanos {
            hash: hash_ns,
            count: count_ns,
            verify: verify_ns,
            rank: rank_start.map_or(0, |s| s.elapsed().as_nanos() as u64),
        };
    }
    if let Some(tr) = trace {
        stats.spans = tr.finish();
    }
    if let Some(start) = query_start {
        stats.elapsed_nanos = start.elapsed().as_nanos() as u64;
    }
    (result, stats)
}

/// Answer a whole query set in parallel across scoped threads.
///
/// The batch is hashed up front as one blocked matrix product
/// ([`TableStore::begin_batch`]) — each hash-matrix row streams through
/// cache once per query block instead of once per query — then queries
/// fan out to workers via [`run_query_prepared`] (hence the
/// `S::Cursor: Send` bound). Results are in query order and identical
/// to sequential [`run_query`] calls — each worker owns its own
/// [`QueryScratch`]. Thread count defaults to the machine's
/// parallelism. Per-query [`QueryStats::io`] carries only the
/// deterministic verification charge; the store's table I/O over the
/// whole batch is reported once in [`BatchStats::io`] (concurrent
/// workers share the store's I/O counters, so a per-query table delta
/// would be attribution noise). With stage timing on, each query's
/// `hash` stage carries its 1/nq share of the batched hashing time.
pub fn run_query_batch<S: TableStore + Sync>(
    store: &S,
    params: &SearchParams,
    queries: &Dataset,
    k: usize,
    opts: &SearchOptions,
) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats)
where
    S::Cursor: Send,
{
    assert_eq!(queries.dim(), store.dim(), "query dimensionality mismatch");
    let nq = queries.len();
    let mut batch = BatchStats::default();
    if nq == 0 {
        return (Vec::new(), batch);
    }
    let batch_start = opts.timing.then(Instant::now);
    let io_before = store.io_reads();
    let worker_opts = SearchOptions { charge_table_io: false, ..*opts };

    // Hash the whole batch in one pass; workers consume their cursors.
    let hash_start = opts.stage_timing.then(Instant::now);
    let cursors: Vec<Option<S::Cursor>> =
        store.begin_batch(queries).into_iter().map(Some).collect();
    assert_eq!(cursors.len(), nq, "begin_batch must return one cursor per query");
    let hash_ns_each = hash_start.map_or(0, |s| s.elapsed().as_nanos() as u64 / nq as u64);
    let mut cursors = cursors;

    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(nq);
    let mut out: Vec<(Vec<Neighbor>, QueryStats)> = vec![(Vec::new(), QueryStats::new()); nq];
    crossbeam::scope(|scope| {
        let chunk = nq.div_ceil(threads);
        for (t, (out_chunk, cur_chunk)) in
            out.chunks_mut(chunk).zip(cursors.chunks_mut(chunk)).enumerate()
        {
            let lo = t * chunk;
            scope.spawn(move |_| {
                let mut scratch = QueryScratch::new(store.id_bound());
                for (off, (slot, cur)) in out_chunk.iter_mut().zip(cur_chunk.iter_mut()).enumerate()
                {
                    let qi = lo + off;
                    let mut per_query = worker_opts;
                    // Sampled tracing: every trace_every-th query of the
                    // batch (by position) captures its span tree.
                    if opts.trace_every > 0 && (qi as u64).is_multiple_of(opts.trace_every as u64) {
                        per_query.capture_spans = true;
                    }
                    let cursor = cur.take().expect("each batch cursor is consumed once");
                    *slot = run_query_prepared(
                        store,
                        params,
                        &mut scratch,
                        queries.get(qi),
                        k,
                        &per_query,
                        cursor,
                        hash_ns_each,
                    );
                }
            });
        }
    })
    .expect("batch-query worker panicked");

    for (_, s) in &out {
        batch.absorb(s);
    }
    batch.io.reads += store.io_reads() - io_before;
    if let Some(start) = batch_start {
        batch.elapsed_nanos = start.elapsed().as_nanos() as u64;
    }
    (out, batch)
}

#[cfg(test)]
mod tests {
    //! The engine is exercised end-to-end through the four backends in
    //! their own modules and in `tests/`; here we pin the store-level
    //! contract with a hand-rolled mock.

    use super::*;
    use crate::config::C2lshConfig;
    use crate::hash::HashFamily;
    use crate::params::FullParams;

    /// A store over explicit `(bucket, oid)` tables.
    struct MockStore {
        data: Dataset,
        family: HashFamily,
        tables: Vec<Vec<(i64, u32)>>,
        metas: Vec<PointMeta>,
    }

    impl TableStore for MockStore {
        type Cursor = BucketWindows;

        fn dim(&self) -> usize {
            self.data.dim()
        }
        fn len(&self) -> usize {
            self.data.len()
        }
        fn num_tables(&self) -> usize {
            self.tables.len()
        }
        fn begin(&self, q: &[f32]) -> BucketWindows {
            BucketWindows::new(self.family.buckets(q))
        }
        fn expand(
            &self,
            cursor: &mut BucketWindows,
            t: usize,
            radius: i64,
            visit: &mut dyn FnMut(u32) -> bool,
        ) {
            let n = self.tables[t].len();
            let (left, right) = cursor.grow(t, radius, n, |b, lo, hi| {
                lo + self.tables[t][lo..hi].partition_point(|e| e.0 < b)
            });
            for range in [left, right] {
                for e in &self.tables[t][range] {
                    if !visit(e.1) {
                        return;
                    }
                }
            }
        }
        fn exhausted(&self, cursor: &BucketWindows) -> bool {
            cursor.exhausted(self.data.len())
        }
        fn vector(&self, oid: u32) -> Option<&[f32]> {
            Some(self.data.get(oid as usize))
        }
        fn meta(&self, oid: u32) -> PointMeta {
            self.metas.get(oid as usize).copied().unwrap_or_default()
        }
    }

    fn mock_store(n: usize, seed: u64) -> (MockStore, SearchParams) {
        use cc_vector::gen::{generate, Distribution};
        let data = generate(
            Distribution::GaussianMixture { clusters: 4, spread: 0.02, scale: 10.0 },
            n,
            8,
            seed,
        );
        let cfg = C2lshConfig::builder().bucket_width(1.0).seed(1).build();
        let params = FullParams::derive(data.len(), &cfg);
        let family = HashFamily::generate(params.m, data.dim(), &cfg);
        let mut tables = Vec::with_capacity(params.m);
        for t in 0..params.m {
            let h = family.get(t);
            let mut entries: Vec<(i64, u32)> =
                data.iter().enumerate().map(|(i, v)| (h.bucket(v), i as u32)).collect();
            entries.sort_unstable();
            tables.push(entries);
        }
        let search = SearchParams {
            c: cfg.c,
            l: params.l as u32,
            beta_n: params.beta_n,
            base_radius: cfg.base_radius,
        };
        (MockStore { data, family, tables, metas: Vec::new() }, search)
    }

    /// Build a coherent store for a tiny dataset via the real hashing
    /// path, then check the loop's bookkeeping.
    #[test]
    fn mock_store_agrees_with_real_index() {
        let (store, params) = mock_store(200, 3);
        let mut scratch = QueryScratch::new(store.len());
        let q = store.data.get(17).to_vec();
        let (nn, stats) =
            run_query(&store, &params, &mut scratch, &q, 3, &SearchOptions::default());
        assert_eq!(nn.len(), 3);
        assert_eq!(nn[0].id, 17, "query point itself must be the 1-NN");
        assert_eq!(nn[0].dist, 0.0);
        assert!(stats.candidates_verified >= 3);
        assert!(stats.rounds >= 1);
        // Collision increments can't exceed m·n.
        assert!(stats.collisions_counted <= (store.num_tables() * store.len()) as u64);
        // Observability off by default.
        assert!(stats.per_round.is_empty());
        assert_eq!(stats.elapsed_nanos, 0);
    }

    #[test]
    fn per_round_breakdown_sums_to_totals() {
        let (store, params) = mock_store(300, 4);
        let mut scratch = QueryScratch::new(store.len());
        let q = store.data.get(5).to_vec();
        let opts = SearchOptions { per_round: true, timing: true, ..Default::default() };
        let (_, stats) = run_query(&store, &params, &mut scratch, &q, 5, &opts);
        assert_eq!(stats.per_round.len(), stats.rounds as usize);
        let col: u64 = stats.per_round.iter().map(|r| r.collisions).sum();
        let ver: usize = stats.per_round.iter().map(|r| r.verified).sum();
        assert_eq!(col, stats.collisions_counted);
        assert_eq!(ver, stats.candidates_verified);
        assert_eq!(stats.per_round.last().unwrap().radius, stats.final_radius);
        // Levels are consecutive from 0.
        for (i, r) in stats.per_round.iter().enumerate() {
            assert_eq!(r.level, i as u32);
        }
        assert!(stats.elapsed_nanos > 0, "timing was requested");
    }

    #[test]
    fn undersized_counter_is_resized() {
        let (store, params) = mock_store(120, 5);
        let mut scratch = QueryScratch::new(1);
        let q = store.data.get(0).to_vec();
        let (nn, _) = run_query(&store, &params, &mut scratch, &q, 2, &SearchOptions::default());
        assert_eq!(nn.len(), 2);
        assert!(scratch.capacity() >= store.len());
    }

    #[test]
    fn batch_matches_sequential_and_aggregates() {
        let (store, params) = mock_store(400, 6);
        let queries = store.data.slice_rows(0, 23);
        let opts = SearchOptions { timing: true, ..Default::default() };
        let (batch, agg) = run_query_batch(&store, &params, &queries, 4, &opts);
        assert_eq!(batch.len(), 23);
        assert_eq!(agg.queries, 23);
        let mut scratch = QueryScratch::new(store.len());
        let mut verified_total = 0u64;
        for (qi, (nn, stats)) in batch.iter().enumerate() {
            let (seq_nn, seq_stats) = run_query(
                &store,
                &params,
                &mut scratch,
                queries.get(qi),
                4,
                &SearchOptions::default(),
            );
            assert_eq!(nn, &seq_nn, "query {qi}");
            assert_eq!(stats.candidates_verified, seq_stats.candidates_verified);
            verified_total += stats.candidates_verified as u64;
        }
        assert_eq!(agg.verified, verified_total);
        assert_eq!(agg.t1 + agg.t2 + agg.exhausted, 23, "every query's termination is tallied");
        assert!(agg.elapsed_nanos > 0);
    }

    #[test]
    fn stage_timing_and_spans_account_for_the_query() {
        let (store, params) = mock_store(300, 8);
        let mut scratch = QueryScratch::new(store.len());
        let q = store.data.get(9).to_vec();
        let opts = SearchOptions {
            timing: true,
            stage_timing: true,
            capture_spans: true,
            ..Default::default()
        };
        let (plain_nn, plain) =
            run_query(&store, &params, &mut scratch, &q, 5, &SearchOptions::default());
        let (nn, stats) = run_query(&store, &params, &mut scratch, &q, 5, &opts);
        // Instrumentation must not change the answer or the work done.
        assert_eq!(nn, plain_nn);
        assert_eq!(stats.candidates_verified, plain.candidates_verified);
        assert_eq!(stats.terminated_by, plain.terminated_by);
        // Stage totals are positive and bounded by the wall clock of
        // the whole query (they partition the inner work).
        assert!(stats.stage.count > 0, "counting time must be attributed");
        assert!(stats.stage.verify > 0, "verification time must be attributed");
        assert!(stats.stage.total() <= stats.elapsed_nanos * 2, "{:?}", stats.stage);
        // Span tree: one hash, one round per level, one rank, with the
        // round details carrying the radius schedule.
        let rounds: Vec<&cc_obs::SpanRecord> =
            stats.spans.iter().filter(|s| s.name == "round").collect();
        assert_eq!(rounds.len(), stats.rounds as usize);
        assert_eq!(rounds.last().unwrap().detail, stats.final_radius as u64);
        assert_eq!(stats.spans.iter().filter(|s| s.name == "hash").count(), 1);
        assert_eq!(stats.spans.iter().filter(|s| s.name == "rank").count(), 1);
        // Disabled observability stays disabled.
        assert_eq!(plain.stage, crate::stats::StageNanos::default());
        assert!(plain.spans.is_empty());
    }

    #[test]
    fn batch_trace_sampling_captures_every_nth_query() {
        let (store, params) = mock_store(250, 9);
        let queries = store.data.slice_rows(0, 10);
        let opts = SearchOptions { trace_every: 4, ..Default::default() };
        let (batch, _) = run_query_batch(&store, &params, &queries, 3, &opts);
        for (qi, (_, stats)) in batch.iter().enumerate() {
            if qi % 4 == 0 {
                assert!(!stats.spans.is_empty(), "query {qi} should be traced");
            } else {
                assert!(stats.spans.is_empty(), "query {qi} should not be traced");
            }
        }
    }

    #[test]
    fn filter_prunes_before_verification() {
        let (mut store, params) = mock_store(300, 10);
        // Label points round-robin over 3 classes.
        store.metas = (0..store.len()).map(|i| PointMeta::labeled((i % 3) as u32)).collect();
        let mut scratch = QueryScratch::new(store.len());
        let q = store.data.get(12).to_vec();

        let (plain_nn, plain) =
            run_query(&store, &params, &mut scratch, &q, 5, &SearchOptions::default());
        assert_eq!(plain.candidates_filtered, 0, "unfiltered queries never filter");

        let opts = SearchOptions { filter: Some(Predicate::label(0)), ..Default::default() };
        let (nn, stats) = run_query(&store, &params, &mut scratch, &q, 5, &opts);
        assert_eq!(nn[0].id, 12, "query point (label 0) survives its own filter");
        for n in &nn {
            assert_eq!(n.id % 3, 0, "result {n:?} violates the predicate");
        }
        assert!(stats.candidates_filtered > 0, "2/3 of frequent objects must be rejected");
        // Rejected objects charge neither verification counter.
        assert!(stats.candidates_verified + stats.candidates_filtered >= plain.candidates_verified);

        // A trivial predicate behaves exactly like no predicate.
        let trivial = SearchOptions { filter: Some(Predicate::any()), ..Default::default() };
        let (triv_nn, triv) = run_query(&store, &params, &mut scratch, &q, 5, &trivial);
        assert_eq!(triv_nn, plain_nn);
        assert_eq!(triv.candidates_filtered, 0);
        assert_eq!(triv.candidates_verified, plain.candidates_verified);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let (store, params) = mock_store(50, 7);
        let mut scratch = QueryScratch::new(store.len());
        let q = store.data.get(0).to_vec();
        let _ = run_query(&store, &params, &mut scratch, &q, 0, &SearchOptions::default());
    }
}

//! The paged (out-of-core) C2LSH index over the real disk tier.
//!
//! Where [`crate::disk::DiskIndex`] borrows an in-RAM [`Dataset`] and
//! *simulates* page I/O, `PagedStore` owns nothing but page numbers: both
//! the data vectors and the compressed hash-table posting runs live in an
//! on-disk [`DiskPageFile`] (checksummed 4 KiB pages) and every read goes
//! through a [`PinnedPool`] buffer pool. Peak memory is the pool size
//! plus per-table page directories — independent of dataset size — which
//! is what lets `bench run --profile large` ingest millions of points.
//!
//! Construction streams: [`PagedBuilder`] accepts rows one at a time,
//! writes vector bytes straight into pages, and spills per-table
//! `(bucket, oid)` entries to sorted temp-file segments; `finish` k-way
//! merges each table's segments into delta-compressed posting runs
//! ([`cc_storage::paged_bucket`]) and returns the queryable store. No
//! step ever materializes the dataset or a full table in RAM.
//!
//! File layout: vector pages first (`d·4` bytes per point, packed
//! back-to-back across page payloads — `PAYLOAD_BYTES` is a multiple of
//! 4, so floats never straddle pages), then each table's posting pages.

use std::fs::File;
use std::io::{self, Write};
#[cfg(not(unix))]
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use crate::config::C2lshConfig;
use crate::engine::{self, BucketWindows, QueryScratch, SearchOptions, SearchParams, TableStore};
use crate::hash::HashFamily;
use crate::params::FullParams;
use crate::stats::{BatchStats, QueryStats};
use cc_storage::bucket_file::ENTRIES_PER_PAGE;
use cc_storage::diskfile::{DiskPageFile, DiskPageFileWriter, PAYLOAD_BYTES};
use cc_storage::paged_bucket::{PostingRun, PostingRunBuilder};
use cc_storage::pool::{PinnedPool, PinnedPoolStats};
use cc_storage::PAGE_SIZE;
use cc_vector::dataset::Dataset;
use cc_vector::gt::Neighbor;
use parking_lot::Mutex;

/// Floats per vector page (`PAYLOAD_BYTES / 4`; divides evenly).
const FLOATS_PER_PAGE: usize = PAYLOAD_BYTES / 4;

/// Default in-RAM spill buffer: total `(bucket, oid)` entries across all
/// tables held before a sorted segment flush (~`16 B` each ⇒ ~64 MiB).
const DEFAULT_SPILL_ENTRIES: usize = 4 << 20;

/// Bytes per spilled entry on disk (`i64` bucket + `u32` oid).
const SPILL_ENTRY_BYTES: usize = 12;

/// One table's spill state: an append-only temp file of sorted segments.
struct SpillTable {
    file: File,
    buf: Vec<(i64, u32)>,
    /// `(entry offset, entry count)` of each sorted segment.
    segments: Vec<(u64, u64)>,
    written: u64,
}

impl SpillTable {
    fn flush(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable();
        let mut bytes = Vec::with_capacity(self.buf.len() * SPILL_ENTRY_BYTES);
        for &(bucket, oid) in &self.buf {
            bytes.extend_from_slice(&bucket.to_le_bytes());
            bytes.extend_from_slice(&oid.to_le_bytes());
        }
        self.file.write_all(&bytes)?;
        self.segments.push((self.written, self.buf.len() as u64));
        self.written += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }
}

/// Buffered sequential reader over one sorted spill segment.
struct SegmentCursor {
    remaining: u64,
    next_offset: u64,
    buf: Vec<u8>,
    pos: usize,
    head: Option<(i64, u32)>,
}

impl SegmentCursor {
    const CHUNK_ENTRIES: u64 = 4096;

    fn new(file: &File, offset: u64, count: u64) -> io::Result<Self> {
        let mut c = SegmentCursor {
            remaining: count,
            next_offset: offset * SPILL_ENTRY_BYTES as u64,
            buf: Vec::new(),
            pos: 0,
            head: None,
        };
        c.advance(file)?;
        Ok(c)
    }

    fn advance(&mut self, file: &File) -> io::Result<()> {
        if self.pos >= self.buf.len() {
            if self.remaining == 0 {
                self.head = None;
                return Ok(());
            }
            let take = self.remaining.min(Self::CHUNK_ENTRIES);
            self.buf.resize(take as usize * SPILL_ENTRY_BYTES, 0);
            read_exact_at(file, &mut self.buf, self.next_offset)?;
            self.next_offset += take * SPILL_ENTRY_BYTES as u64;
            self.remaining -= take;
            self.pos = 0;
        }
        let e = &self.buf[self.pos..self.pos + SPILL_ENTRY_BYTES];
        self.head = Some((
            i64::from_le_bytes(e[0..8].try_into().unwrap()),
            u32::from_le_bytes(e[8..12].try_into().unwrap()),
        ));
        self.pos += SPILL_ENTRY_BYTES;
        Ok(())
    }
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(mut file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(buf)
}

/// Streaming builder for a [`PagedStore`]. See module docs.
pub struct PagedBuilder {
    writer: DiskPageFileWriter,
    config: C2lshConfig,
    params: FullParams,
    family: HashFamily,
    dim: usize,
    expected_n: usize,
    next_oid: u32,
    /// Partially filled vector page payload.
    vec_page: Vec<u8>,
    spill_dir: PathBuf,
    spill: Vec<SpillTable>,
    spill_budget: usize,
    buffered: usize,
}

impl PagedBuilder {
    /// Start building at `path` for exactly `n` points of dimension
    /// `dim`. `n` is needed up front because C2LSH derives `(m, l, βn)`
    /// from the cardinality.
    ///
    /// # Panics
    /// Panics on `n == 0`, `dim == 0`, or an invalid config.
    pub fn create(
        path: impl AsRef<Path>,
        dim: usize,
        n: usize,
        config: &C2lshConfig,
    ) -> io::Result<Self> {
        assert!(n > 0, "cannot index an empty dataset");
        assert!(dim > 0, "dimension must be positive");
        let params = FullParams::derive(n, config);
        let family = HashFamily::generate(params.m, dim, config);
        let writer = DiskPageFileWriter::create(path)?;
        let spill_dir = cc_storage::wal::scratch_dir("paged_build");
        let spill = (0..params.m)
            .map(|t| {
                let file = std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(spill_dir.join(format!("table_{t}.spill")))?;
                Ok(SpillTable { file, buf: Vec::new(), segments: Vec::new(), written: 0 })
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(PagedBuilder {
            writer,
            config: config.clone(),
            params,
            family,
            dim,
            expected_n: n,
            next_oid: 0,
            vec_page: Vec::with_capacity(PAYLOAD_BYTES),
            spill_dir,
            spill,
            spill_budget: DEFAULT_SPILL_ENTRIES,
            buffered: 0,
        })
    }

    /// Cap the in-RAM spill buffer at `entries` `(bucket, oid)` pairs
    /// (across all tables) before segments are flushed to temp files.
    pub fn spill_budget(mut self, entries: usize) -> Self {
        self.spill_budget = entries.max(self.params.m);
        self
    }

    /// Derived parameters (`m`, `l`, `βn`) in effect.
    pub fn params(&self) -> &FullParams {
        &self.params
    }

    /// Points appended so far.
    pub fn len(&self) -> usize {
        self.next_oid as usize
    }

    /// `true` before the first row is appended.
    pub fn is_empty(&self) -> bool {
        self.next_oid == 0
    }

    /// Append one point: its bytes go into the vector segment, its `m`
    /// bucket ids into the spill buffers.
    ///
    /// # Panics
    /// Panics on a dimension mismatch or when more than `n` rows arrive.
    pub fn append(&mut self, row: &[f32]) -> io::Result<()> {
        assert_eq!(row.len(), self.dim, "row dimensionality mismatch");
        assert!((self.next_oid as usize) < self.expected_n, "more rows than declared at create()");
        for &x in row {
            self.vec_page.extend_from_slice(&x.to_le_bytes());
            if self.vec_page.len() == PAYLOAD_BYTES {
                self.writer.append_page(&self.vec_page)?;
                self.vec_page.clear();
            }
        }
        let oid = self.next_oid;
        for (t, h) in self.family.iter().enumerate() {
            self.spill[t].buf.push((h.bucket(row), oid));
        }
        self.buffered += self.params.m;
        self.next_oid += 1;
        if self.buffered >= self.spill_budget {
            for table in &mut self.spill {
                table.flush()?;
            }
            self.buffered = 0;
        }
        Ok(())
    }

    /// Merge the spilled segments into compressed posting runs, seal the
    /// page file, and open the finished store with a pool of
    /// `pool_pages` pages.
    ///
    /// # Panics
    /// Panics when fewer rows than declared were appended.
    pub fn finish(mut self, pool_pages: usize) -> io::Result<PagedStore> {
        assert_eq!(self.next_oid as usize, self.expected_n, "fewer rows than declared at create()");
        if !self.vec_page.is_empty() {
            self.writer.append_page(&self.vec_page)?;
            self.vec_page.clear();
        }
        let vec_pages = u32::try_from(self.writer.pages()).expect("vector pages exceed u32");
        let mut tables = Vec::with_capacity(self.params.m);
        for table in &mut self.spill {
            table.flush()?;
            let mut run = PostingRunBuilder::new();
            // K-way merge of the sorted segments, smallest (bucket, oid)
            // first; each cursor reads its segment in 48 KiB chunks.
            let mut cursors = table
                .segments
                .iter()
                .map(|&(off, count)| SegmentCursor::new(&table.file, off, count))
                .collect::<io::Result<Vec<_>>>()?;
            let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(i64, u32, usize)>> =
                cursors
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| c.head.map(|(b, o)| std::cmp::Reverse((b, o, i))))
                    .collect();
            while let Some(std::cmp::Reverse((bucket, oid, i))) = heap.pop() {
                run.push(&mut self.writer, bucket, oid)?;
                cursors[i].advance(&table.file)?;
                if let Some((b, o)) = cursors[i].head {
                    heap.push(std::cmp::Reverse((b, o, i)));
                }
            }
            tables.push(run.finish(&mut self.writer)?);
        }
        std::fs::remove_dir_all(&self.spill_dir).ok();
        let file = self.writer.finish()?;
        let posting_pages = tables.iter().map(PostingRun::page_count).sum();
        Ok(PagedStore {
            config: self.config,
            params: self.params,
            family: self.family,
            file,
            pool: PinnedPool::new(pool_pages),
            tables,
            vec_pages,
            posting_pages,
            n: self.expected_n,
            dim: self.dim,
            scratch: Mutex::new(QueryScratch::new(self.expected_n)),
            delete_on_drop: false,
        })
    }
}

/// The out-of-core C2LSH index: vectors and compressed posting runs on
/// disk, reads through a pinned buffer pool. Implements [`TableStore`],
/// so the generic engine serves it unchanged.
pub struct PagedStore {
    config: C2lshConfig,
    params: FullParams,
    family: HashFamily,
    file: DiskPageFile,
    pool: PinnedPool,
    tables: Vec<PostingRun>,
    /// Vector segment: pages `[0, vec_pages)` of the file.
    vec_pages: u32,
    posting_pages: usize,
    n: usize,
    dim: usize,
    scratch: Mutex<QueryScratch>,
    delete_on_drop: bool,
}

impl PagedStore {
    /// Convenience build from an in-RAM dataset (tests, smoke bench,
    /// service bootstrap). Large ingests should stream via
    /// [`PagedBuilder`] instead.
    pub fn build(
        data: &Dataset,
        config: &C2lshConfig,
        path: impl AsRef<Path>,
        pool_pages: usize,
    ) -> io::Result<PagedStore> {
        let mut b = PagedBuilder::create(path, data.dim(), data.len(), config)?;
        for row in data.iter() {
            b.append(row)?;
        }
        b.finish(pool_pages)
    }

    /// The derived parameters in effect.
    pub fn params(&self) -> &FullParams {
        &self.params
    }

    /// Points served.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dataset dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The build configuration.
    pub fn config(&self) -> &C2lshConfig {
        &self.config
    }

    /// Path of the backing page file.
    pub fn path(&self) -> &Path {
        self.file.path()
    }

    /// Delete the backing file when the store is dropped (for
    /// bench/test stores built in scratch locations).
    pub fn delete_file_on_drop(mut self) -> Self {
        self.delete_on_drop = true;
        self
    }

    fn search_params(&self) -> SearchParams {
        SearchParams {
            c: self.config.c,
            l: self.params.l as u32,
            beta_n: self.params.beta_n,
            base_radius: self.config.base_radius,
        }
    }

    /// c-k-ANN query; [`QueryStats::io`] counts *physical* page reads
    /// (pool misses), so it reflects the buffer pool's effectiveness.
    pub fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        self.query_with(q, k, &SearchOptions::default())
    }

    /// [`PagedStore::query`] with explicit observability options.
    pub fn query_with(
        &self,
        q: &[f32],
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<Neighbor>, QueryStats) {
        let mut scratch = self.scratch.lock();
        engine::run_query(self, &self.search_params(), &mut scratch, q, k, opts)
    }

    /// Convenience c-ANN (k = 1).
    pub fn query_one(&self, q: &[f32]) -> (Option<Neighbor>, QueryStats) {
        let (mut nn, stats) = self.query(q, 1);
        (nn.pop(), stats)
    }

    /// Answer a whole query set in parallel across scoped threads.
    pub fn query_batch(
        &self,
        queries: &Dataset,
        k: usize,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        self.query_batch_with(queries, k, &SearchOptions::default())
    }

    /// [`PagedStore::query_batch`] with explicit observability options.
    pub fn query_batch_with(
        &self,
        queries: &Dataset,
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        engine::run_query_batch(self, &self.search_params(), queries, k, opts)
    }

    /// Hash-table (posting) bytes on disk — the paper's index-size
    /// metric, excluding the raw data segment every method shares.
    pub fn posting_bytes(&self) -> u64 {
        self.posting_pages as u64 * PAGE_SIZE as u64
    }

    /// What the postings would occupy uncompressed, in the simulated
    /// [`cc_storage::bucket_file::BucketFile`] layout (12 B entries,
    /// [`ENTRIES_PER_PAGE`] per page).
    pub fn uncompressed_posting_bytes(&self) -> u64 {
        self.tables
            .iter()
            .map(|t| t.len().div_ceil(ENTRIES_PER_PAGE) as u64 * PAGE_SIZE as u64)
            .sum()
    }

    /// Total file size (header + vectors + postings).
    pub fn file_bytes(&self) -> u64 {
        self.file.size_bytes()
    }

    /// Physical page reads since the last [`PagedStore::reset_io`].
    pub fn physical_reads(&self) -> u64 {
        self.file.reads()
    }

    /// Buffer-pool counters (requests / hits / misses / evictions).
    pub fn pool_stats(&self) -> PinnedPoolStats {
        self.pool.stats()
    }

    /// Buffer-pool capacity in pages.
    pub fn pool_pages(&self) -> usize {
        self.pool.capacity()
    }

    /// Pages currently resident in the buffer pool.
    pub fn pool_resident(&self) -> usize {
        self.pool.resident()
    }

    /// Reset the physical-read and pool counters (between bench phases).
    pub fn reset_io(&self) {
        self.file.reset_reads();
        self.pool.reset_stats();
    }

    /// Replace the buffer pool with a cold one of `pages` pages and
    /// reset the I/O counters — the knob behind the recall/IO vs
    /// pool-size curve (figure 9 analogue).
    pub fn set_pool_pages(&mut self, pages: usize) {
        self.pool = PinnedPool::new(pages);
        self.file.reset_reads();
    }

    fn run(&self, t: usize) -> &PostingRun {
        &self.tables[t]
    }
}

impl Drop for PagedStore {
    fn drop(&mut self) {
        if self.delete_on_drop {
            std::fs::remove_file(self.file.path()).ok();
        }
    }
}

impl TableStore for PagedStore {
    type Cursor = BucketWindows;

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.n
    }

    fn num_tables(&self) -> usize {
        self.tables.len()
    }

    fn begin(&self, q: &[f32]) -> BucketWindows {
        BucketWindows::new(self.family.buckets(q))
    }

    fn begin_batch(&self, queries: &Dataset) -> Vec<BucketWindows> {
        let m = self.family.len();
        self.family
            .buckets_batch(queries)
            .chunks_exact(m)
            .map(|b| BucketWindows::new(b.to_vec()))
            .collect()
    }

    fn expand(
        &self,
        cursor: &mut BucketWindows,
        t: usize,
        radius: i64,
        visit: &mut dyn FnMut(u32) -> bool,
    ) {
        let run = self.run(t);
        let (left, right) = cursor.grow(t, radius, self.n, |b, _, _| {
            run.lower_bound(&self.file, &self.pool, b).expect("posting page read failed")
        });
        for range in [left, right] {
            if !range.is_empty() {
                run.scan_while(&self.file, &self.pool, range.start, range.end, |_, oid| visit(oid))
                    .expect("posting page read failed");
            }
        }
    }

    fn exhausted(&self, cursor: &BucketWindows) -> bool {
        cursor.exhausted(self.n)
    }

    /// Vectors are not memory resident; see [`TableStore::vector_into`].
    fn vector(&self, _oid: u32) -> Option<&[f32]> {
        None
    }

    fn vectors_resident(&self) -> bool {
        false
    }

    fn vector_into(&self, oid: u32, out: &mut Vec<f32>) -> bool {
        if oid as usize >= self.n {
            return false;
        }
        out.clear();
        out.reserve(self.dim);
        // Global float index of the vector start; PAYLOAD_BYTES is a
        // multiple of 4, so floats never straddle page boundaries.
        let mut fidx = oid as usize * self.dim;
        let mut remaining = self.dim;
        while remaining > 0 {
            let page_no = (fidx / FLOATS_PER_PAGE) as u32;
            debug_assert!(page_no < self.vec_pages, "vector read past segment");
            let within = fidx % FLOATS_PER_PAGE;
            let take = remaining.min(FLOATS_PER_PAGE - within);
            let page = self.pool.get(&self.file, page_no).expect("vector page read failed");
            for chunk in page[within * 4..(within + take) * 4].chunks_exact(4) {
                out.push(f32::from_le_bytes(chunk.try_into().unwrap()));
            }
            fidx += take;
            remaining -= take;
        }
        true
    }

    fn io_reads(&self) -> u64 {
        self.file.reads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::C2lshIndex;
    use cc_storage::wal::scratch_dir;
    use cc_vector::gen::{generate, Distribution};

    fn test_config(seed: u64) -> C2lshConfig {
        C2lshConfig::builder().bucket_width(4.0).seed(seed).build()
    }

    fn scratch_store(
        tag: &str,
        data: &Dataset,
        config: &C2lshConfig,
        pool_pages: usize,
    ) -> (PathBuf, PagedStore) {
        let dir = scratch_dir(tag);
        let store = PagedStore::build(data, config, dir.join("index.ccpg"), pool_pages).unwrap();
        (dir, store)
    }

    #[test]
    fn paged_results_match_memory_results() {
        let data = generate(
            Distribution::GaussianMixture { clusters: 8, spread: 0.15, scale: 4.0 },
            2_000,
            12,
            42,
        );
        let queries = generate(Distribution::UniformCube { side: 8.0 }, 24, 12, 43);
        let config = test_config(7);
        let mem = C2lshIndex::build(&data, &config);
        let (dir, paged) = scratch_store("paged_equiv", &data, &config, 64);
        for q in queries.iter() {
            let (mem_nn, _) = mem.query(q, 10);
            let (paged_nn, _) = paged.query(q, 10);
            assert_eq!(mem_nn, paged_nn);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_matches_sequential() {
        let data = generate(Distribution::UniformCube { side: 6.0 }, 1_500, 10, 11);
        let queries = generate(Distribution::UniformCube { side: 6.0 }, 16, 10, 12);
        let config = test_config(3);
        let (dir, paged) = scratch_store("paged_batch", &data, &config, 32);
        let (batch, _) = paged.query_batch(&queries, 5);
        for (q, (nn, _)) in queries.iter().zip(&batch) {
            let (seq_nn, _) = paged.query(q, 5);
            assert_eq!(&seq_nn, nn);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_build_matches_bulk_build() {
        let data = generate(Distribution::UniformCube { side: 4.0 }, 1_200, 8, 21);
        let config = test_config(5);
        let dir = scratch_dir("paged_stream");
        // Tiny spill budget forces many segment flushes and a real merge.
        let mut b = PagedBuilder::create(dir.join("a.ccpg"), data.dim(), data.len(), &config)
            .unwrap()
            .spill_budget(1_000);
        for row in data.iter() {
            b.append(row).unwrap();
        }
        let streamed = b.finish(48).unwrap();
        let bulk = PagedStore::build(&data, &config, dir.join("b.ccpg"), 48).unwrap();
        let queries = generate(Distribution::UniformCube { side: 4.0 }, 12, 8, 22);
        for q in queries.iter() {
            let (a, _) = streamed.query(q, 7);
            let (b, _) = bulk.query(q, 7);
            assert_eq!(a, b);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn vector_into_round_trips_every_row() {
        let data = generate(Distribution::UniformCube { side: 2.0 }, 300, 33, 9);
        let config = test_config(1);
        let (dir, paged) = scratch_store("paged_vec", &data, &config, 16);
        let mut buf = Vec::new();
        for (i, row) in data.iter().enumerate() {
            assert!(paged.vector_into(i as u32, &mut buf));
            assert_eq!(buf, row);
        }
        assert!(!paged.vector_into(300, &mut buf));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compression_beats_uncompressed_layout() {
        let data = generate(
            Distribution::GaussianMixture { clusters: 16, spread: 0.05, scale: 8.0 },
            4_000,
            16,
            33,
        );
        let config = test_config(13);
        let (dir, paged) = scratch_store("paged_cmp", &data, &config, 64);
        let ratio = paged.uncompressed_posting_bytes() as f64 / paged.posting_bytes() as f64;
        assert!(ratio >= 2.0, "compression ratio {ratio:.2} below 2x");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn io_counters_reflect_pool_size() {
        let data = generate(Distribution::UniformCube { side: 6.0 }, 3_000, 16, 17);
        let queries = generate(Distribution::UniformCube { side: 6.0 }, 20, 16, 18);
        let config = test_config(29);
        let (dir, mut paged) = scratch_store("paged_pool", &data, &config, 0);
        let run = |store: &PagedStore| {
            store.reset_io();
            for q in queries.iter() {
                store.query(q, 5);
            }
            (store.physical_reads(), store.pool_stats())
        };
        paged.set_pool_pages(2);
        let (reads_tiny, stats_tiny) = run(&paged);
        let total_pages = (paged.file_bytes() / PAGE_SIZE as u64) as usize + 1;
        paged.set_pool_pages(total_pages);
        let (reads_big, stats_big) = run(&paged);
        assert!(reads_big < reads_tiny, "bigger pool should do fewer physical reads");
        assert!(stats_big.hit_ratio() > stats_tiny.hit_ratio());
        assert_eq!(stats_big.evictions, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Virtual rehashing window arithmetic.
//!
//! At search radius `R = c^level`, the level-`R` bucket containing a
//! level-1 bucket id `b` is `b.div_euclid(R)`, and it covers the level-1
//! bucket-id interval `[v·R, (v+1)·R)` where `v = b.div_euclid(R)`.
//! Because levels nest (`c` children per parent), the interval at level
//! `i+1` always contains the interval at level `i` — a query's covered
//! window only ever *grows*, which is what makes incremental collision
//! counting correct: entries are counted exactly once, when the window
//! first reaches them.

/// The half-open level-1 bucket-id interval `[lo, hi)` covered by the
/// level-`radius` bucket of `bucket` (`radius = c^level ≥ 1`).
///
/// # Panics
/// Panics when `radius < 1`.
pub fn window(bucket: i64, radius: i64) -> (i64, i64) {
    assert!(radius >= 1, "radius must be >= 1, got {radius}");
    let v = bucket.div_euclid(radius);
    (v * radius, v * radius + radius)
}

/// Radius at `level` for ratio `c`: `c^level`, saturating at `i64::MAX`
/// (the query loop stops expanding far earlier; saturation just keeps the
/// arithmetic total).
pub fn radius_at(c: u32, level: u32) -> i64 {
    (c as i64).checked_pow(level).unwrap_or(i64::MAX)
}

/// Tracks the covered entry range `[lo, hi)` (indices into one hash
/// table's sorted run) per hash function, and yields only the *delta*
/// ranges when the radius grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Start of the covered entry range.
    pub lo: usize,
    /// End (exclusive) of the covered entry range.
    pub hi: usize,
}

impl Window {
    /// An empty window (nothing covered yet).
    pub fn empty() -> Self {
        Window { lo: 0, hi: 0 }
    }

    /// `true` once the window covers the entire table of `n` entries.
    pub fn is_full(&self, n: usize) -> bool {
        self.lo == 0 && self.hi >= n
    }

    /// Grow to `[new_lo, new_hi)` and return the delta ranges
    /// `(left, right)` that became newly covered. The new window must
    /// contain the old one (guaranteed by level nesting).
    ///
    /// # Panics
    /// Panics when the new window does not contain the old one.
    pub fn grow(
        &mut self,
        new_lo: usize,
        new_hi: usize,
    ) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        if self.lo == self.hi {
            // Previously empty: everything is new.
            *self = Window { lo: new_lo, hi: new_hi };
            return (new_lo..new_hi, 0..0);
        }
        assert!(
            new_lo <= self.lo && new_hi >= self.hi,
            "window must grow monotonically: old [{}, {}), new [{new_lo}, {new_hi})",
            self.lo,
            self.hi
        );
        let left = new_lo..self.lo;
        let right = self.hi..new_hi;
        *self = Window { lo: new_lo, hi: new_hi };
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_at_level_one_is_single_bucket() {
        assert_eq!(window(7, 1), (7, 8));
        assert_eq!(window(-3, 1), (-3, -2));
    }

    #[test]
    fn windows_nest_across_levels() {
        for &bucket in &[-17i64, -1, 0, 5, 123] {
            for level in 0..10u32 {
                let r1 = radius_at(2, level);
                let r2 = radius_at(2, level + 1);
                let (lo1, hi1) = window(bucket, r1);
                let (lo2, hi2) = window(bucket, r2);
                assert!(lo2 <= lo1 && hi2 >= hi1, "bucket {bucket} level {level}");
                assert_eq!(hi2 - lo2, 2 * (hi1 - lo1));
                // The query's own bucket stays inside.
                assert!((lo2..hi2).contains(&bucket));
            }
        }
    }

    #[test]
    fn negative_buckets_use_euclidean_division() {
        // bucket -1 at radius 4 lives in parent bucket -1 -> [-4, 0)
        assert_eq!(window(-1, 4), (-4, 0));
        assert_eq!(window(-4, 4), (-4, 0));
        assert_eq!(window(-5, 4), (-8, -4));
        assert_eq!(window(3, 4), (0, 4));
    }

    #[test]
    fn radius_saturates() {
        assert_eq!(radius_at(2, 3), 8);
        assert_eq!(radius_at(3, 2), 9);
        assert_eq!(radius_at(2, 63), i64::MAX);
        assert_eq!(radius_at(2, 0), 1);
    }

    #[test]
    fn grow_yields_exact_deltas() {
        let mut w = Window::empty();
        let (l, r) = w.grow(10, 20);
        assert_eq!((l, r), (10..20, 0..0));
        let (l, r) = w.grow(5, 25);
        assert_eq!((l, r), (5..10, 20..25));
        let (l, r) = w.grow(5, 25); // no growth
        assert_eq!((l, r), (5..5, 25..25));
        assert!(!w.is_full(26));
        let (l, r) = w.grow(0, 26);
        assert_eq!((l, r), (0..5, 25..26));
        assert!(w.is_full(26));
    }

    #[test]
    #[should_panic(expected = "monotonically")]
    fn grow_rejects_shrinking() {
        let mut w = Window::empty();
        w.grow(10, 20);
        w.grow(12, 25);
    }

    #[test]
    #[should_panic(expected = "radius must be >= 1")]
    fn window_rejects_zero_radius() {
        window(0, 0);
    }
}

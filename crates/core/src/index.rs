//! The in-memory C2LSH index.
//!
//! Per hash function, the index stores one run of `(level-1 bucket id,
//! object id)` entries sorted by bucket id, in structure-of-arrays form
//! (`Vec<i64>` + `Vec<u32>`) so binary searches touch only the bucket
//! array. This *is* the paper's hash table: virtual rehashing turns
//! every level-`R` bucket lookup into a contiguous range of this run.
//!
//! The query loop itself lives in [`crate::engine`]; this module only
//! maps delta-range requests onto its sorted runs.

use crate::config::C2lshConfig;
use crate::engine::QueryScratch;
use crate::engine::{self, BucketWindows, SearchOptions, SearchParams, TableStore};
use crate::hash::HashFamily;
use crate::meta::PointMeta;
use crate::params::FullParams;
use crate::stats::{BatchStats, QueryStats};
use cc_vector::dataset::Dataset;
use cc_vector::gt::Neighbor;
use parking_lot::Mutex;

/// One sorted hash table in SoA layout.
#[derive(Debug)]
struct SortedRun {
    buckets: Vec<i64>,
    oids: Vec<u32>,
}

/// The in-memory C2LSH index over a borrowed dataset.
#[derive(Debug)]
pub struct C2lshIndex<'d> {
    data: &'d Dataset,
    config: C2lshConfig,
    params: FullParams,
    family: HashFamily,
    tables: Vec<SortedRun>,
    /// Per-point attribute payloads, indexed by object id; empty when
    /// the corpus carries no metadata (every point reads as default).
    metas: Vec<PointMeta>,
    /// Reusable query scratch (epoch counter), lazily rebuilt per query.
    scratch: Mutex<QueryScratch>,
}

impl<'d> C2lshIndex<'d> {
    /// Build an index: draw `m` hash functions, hash every object, sort
    /// each table by bucket id.
    ///
    /// # Panics
    /// Panics on an empty dataset or an invalid config.
    pub fn build(data: &'d Dataset, config: &C2lshConfig) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        let params = FullParams::derive(data.len(), config);
        let family = HashFamily::generate(params.m, data.dim(), config);
        let tables = build_tables(data, &family);
        Self {
            data,
            config: config.clone(),
            params,
            family,
            tables,
            metas: Vec::new(),
            scratch: Mutex::new(QueryScratch::new(data.len())),
        }
    }

    /// Attach per-point attribute payloads (row `i` of the dataset gets
    /// `metas[i]`), enabling filtered queries via
    /// [`SearchOptions::filter`].
    ///
    /// # Panics
    /// Panics unless exactly one payload per indexed point is supplied.
    pub fn set_meta(&mut self, metas: Vec<PointMeta>) {
        assert_eq!(metas.len(), self.data.len(), "one PointMeta per indexed point");
        self.metas = metas;
    }

    /// Builder-style [`C2lshIndex::set_meta`].
    pub fn with_meta(mut self, metas: Vec<PointMeta>) -> Self {
        self.set_meta(metas);
        self
    }

    /// The derived parameters in effect.
    pub fn params(&self) -> &FullParams {
        &self.params
    }

    /// The configuration this index was built with.
    pub fn config(&self) -> &C2lshConfig {
        &self.config
    }

    /// The hash family (exposed for the theory-validation experiments).
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    fn search_params(&self) -> SearchParams {
        SearchParams {
            c: self.config.c,
            l: self.params.l as u32,
            beta_n: self.params.beta_n,
            base_radius: self.config.base_radius,
        }
    }

    /// c-k-ANN query: the `k` nearest verified candidates, ascending by
    /// distance, plus cost counters.
    pub fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        self.query_with(q, k, &SearchOptions::default())
    }

    /// [`C2lshIndex::query`] with explicit observability options.
    pub fn query_with(
        &self,
        q: &[f32],
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<Neighbor>, QueryStats) {
        let mut scratch = self.scratch.lock();
        engine::run_query(self, &self.search_params(), &mut scratch, q, k, opts)
    }

    /// Convenience c-ANN (k = 1).
    pub fn query_one(&self, q: &[f32]) -> (Option<Neighbor>, QueryStats) {
        let (mut nn, stats) = self.query(q, 1);
        (nn.pop(), stats)
    }

    /// Answer a whole query set in parallel across scoped threads.
    ///
    /// Results are in query order and identical to sequential
    /// [`C2lshIndex::query`] calls (each worker owns its own collision
    /// counter). Thread count defaults to the machine's parallelism.
    pub fn query_batch(
        &self,
        queries: &Dataset,
        k: usize,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        self.query_batch_with(queries, k, &SearchOptions::default())
    }

    /// [`C2lshIndex::query_batch`] with explicit observability options.
    pub fn query_batch_with(
        &self,
        queries: &Dataset,
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        engine::run_query_batch(self, &self.search_params(), queries, k, opts)
    }

    /// Estimated index size in bytes (hash tables + hash family), the
    /// quantity reported in the paper's index-size table.
    pub fn size_bytes(&self) -> usize {
        let tables: usize =
            self.tables.iter().map(|t| t.buckets.len() * 8 + t.oids.len() * 4).sum();
        tables + self.family.size_bytes()
    }

    /// Number of hash tables `m`.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// `(n, dim)` of the indexed dataset (for persistence fingerprints).
    pub fn data_shape(&self) -> (usize, usize) {
        (self.data.len(), self.data.dim())
    }

    /// Visit every `(bucket, oid)` entry, table by table in order (the
    /// persistence serializer).
    pub fn for_each_table_entry(&self, mut f: impl FnMut(i64, u32)) {
        for t in &self.tables {
            for (b, o) in t.buckets.iter().zip(&t.oids) {
                f(*b, *o);
            }
        }
    }

    /// Reassemble an index from persisted parts (`crate::persist`).
    pub(crate) fn from_parts(
        data: &'d Dataset,
        config: C2lshConfig,
        functions: Vec<crate::hash::PstableHash>,
        tables: Vec<(Vec<i64>, Vec<u32>)>,
    ) -> Self {
        let params = FullParams::derive(data.len(), &config);
        let family = HashFamily::from_functions(functions);
        assert_eq!(family.len(), params.m, "family size disagrees with parameters");
        let tables =
            tables.into_iter().map(|(buckets, oids)| SortedRun { buckets, oids }).collect();
        Self {
            data,
            config,
            params,
            family,
            tables,
            metas: Vec::new(),
            scratch: Mutex::new(QueryScratch::new(data.len())),
        }
    }
}

fn build_tables(data: &Dataset, family: &HashFamily) -> Vec<SortedRun> {
    family
        .iter()
        .map(|h| {
            let mut pairs: Vec<(i64, u32)> =
                data.iter().enumerate().map(|(i, v)| (h.bucket(v), i as u32)).collect();
            pairs.sort_unstable();
            SortedRun {
                buckets: pairs.iter().map(|p| p.0).collect(),
                oids: pairs.iter().map(|p| p.1).collect(),
            }
        })
        .collect()
}

impl TableStore for C2lshIndex<'_> {
    type Cursor = BucketWindows;

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn num_tables(&self) -> usize {
        self.tables.len()
    }

    fn begin(&self, q: &[f32]) -> BucketWindows {
        BucketWindows::new(self.family.buckets(q))
    }

    fn begin_batch(&self, queries: &Dataset) -> Vec<BucketWindows> {
        let m = self.family.len();
        self.family
            .buckets_batch(queries)
            .chunks_exact(m)
            .map(|b| BucketWindows::new(b.to_vec()))
            .collect()
    }

    fn expand(
        &self,
        cursor: &mut BucketWindows,
        t: usize,
        radius: i64,
        visit: &mut dyn FnMut(u32) -> bool,
    ) {
        let run = &self.tables[t];
        let n = run.oids.len();
        let (left, right) = cursor
            .grow(t, radius, n, |b, lo, hi| lo + run.buckets[lo..hi].partition_point(|&x| x < b));
        for range in [left, right] {
            for &oid in &run.oids[range] {
                if !visit(oid) {
                    return;
                }
            }
        }
    }

    fn expand_slices(
        &self,
        cursor: &mut BucketWindows,
        t: usize,
        radius: i64,
        visit: &mut dyn FnMut(&[u32]) -> bool,
    ) {
        // Native slices: each delta range of a sorted run is already a
        // contiguous id run, handed to the engine without any buffering.
        let run = &self.tables[t];
        let n = run.oids.len();
        let (left, right) = cursor
            .grow(t, radius, n, |b, lo, hi| lo + run.buckets[lo..hi].partition_point(|&x| x < b));
        for range in [left, right] {
            if !range.is_empty() && !visit(&run.oids[range]) {
                return;
            }
        }
    }

    fn exhausted(&self, cursor: &BucketWindows) -> bool {
        cursor.exhausted(self.data.len())
    }

    fn vector(&self, oid: u32) -> Option<&[f32]> {
        Some(self.data.get(oid as usize))
    }

    fn meta(&self, oid: u32) -> PointMeta {
        self.metas.get(oid as usize).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Beta;
    use crate::stats::Termination;
    use cc_vector::gen::{generate, Distribution};
    use cc_vector::gt::knn_linear;
    use cc_vector::metrics::{overall_ratio, recall};

    fn clustered(n: usize, d: usize, seed: u64) -> Dataset {
        generate(
            Distribution::GaussianMixture { clusters: 16, spread: 0.015, scale: 10.0 },
            n,
            d,
            seed,
        )
    }

    fn cfg() -> C2lshConfig {
        // w matched to the data scale of `clustered` (NN distances ~0.4).
        C2lshConfig::builder().bucket_width(1.0).seed(42).build()
    }

    #[test]
    fn finds_exact_match() {
        let data = clustered(500, 16, 1);
        let index = C2lshIndex::build(&data, &cfg());
        for i in [0usize, 17, 499] {
            let (nn, _) = index.query(data.get(i), 1);
            assert_eq!(nn[0].id as usize, i);
            assert_eq!(nn[0].dist, 0.0);
        }
    }

    #[test]
    fn high_recall_on_clustered_data() {
        let data = clustered(2000, 24, 2);
        let index = C2lshIndex::build(&data, &cfg());
        let queries = generate(
            Distribution::GaussianMixture { clusters: 16, spread: 0.015, scale: 10.0 },
            2020,
            24,
            2,
        );
        let mut total_recall = 0.0;
        let mut total_ratio = 0.0;
        let nq = 20;
        for qi in 0..nq {
            let q = queries.get(2000 + qi);
            let truth = knn_linear(&data, q, 10);
            let (got, _) = index.query(q, 10);
            total_recall += recall(&got, &truth);
            total_ratio += overall_ratio(&got, &truth);
        }
        let mean_recall = total_recall / nq as f64;
        let mean_ratio = total_ratio / nq as f64;
        assert!(mean_recall > 0.8, "recall too low: {mean_recall}");
        assert!(mean_ratio < 1.2, "ratio too high: {mean_ratio}");
    }

    #[test]
    fn results_are_sorted_and_unique() {
        let data = clustered(800, 12, 3);
        let index = C2lshIndex::build(&data, &cfg());
        let (nn, _) = index.query(data.get(5), 20);
        assert_eq!(nn.len(), 20);
        for w in nn.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        let mut ids: Vec<u32> = nn.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20, "duplicate ids in result");
    }

    #[test]
    fn t2_budget_bounds_verification() {
        let data = clustered(3000, 16, 4);
        let config = C2lshConfig::builder().bucket_width(1.0).seed(7).beta(Beta::Count(30)).build();
        let index = C2lshIndex::build(&data, &config);
        let (_, stats) = index.query(data.get(11), 10);
        // T2 caps verified candidates at k + beta_n.
        assert!(
            stats.candidates_verified <= 10 + index.params().beta_n,
            "verified {} > budget {}",
            stats.candidates_verified,
            10 + index.params().beta_n
        );
    }

    #[test]
    fn exhausts_tiny_dataset_and_still_answers() {
        let data = clustered(20, 8, 5);
        let index = C2lshIndex::build(&data, &cfg());
        // Far-away query: loop must terminate via window exhaustion or T1
        // and return all reachable points.
        let far = vec![1e4f32; 8];
        let (nn, stats) = index.query(&far, 5);
        assert_eq!(nn.len(), 5);
        assert!(matches!(
            stats.terminated_by,
            Termination::Exhausted | Termination::T1AtRadius | Termination::T2CandidateBudget
        ));
    }

    #[test]
    fn query_one_matches_query_k1() {
        let data = clustered(300, 8, 6);
        let index = C2lshIndex::build(&data, &cfg());
        let (one, _) = index.query_one(data.get(42));
        let (k1, _) = index.query(data.get(42), 1);
        assert_eq!(one.unwrap(), k1[0]);
    }

    #[test]
    fn deterministic_across_rebuilds() {
        let data = clustered(400, 10, 7);
        let i1 = C2lshIndex::build(&data, &cfg());
        let i2 = C2lshIndex::build(&data, &cfg());
        let q = data.get(123);
        assert_eq!(i1.query(q, 5).0, i2.query(q, 5).0);
    }

    #[test]
    fn size_accounting_scales_with_m_and_n() {
        let data = clustered(1000, 8, 8);
        let index = C2lshIndex::build(&data, &cfg());
        let m = index.num_tables();
        // 12 bytes per entry per table plus the family itself.
        assert!(index.size_bytes() >= m * 1000 * 12);
    }

    #[test]
    fn k_exceeding_candidates_returns_fewer() {
        let data = clustered(10, 4, 9);
        let index = C2lshIndex::build(&data, &cfg());
        let (nn, _) = index.query(data.get(0), 50);
        assert!(nn.len() <= 10);
        assert!(!nn.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let data = Dataset::empty(4);
        let _ = C2lshIndex::build(&data, &cfg());
    }

    #[test]
    fn batch_query_matches_sequential() {
        let data = clustered(1200, 12, 10);
        let index = C2lshIndex::build(&data, &cfg());
        let queries = data.slice_rows(0, 37);
        let (batch, agg) = index.query_batch(&queries, 5);
        assert_eq!(batch.len(), 37);
        assert_eq!(agg.queries, 37);
        let mut verified_total = 0u64;
        for (qi, (nn, stats)) in batch.iter().enumerate() {
            let (seq_nn, seq_stats) = index.query(queries.get(qi), 5);
            assert_eq!(nn, &seq_nn, "query {qi}");
            assert_eq!(stats.candidates_verified, seq_stats.candidates_verified);
            verified_total += stats.candidates_verified as u64;
        }
        assert_eq!(agg.verified, verified_total);
    }

    #[test]
    fn batch_query_empty_set() {
        let data = clustered(50, 8, 11);
        let index = C2lshIndex::build(&data, &cfg());
        let (batch, agg) = index.query_batch(&Dataset::empty(8), 3);
        assert!(batch.is_empty());
        assert_eq!(agg.queries, 0);
    }

    #[test]
    fn filtered_query_respects_predicate_and_counts_separately() {
        use crate::meta::Predicate;
        let data = clustered(900, 12, 13);
        // Modulus 3 is coprime to the generator's 16 clusters, so every
        // cluster mixes all three labels and a filtered search must
        // reject frequent same-cluster points.
        let metas: Vec<PointMeta> =
            (0..900u32).map(|i| PointMeta::new(1 << (i % 5), i % 3)).collect();
        let index = C2lshIndex::build(&data, &cfg()).with_meta(metas);
        let opts = SearchOptions {
            filter: Some(Predicate::label(1).and_tag_any(u64::MAX)),
            ..Default::default()
        };
        let (nn, stats) = index.query_with(data.get(4), 8, &opts);
        assert!(!nn.is_empty());
        for n in &nn {
            assert_eq!(n.id % 3, 1, "label clause violated by {}", n.id);
        }
        assert!(stats.candidates_filtered > 0);
        // Unfiltered queries on the same index stay untouched.
        let (_, plain) = index.query(data.get(4), 8);
        assert_eq!(plain.candidates_filtered, 0);
    }

    #[test]
    #[should_panic(expected = "one PointMeta per indexed point")]
    fn meta_length_mismatch_rejected() {
        let data = clustered(50, 8, 14);
        let _ = C2lshIndex::build(&data, &cfg()).with_meta(vec![PointMeta::default(); 49]);
    }

    #[test]
    fn per_round_observability_via_options() {
        let data = clustered(600, 10, 12);
        let index = C2lshIndex::build(&data, &cfg());
        let opts = SearchOptions { per_round: true, timing: true, ..Default::default() };
        let (_, stats) = index.query_with(data.get(9), 5, &opts);
        assert_eq!(stats.per_round.len(), stats.rounds as usize);
        let col: u64 = stats.per_round.iter().map(|r| r.collisions).sum();
        assert_eq!(col, stats.collisions_counted);
        assert!(stats.elapsed_nanos > 0);
        // And with defaults the layer stays off.
        let (_, plain) = index.query(data.get(9), 5);
        assert!(plain.per_round.is_empty());
        assert_eq!(plain.elapsed_nanos, 0);
    }
}

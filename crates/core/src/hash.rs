//! The p-stable LSH family used by C2LSH.
//!
//! One hash function is `h_{a,b}(o) = ⌊(a·o + b)/w⌋` with
//! `a ~ N(0,1)^d`. The offset `b` is drawn uniformly from
//! `[0, w · c^L)` — a multiple of every level's bucket width
//! `w·c^i, i ≤ L` — so that **virtual rehashing is exact**: the level-`R`
//! hash value `⌊(a·o + b)/(wR)⌋` equals `⌊h_{a,b}(o)/R⌋` (nested floor
//! division) *and* the offset is uniform modulo every level's width,
//! making each level a textbook p-stable function with collision
//! probability `p(s, wR)`.

use crate::config::C2lshConfig;
use crate::kernels;
use cc_vector::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The highest virtual-rehashing level supported (radii up to
/// `c^MAX_LEVEL`); chosen so `2^MAX_LEVEL` dwarfs any practical radius.
pub const MAX_LEVEL: u32 = 30;

/// One p-stable hash function.
#[derive(Debug, Clone)]
pub struct PstableHash {
    /// Projection vector, entries i.i.d. standard normal.
    a: Vec<f32>,
    /// Uniform offset in `[0, w·c^L)`.
    b: f64,
    /// Level-1 bucket width.
    w: f64,
}

impl PstableHash {
    /// Raw projection `a·o + b` (before bucketing). Exposed because
    /// QALSH-style schemes index this value directly. Computed through
    /// the process-wide [`kernels::dispatch`] under the canonical
    /// lane-parallel schedule, so single-function, family and batched
    /// hashing agree bit-for-bit across kernels.
    pub fn project(&self, o: &[f32]) -> f64 {
        kernels::dispatch().dot(&self.a, o) + self.b
    }

    /// Level-1 bucket id `⌊(a·o + b)/w⌋`.
    pub fn bucket(&self, o: &[f32]) -> i64 {
        (self.project(o) / self.w).floor() as i64
    }

    /// Dimensionality this function was drawn for.
    pub fn dim(&self) -> usize {
        self.a.len()
    }

    /// Level-1 bucket width.
    pub fn width(&self) -> f64 {
        self.w
    }

    /// The projection coefficients `a` (for persistence).
    pub fn projection_coeffs(&self) -> &[f32] {
        &self.a
    }

    /// The offset `b` (for persistence).
    pub fn offset(&self) -> f64 {
        self.b
    }

    /// Reassemble a function from persisted parts.
    ///
    /// # Panics
    /// Panics on an empty projection or non-positive width.
    pub fn from_parts(a: Vec<f32>, b: f64, w: f64) -> Self {
        assert!(!a.is_empty(), "empty projection vector");
        assert!(w > 0.0, "width must be positive");
        Self { a, b, w }
    }
}

/// A family of `m` i.i.d. p-stable hash functions.
///
/// Besides the individual [`PstableHash`] functions, the family keeps
/// their projection vectors packed into one row-major `m×d` matrix so
/// whole-family hashing runs as a blocked matrix product through the
/// dispatched SIMD kernel ([`kernels::KernelDispatch::project_family`] /
/// [`kernels::KernelDispatch::project_batch`]) instead of `m` separate
/// virtual calls.
#[derive(Debug, Clone)]
pub struct HashFamily {
    functions: Vec<PstableHash>,
    /// Row-major `m×d` packing of the functions' `a` vectors.
    matrix: Vec<f32>,
    /// Per-function offsets `b` (added by the projection kernels).
    offsets: Vec<f64>,
    /// Dimensionality shared by every function.
    d: usize,
}

impl HashFamily {
    /// Reassemble a family from persisted functions.
    ///
    /// # Panics
    /// Panics when `functions` is empty or dimensions disagree.
    pub fn from_functions(functions: Vec<PstableHash>) -> Self {
        assert!(!functions.is_empty(), "empty hash family");
        let d = functions[0].dim();
        assert!(functions.iter().all(|h| h.dim() == d), "mixed dimensions in family");
        let mut matrix = Vec::with_capacity(functions.len() * d);
        let mut offsets = Vec::with_capacity(functions.len());
        for h in &functions {
            matrix.extend_from_slice(&h.a);
            offsets.push(h.b);
        }
        Self { functions, matrix, offsets, d }
    }

    /// Draw `m` functions for `d`-dimensional data, deterministically
    /// from `config.seed`.
    pub fn generate(m: usize, d: usize, config: &C2lshConfig) -> Self {
        assert!(m > 0 && d > 0, "need m > 0 and d > 0");
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5ee1_c0de);
        let mut normal = cc_vector::gen::NormalSampler::new();
        // Offsets uniform over [0, w * c^MAX_LEVEL): a multiple of every
        // level's width, see module docs.
        let level_cap = (config.c as f64).powi(MAX_LEVEL as i32);
        let functions = (0..m)
            .map(|_| {
                let a: Vec<f32> = (0..d).map(|_| normal.sample(&mut rng) as f32).collect();
                let b = rng.gen::<f64>() * config.w * level_cap;
                PstableHash { a, b, w: config.w }
            })
            .collect();
        Self::from_functions(functions)
    }

    /// Number of functions `m`.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// `true` when the family is empty (never happens post-construction).
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Access function `i`.
    pub fn get(&self, i: usize) -> &PstableHash {
        &self.functions[i]
    }

    /// Iterate over the functions.
    pub fn iter(&self) -> impl Iterator<Item = &PstableHash> {
        self.functions.iter()
    }

    /// Dimensionality the family was drawn for.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Level-1 bucket ids of `o` under every function ("hash string").
    /// One blocked `m×d` matrix product through the dispatched kernel;
    /// bit-identical to calling [`PstableHash::bucket`] per function.
    pub fn buckets(&self, o: &[f32]) -> Vec<i64> {
        let mut proj = vec![0.0f64; self.functions.len()];
        kernels::dispatch().project_family(&self.matrix, self.d, o, &self.offsets, &mut proj);
        proj.iter().zip(&self.functions).map(|(p, h)| (p / h.w).floor() as i64).collect()
    }

    /// Level-1 bucket ids for a whole coalesced query batch:
    /// `out[qi*m + t]` is query `qi`'s bucket under function `t`. The
    /// blocked kernel reads each matrix row once per query block, which
    /// is where batched hashing beats `nq` single calls; results are
    /// bit-identical to per-query [`HashFamily::buckets`].
    ///
    /// # Panics
    /// Panics when the batch dimensionality disagrees with the family's.
    pub fn buckets_batch(&self, queries: &Dataset) -> Vec<i64> {
        let m = self.functions.len();
        let mut proj = vec![0.0f64; m * queries.len()];
        kernels::dispatch().project_batch(&self.matrix, self.d, queries, &self.offsets, &mut proj);
        proj.chunks_exact(m)
            .flat_map(|row| row.iter().zip(&self.functions).map(|(p, h)| (p / h.w).floor() as i64))
            .collect()
    }

    /// Estimated heap size of the family in bytes (index-size reports).
    pub fn size_bytes(&self) -> usize {
        self.functions
            .iter()
            .map(|h| h.a.len() * core::mem::size_of::<f32>() + 2 * core::mem::size_of::<f64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_math::pstable::collision_probability;
    use cc_vector::dist::euclidean;

    fn cfg(seed: u64, w: f64) -> C2lshConfig {
        C2lshConfig::builder().bucket_width(w).seed(seed).build()
    }

    #[test]
    fn deterministic_per_seed() {
        let c = cfg(5, 1.0);
        let f1 = HashFamily::generate(4, 8, &c);
        let f2 = HashFamily::generate(4, 8, &c);
        let o = [1.0f32, -2.0, 0.5, 3.0, 0.0, 1.0, 2.0, -1.0];
        assert_eq!(f1.buckets(&o), f2.buckets(&o));
        let c2 = cfg(6, 1.0);
        let f3 = HashFamily::generate(4, 8, &c2);
        assert_ne!(f1.buckets(&o), f3.buckets(&o));
    }

    #[test]
    fn offsets_are_positive_and_bounded() {
        let c = cfg(1, 0.5);
        let fam = HashFamily::generate(16, 4, &c);
        let cap = 0.5 * 2f64.powi(MAX_LEVEL as i32);
        for h in fam.iter() {
            assert!(h.b >= 0.0 && h.b < cap);
            assert_eq!(h.dim(), 4);
            assert_eq!(h.width(), 0.5);
        }
    }

    #[test]
    fn bucket_is_floor_of_projection() {
        let c = cfg(2, 2.0);
        let fam = HashFamily::generate(1, 3, &c);
        let h = fam.get(0);
        let o = [0.3f32, -1.0, 2.5];
        assert_eq!(h.bucket(&o), (h.project(&o) / 2.0).floor() as i64);
    }

    #[test]
    fn empirical_collision_rate_matches_theory() {
        // Two points at distance s must collide with probability p(s, w)
        // over the random draw of the family. Use many functions as i.i.d.
        // trials.
        let w = 2.184;
        let c = cfg(77, w);
        let d = 24;
        let m = 8000;
        let fam = HashFamily::generate(m, d, &c);
        let o: Vec<f32> = vec![0.0; d];
        let mut q = vec![0.0f32; d];
        q[0] = 1.3; // distance 1.3
        let s = euclidean(&o, &q);
        let collisions = fam.iter().filter(|h| h.bucket(&o) == h.bucket(&q)).count();
        let empirical = collisions as f64 / m as f64;
        let theory = collision_probability(s, w);
        // Standard error ~ sqrt(p(1-p)/m) ≈ 0.005; allow 4 sigma.
        assert!((empirical - theory).abs() < 0.025, "empirical {empirical} vs theory {theory}");
    }

    #[test]
    fn virtual_rehash_consistency() {
        // floor(bucket / R) must equal floor((a·o + b) / (w R)).
        let w = 1.7;
        let c = cfg(3, w);
        let fam = HashFamily::generate(32, 6, &c);
        let o = [0.2f32, 5.0, -3.0, 0.7, 1.1, -0.4];
        for h in fam.iter() {
            for level in 0..10u32 {
                let r = 2i64.pow(level);
                let direct = (h.project(&o) / (w * r as f64)).floor() as i64;
                let derived = h.bucket(&o).div_euclid(r);
                assert_eq!(direct, derived, "level {level}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "need m > 0")]
    fn rejects_empty_family() {
        HashFamily::generate(0, 4, &cfg(0, 1.0));
    }

    #[test]
    fn family_buckets_match_per_function_buckets() {
        let c = cfg(11, 1.3);
        let fam = HashFamily::generate(17, 13, &c);
        let o: Vec<f32> = (0..13).map(|i| (i as f32 * 0.9).sin() * 4.0).collect();
        let packed = fam.buckets(&o);
        let single: Vec<i64> = fam.iter().map(|h| h.bucket(&o)).collect();
        assert_eq!(packed, single);
    }

    #[test]
    fn batched_buckets_match_single_query_buckets() {
        use cc_vector::gen::{generate, Distribution};
        let c = cfg(19, 0.8);
        let d = 21;
        let fam = HashFamily::generate(9, d, &c);
        let queries = generate(
            Distribution::GaussianMixture { clusters: 4, spread: 0.05, scale: 3.0 },
            13,
            d,
            3,
        );
        let batched = fam.buckets_batch(&queries);
        for qi in 0..queries.len() {
            assert_eq!(&batched[qi * 9..(qi + 1) * 9], fam.buckets(queries.get(qi)), "q={qi}");
        }
    }
}

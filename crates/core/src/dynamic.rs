//! The dynamic (updatable) C2LSH index.
//!
//! A key advantage the paper claims over LSB-forest: because every hash
//! table is keyed by a *single* LSH function, updates are trivial —
//! insert/delete an object touches one bucket per table, no compound
//! keys, no tree rebalancing across radii (virtual rehashing still works
//! because it only relies on bucket-id arithmetic).
//!
//! [`DynamicIndex`] owns its data and keeps each hash table as a
//! `BTreeMap<bucket, Vec<oid>>`, trading the static index's cache-dense
//! sorted runs for O(log n) updates. Queries run through the shared
//! [`crate::engine`] loop — the same virtual-rehashing windows,
//! incremental counting and T1/T2 termination as every other backend —
//! expressed over key ranges ([`KeyWindows`]) instead of array
//! positions, with deleted ids tombstoned via [`TableStore::vector`].

use crate::config::C2lshConfig;
use crate::engine::QueryScratch;
use crate::engine::{self, KeyWindows, SearchOptions, SearchParams, TableStore};
use crate::hash::HashFamily;
use crate::meta::PointMeta;
use crate::params::FullParams;
use crate::stats::{BatchStats, QueryStats};
use cc_vector::dataset::Dataset;
use cc_vector::gt::Neighbor;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// An updatable C2LSH index owning its vectors.
pub struct DynamicIndex {
    dim: usize,
    /// The dataset size the `(m, l)` derivation was calibrated for
    /// (recorded so checkpoints can rebuild an identical index).
    expected_n: usize,
    config: C2lshConfig,
    params: FullParams,
    family: HashFamily,
    /// Object id → vector (tombstoned on delete).
    vectors: Vec<Option<Vec<f32>>>,
    /// Object id → attribute payload, parallel to `vectors` (slots of
    /// tombstoned objects keep their last payload; it is never read,
    /// since the engine drops tombstones at [`TableStore::vector`]).
    metas: Vec<PointMeta>,
    live: usize,
    tables: Vec<BTreeMap<i64, Vec<u32>>>,
    /// Reusable query scratch behind a lock, so queries take `&self`.
    scratch: Mutex<QueryScratch>,
}

impl std::fmt::Debug for DynamicIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicIndex")
            .field("dim", &self.dim)
            .field("expected_n", &self.expected_n)
            .field("live", &self.live)
            .field("id_bound", &self.vectors.len())
            .field("m", &self.params.m)
            .finish_non_exhaustive()
    }
}

impl Clone for DynamicIndex {
    /// Deep copy with a fresh (empty) query scratch — the basis of the
    /// snapshot read path: a writer clones the current index, mutates
    /// the clone and publishes it, while readers keep querying the
    /// original. O(total vector data + table entries).
    fn clone(&self) -> Self {
        Self {
            dim: self.dim,
            expected_n: self.expected_n,
            config: self.config.clone(),
            params: self.params,
            family: self.family.clone(),
            vectors: self.vectors.clone(),
            metas: self.metas.clone(),
            live: self.live,
            tables: self.tables.clone(),
            scratch: Mutex::new(QueryScratch::new(0)),
        }
    }
}

impl DynamicIndex {
    /// Create an empty index sized for an *expected* dataset size
    /// `expected_n` (drives the `(m, l)` derivation; the guarantee is
    /// calibrated to that order of magnitude — re-derive and rebuild if
    /// the live size drifts by more than ~10×).
    ///
    /// # Panics
    /// Panics on `expected_n == 0`, `dim == 0` or an invalid config.
    pub fn new(dim: usize, expected_n: usize, config: &C2lshConfig) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let params = FullParams::derive(expected_n, config);
        let family = HashFamily::generate(params.m, dim, config);
        let tables = vec![BTreeMap::new(); params.m];
        Self {
            dim,
            expected_n,
            config: config.clone(),
            params,
            family,
            vectors: Vec::new(),
            metas: Vec::new(),
            live: 0,
            tables,
            scratch: Mutex::new(QueryScratch::new(0)),
        }
    }

    /// Rebuild an index from a checkpoint's slot array (object id →
    /// vector or tombstone), preserving ids exactly. The hash family is
    /// re-generated from `(dim, expected_n, config)` — the same
    /// derivation as [`DynamicIndex::new`] — so an index restored this
    /// way answers queries identically to the one that was saved.
    pub(crate) fn from_slots(
        dim: usize,
        expected_n: usize,
        config: &C2lshConfig,
        slots: Vec<Option<Vec<f32>>>,
        metas: Vec<PointMeta>,
    ) -> Self {
        assert!(
            metas.is_empty() || metas.len() == slots.len(),
            "checkpoint meta array length mismatch"
        );
        let mut idx = Self::new(dim, expected_n, config);
        for (oid, slot) in slots.iter().enumerate() {
            let Some(v) = slot else { continue };
            assert_eq!(v.len(), dim, "checkpoint slot dimension mismatch");
            for (t, h) in idx.family.iter().enumerate() {
                let b = h.bucket(v);
                idx.tables[t].entry(b).or_default().push(oid as u32);
            }
            idx.live += 1;
        }
        // Keep `metas` parallel to `vectors` (meta-free checkpoints
        // restore with all-default payloads).
        idx.metas = if metas.is_empty() { vec![PointMeta::default(); slots.len()] } else { metas };
        idx.vectors = slots;
        idx
    }

    /// Build from an existing dataset (bulk path used by tests and by
    /// migrations from the static index).
    pub fn from_dataset(data: &Dataset, config: &C2lshConfig) -> Self {
        let mut idx = Self::new(data.dim(), data.len().max(1), config);
        for v in data.iter() {
            idx.insert(v.to_vec());
        }
        idx
    }

    /// Insert a vector with default (empty) metadata; returns its
    /// object id. O(m log n).
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn insert(&mut self, v: Vec<f32>) -> u32 {
        self.insert_with_meta(v, PointMeta::default())
    }

    /// Insert a vector with an attribute payload; returns its object
    /// id. O(m log n). Object id assignment is independent of the
    /// payload, so a meta-bearing insert replays identically to a
    /// meta-free one (WAL compatibility).
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn insert_with_meta(&mut self, v: Vec<f32>, meta: PointMeta) -> u32 {
        assert_eq!(v.len(), self.dim, "vector length mismatch");
        assert!(v.iter().all(|x| x.is_finite()), "vector contains non-finite coordinates");
        let oid = self.vectors.len() as u32;
        for (t, h) in self.family.iter().enumerate() {
            let b = h.bucket(&v);
            self.tables[t].entry(b).or_default().push(oid);
        }
        self.vectors.push(Some(v));
        self.metas.push(meta);
        self.live += 1;
        oid
    }

    /// Delete an object by id; returns `false` when the id is unknown or
    /// already deleted. O(m log n + bucket sizes).
    pub fn delete(&mut self, oid: u32) -> bool {
        let Some(slot) = self.vectors.get_mut(oid as usize) else {
            return false;
        };
        let Some(v) = slot.take() else {
            return false;
        };
        for (t, h) in self.family.iter().enumerate() {
            let b = h.bucket(&v);
            if let Some(bucket) = self.tables[t].get_mut(&b) {
                bucket.retain(|&o| o != oid);
                if bucket.is_empty() {
                    self.tables[t].remove(&b);
                }
            }
        }
        self.live -= 1;
        true
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when the index holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The derived parameters in effect.
    pub fn params(&self) -> &FullParams {
        &self.params
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &C2lshConfig {
        &self.config
    }

    /// The expected dataset size the `(m, l)` derivation used.
    pub fn expected_n(&self) -> usize {
        self.expected_n
    }

    /// Dataset dimensionality (also available through
    /// [`TableStore::dim`]; inherent so callers need no trait import).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The full slot array (object id → vector, `None` for
    /// tombstones), used by checkpointing. Its length is
    /// [`TableStore::id_bound`].
    pub fn slots(&self) -> &[Option<Vec<f32>>] {
        &self.vectors
    }

    /// The attribute payloads parallel to [`DynamicIndex::slots`] (one
    /// per slot, tombstones included), used by checkpointing.
    pub fn meta_slots(&self) -> &[PointMeta] {
        &self.metas
    }

    /// Access a live vector by id.
    pub fn get(&self, oid: u32) -> Option<&[f32]> {
        self.vectors.get(oid as usize).and_then(|v| v.as_deref())
    }

    fn search_params(&self) -> SearchParams {
        SearchParams {
            c: self.config.c,
            l: self.params.l as u32,
            beta_n: self.params.beta_n,
            base_radius: self.config.base_radius,
        }
    }

    /// c-k-ANN query (same algorithm and guarantees as the static
    /// index; see module docs). Takes `&self`: the collision-counter
    /// scratch lives behind a lock, so concurrent readers are fine.
    pub fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        self.query_with(q, k, &SearchOptions::default())
    }

    /// [`DynamicIndex::query`] with explicit observability options.
    pub fn query_with(
        &self,
        q: &[f32],
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<Neighbor>, QueryStats) {
        let mut scratch = self.scratch.lock();
        engine::run_query(self, &self.search_params(), &mut scratch, q, k, opts)
    }

    /// Convenience c-ANN (k = 1).
    pub fn query_one(&self, q: &[f32]) -> (Option<Neighbor>, QueryStats) {
        let (mut nn, stats) = self.query(q, 1);
        (nn.pop(), stats)
    }

    /// Answer a whole query set in parallel across scoped threads
    /// (results in query order, identical to sequential queries).
    pub fn query_batch(
        &self,
        queries: &Dataset,
        k: usize,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        self.query_batch_with(queries, k, &SearchOptions::default())
    }

    /// [`DynamicIndex::query_batch`] with explicit observability options.
    pub fn query_batch_with(
        &self,
        queries: &Dataset,
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        engine::run_query_batch(self, &self.search_params(), queries, k, opts)
    }
}

impl TableStore for DynamicIndex {
    type Cursor = KeyWindows;

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.live
    }

    fn id_bound(&self) -> usize {
        // Tombstoned ids still index the counter arrays.
        self.vectors.len()
    }

    fn num_tables(&self) -> usize {
        self.tables.len()
    }

    fn begin(&self, q: &[f32]) -> KeyWindows {
        KeyWindows::new(self.family.buckets(q))
    }

    fn begin_batch(&self, queries: &Dataset) -> Vec<KeyWindows> {
        let m = self.family.len();
        self.family
            .buckets_batch(queries)
            .chunks_exact(m)
            .map(|b| KeyWindows::new(b.to_vec()))
            .collect()
    }

    fn expand(
        &self,
        cursor: &mut KeyWindows,
        t: usize,
        radius: i64,
        visit: &mut dyn FnMut(u32) -> bool,
    ) {
        for (lo, hi) in cursor.grow(t, radius) {
            if lo >= hi {
                continue;
            }
            for (_, bucket) in self.tables[t].range(lo..hi) {
                for &oid in bucket {
                    if !visit(oid) {
                        return;
                    }
                }
            }
        }
    }

    fn expand_slices(
        &self,
        cursor: &mut KeyWindows,
        t: usize,
        radius: i64,
        visit: &mut dyn FnMut(&[u32]) -> bool,
    ) {
        // Native slices: every bucket's id vector is contiguous.
        for (lo, hi) in cursor.grow(t, radius) {
            if lo >= hi {
                continue;
            }
            for (_, bucket) in self.tables[t].range(lo..hi) {
                if !bucket.is_empty() && !visit(bucket) {
                    return;
                }
            }
        }
    }

    fn exhausted(&self, cursor: &KeyWindows) -> bool {
        (0..self.tables.len()).all(|t| {
            let keys = match (self.tables[t].keys().next(), self.tables[t].keys().next_back()) {
                (Some(&min), Some(&max)) => Some((min, max)),
                _ => None, // empty table
            };
            cursor.covers(t, keys)
        })
    }

    fn vector(&self, oid: u32) -> Option<&[f32]> {
        self.vectors.get(oid as usize).and_then(|v| v.as_deref())
    }

    fn meta(&self, oid: u32) -> PointMeta {
        self.metas.get(oid as usize).copied().unwrap_or_default()
    }

    fn supports_mutations(&self) -> bool {
        true
    }

    fn insert(&mut self, vector: Vec<f32>) -> Option<u32> {
        Some(DynamicIndex::insert(self, vector))
    }

    fn delete(&mut self, oid: u32) -> bool {
        DynamicIndex::delete(self, oid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::C2lshIndex;
    use crate::stats::Termination;
    use cc_vector::gen::{generate, Distribution};

    fn clustered(n: usize, d: usize, seed: u64) -> Dataset {
        generate(
            Distribution::GaussianMixture { clusters: 16, spread: 0.015, scale: 10.0 },
            n,
            d,
            seed,
        )
    }

    fn cfg() -> C2lshConfig {
        C2lshConfig::builder().bucket_width(1.0).seed(42).build()
    }

    #[test]
    fn matches_static_index_results() {
        // Same config/seed => same hash family => identical candidates.
        let data = clustered(800, 12, 1);
        let static_idx = C2lshIndex::build(&data, &cfg());
        let dyn_idx = DynamicIndex::from_dataset(&data, &cfg());
        for qi in [0usize, 99, 700] {
            let q = data.get(qi).to_vec();
            let (s_nn, _) = static_idx.query(&q, 10);
            let (d_nn, _) = dyn_idx.query(&q, 10);
            assert_eq!(s_nn, d_nn, "query {qi}");
        }
    }

    #[test]
    fn insert_then_find() {
        let mut idx = DynamicIndex::new(8, 1000, &cfg());
        let data = clustered(200, 8, 2);
        for v in data.iter() {
            idx.insert(v.to_vec());
        }
        assert_eq!(idx.len(), 200);
        let (nn, _) = idx.query(data.get(57), 1);
        assert_eq!(nn[0].id, 57);
        assert_eq!(nn[0].dist, 0.0);
    }

    #[test]
    fn delete_removes_from_results() {
        let mut idx = DynamicIndex::new(8, 1000, &cfg());
        let data = clustered(100, 8, 3);
        for v in data.iter() {
            idx.insert(v.to_vec());
        }
        let q = data.get(42).to_vec();
        assert_eq!(idx.query(&q, 1).0[0].id, 42);
        assert!(idx.delete(42));
        assert!(!idx.delete(42), "double delete must be a no-op");
        assert_eq!(idx.len(), 99);
        assert!(idx.get(42).is_none());
        let (nn, _) = idx.query(&q, 1);
        assert_ne!(nn[0].id, 42, "deleted object must not be returned");
    }

    #[test]
    fn interleaved_updates_stay_consistent() {
        let mut idx = DynamicIndex::new(6, 500, &cfg());
        let data = clustered(300, 6, 4);
        let mut live: Vec<u32> = Vec::new();
        for (i, v) in data.iter().enumerate() {
            let oid = idx.insert(v.to_vec());
            live.push(oid);
            if i % 3 == 2 {
                let victim = live.remove(live.len() / 2);
                assert!(idx.delete(victim));
            }
        }
        assert_eq!(idx.len(), live.len());
        // Every remaining live object findable by exact-match query.
        for &oid in live.iter().step_by(17) {
            let q = idx.get(oid).unwrap().to_vec();
            let (nn, _) = idx.query(&q, 1);
            assert_eq!(nn[0].dist, 0.0);
        }
    }

    #[test]
    fn unknown_ids_rejected() {
        let mut idx = DynamicIndex::new(4, 100, &cfg());
        assert!(!idx.delete(0));
        assert!(idx.get(5).is_none());
        assert!(idx.is_empty());
    }

    #[test]
    fn query_on_sparse_index_terminates() {
        let mut idx = DynamicIndex::new(4, 1000, &cfg());
        idx.insert(vec![0.0; 4]);
        idx.insert(vec![100.0; 4]);
        let (nn, stats) = idx.query(&[50.0; 4], 2);
        assert_eq!(nn.len(), 2);
        assert!(matches!(stats.terminated_by, Termination::Exhausted | Termination::T1AtRadius));
    }

    #[test]
    fn query_takes_shared_reference() {
        // Concurrent readers over one shared index: compiles only with
        // `query(&self)`, and the lock keeps the scratch coherent.
        let data = clustered(150, 6, 5);
        let idx = DynamicIndex::from_dataset(&data, &cfg());
        let expected = idx.query(data.get(3), 4).0;
        crossbeam::scope(|s| {
            for _ in 0..4 {
                let expected = &expected;
                let idx = &idx;
                let data = &data;
                s.spawn(move |_| {
                    let (nn, _) = idx.query(data.get(3), 4);
                    assert_eq!(&nn, expected);
                });
            }
        })
        .unwrap();
    }

    #[test]
    fn batch_matches_sequential() {
        let data = clustered(400, 8, 6);
        let idx = DynamicIndex::from_dataset(&data, &cfg());
        let queries = data.slice_rows(0, 13);
        let (batch, agg) = idx.query_batch(&queries, 3);
        assert_eq!(batch.len(), 13);
        assert_eq!(agg.queries, 13);
        for (qi, (nn, _)) in batch.iter().enumerate() {
            assert_eq!(nn, &idx.query(queries.get(qi), 3).0, "query {qi}");
        }
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn rejects_wrong_dimension() {
        let mut idx = DynamicIndex::new(4, 100, &cfg());
        idx.insert(vec![0.0; 3]);
    }

    #[test]
    fn clone_isolates_writer_from_reader() {
        let data = clustered(120, 6, 7);
        let base = DynamicIndex::from_dataset(&data, &cfg());
        let q = data.get(10).to_vec();
        let before = base.query(&q, 3).0;
        let mut fork = base.clone();
        fork.delete(10);
        fork.insert(vec![42.0; 6]);
        // The original is untouched and still answers identically.
        assert_eq!(base.query(&q, 3).0, before);
        assert_eq!(base.len(), 120);
        assert_eq!(fork.len(), 120); // -1 +1
        assert_ne!(fork.query(&q, 1).0[0].id, 10);
    }

    #[test]
    fn from_slots_restores_ids_and_answers() {
        let data = clustered(150, 8, 8);
        let mut idx = DynamicIndex::from_dataset(&data, &cfg());
        for oid in [3u32, 77, 149] {
            assert!(idx.delete(oid));
        }
        let restored = DynamicIndex::from_slots(
            idx.dim,
            idx.expected_n(),
            idx.config(),
            idx.slots().to_vec(),
            idx.meta_slots().to_vec(),
        );
        assert_eq!(restored.len(), idx.len());
        assert_eq!(TableStore::id_bound(&restored), TableStore::id_bound(&idx));
        for qi in [0usize, 50, 120] {
            let q = data.get(qi).to_vec();
            assert_eq!(restored.query(&q, 5).0, idx.query(&q, 5).0, "query {qi}");
        }
        // Ids keep growing from the preserved bound, exactly like the
        // original would.
        let mut a = idx;
        let mut b = restored;
        assert_eq!(a.insert(vec![1.0; 8]), b.insert(vec![1.0; 8]));
    }

    #[test]
    fn insert_with_meta_enables_filtered_queries() {
        use crate::meta::Predicate;
        let data = clustered(240, 8, 10);
        let mut idx = DynamicIndex::new(8, 400, &cfg());
        for (i, v) in data.iter().enumerate() {
            idx.insert_with_meta(v.to_vec(), PointMeta::labeled((i % 3) as u32));
        }
        let opts = SearchOptions { filter: Some(Predicate::label(1)), ..Default::default() };
        let (nn, stats) = idx.query_with(data.get(10), 5, &opts);
        assert!(!nn.is_empty());
        for n in &nn {
            assert_eq!(n.id % 3, 1, "predicate violated by {}", n.id);
        }
        assert!(stats.candidates_filtered > 0);
        // Metadata survives the slots round-trip.
        let restored = DynamicIndex::from_slots(
            8,
            idx.expected_n(),
            idx.config(),
            idx.slots().to_vec(),
            idx.meta_slots().to_vec(),
        );
        assert_eq!(restored.query_with(data.get(10), 5, &opts).0, nn);
        // A meta-free restore answers unfiltered queries identically.
        let plain = DynamicIndex::from_slots(
            8,
            idx.expected_n(),
            idx.config(),
            idx.slots().to_vec(),
            Vec::new(),
        );
        assert_eq!(plain.query(data.get(10), 5).0, idx.query(data.get(10), 5).0);
        assert!(plain.meta_slots().iter().all(|m| *m == PointMeta::default()));
    }

    #[test]
    fn trait_mutations_delegate_to_inherent() {
        let mut idx = DynamicIndex::new(4, 100, &cfg());
        assert!(TableStore::supports_mutations(&idx));
        let oid = TableStore::insert(&mut idx, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(oid, 0);
        assert!(TableStore::delete(&mut idx, oid));
        assert!(!TableStore::delete(&mut idx, oid));
        // And the static defaults really are inert.
        let data = clustered(60, 4, 9);
        let mut static_idx = C2lshIndex::build(&data, &cfg());
        assert!(!TableStore::supports_mutations(&static_idx));
        assert_eq!(TableStore::insert(&mut static_idx, vec![0.0; 4]), None);
        assert!(!TableStore::delete(&mut static_idx, 0));
    }
}

//! The dynamic (updatable) C2LSH index.
//!
//! A key advantage the paper claims over LSB-forest: because every hash
//! table is keyed by a *single* LSH function, updates are trivial —
//! insert/delete an object touches one bucket per table, no compound
//! keys, no tree rebalancing across radii (virtual rehashing still works
//! because it only relies on bucket-id arithmetic).
//!
//! [`DynamicIndex`] owns its data and keeps each hash table as a
//! `BTreeMap<bucket, Vec<oid>>`, trading the static index's cache-dense
//! sorted runs for O(log n) updates. The query loop is the same
//! algorithm as [`crate::query::run_query`] — virtual rehashing windows,
//! incremental counting, terminating conditions T1/T2 — expressed over
//! key ranges instead of array positions.

use crate::config::C2lshConfig;
use crate::counting::CollisionCounter;
use crate::hash::HashFamily;
use crate::params::FullParams;
use crate::rehash::{radius_at, window};
use crate::stats::{QueryStats, Termination};
use cc_vector::dataset::Dataset;
use cc_vector::dist::euclidean;
use cc_vector::gt::Neighbor;
use std::collections::BTreeMap;

/// An updatable C2LSH index owning its vectors.
pub struct DynamicIndex {
    dim: usize,
    config: C2lshConfig,
    params: FullParams,
    family: HashFamily,
    /// Object id → vector (tombstoned on delete).
    vectors: Vec<Option<Vec<f32>>>,
    live: usize,
    tables: Vec<BTreeMap<i64, Vec<u32>>>,
    counter: CollisionCounter,
}

impl DynamicIndex {
    /// Create an empty index sized for an *expected* dataset size
    /// `expected_n` (drives the `(m, l)` derivation; the guarantee is
    /// calibrated to that order of magnitude — re-derive and rebuild if
    /// the live size drifts by more than ~10×).
    ///
    /// # Panics
    /// Panics on `expected_n == 0`, `dim == 0` or an invalid config.
    pub fn new(dim: usize, expected_n: usize, config: &C2lshConfig) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let params = FullParams::derive(expected_n, config);
        let family = HashFamily::generate(params.m, dim, config);
        let tables = vec![BTreeMap::new(); params.m];
        Self {
            dim,
            config: config.clone(),
            params,
            family,
            vectors: Vec::new(),
            live: 0,
            tables,
            counter: CollisionCounter::new(0),
        }
    }

    /// Build from an existing dataset (bulk path used by tests and by
    /// migrations from the static index).
    pub fn from_dataset(data: &Dataset, config: &C2lshConfig) -> Self {
        let mut idx = Self::new(data.dim(), data.len().max(1), config);
        for v in data.iter() {
            idx.insert(v.to_vec());
        }
        idx
    }

    /// Insert a vector; returns its object id. O(m log n).
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn insert(&mut self, v: Vec<f32>) -> u32 {
        assert_eq!(v.len(), self.dim, "vector length mismatch");
        assert!(v.iter().all(|x| x.is_finite()), "vector contains non-finite coordinates");
        let oid = self.vectors.len() as u32;
        for (t, h) in self.family.iter().enumerate() {
            let b = h.bucket(&v);
            self.tables[t].entry(b).or_default().push(oid);
        }
        self.vectors.push(Some(v));
        self.live += 1;
        oid
    }

    /// Delete an object by id; returns `false` when the id is unknown or
    /// already deleted. O(m log n + bucket sizes).
    pub fn delete(&mut self, oid: u32) -> bool {
        let Some(slot) = self.vectors.get_mut(oid as usize) else {
            return false;
        };
        let Some(v) = slot.take() else {
            return false;
        };
        for (t, h) in self.family.iter().enumerate() {
            let b = h.bucket(&v);
            if let Some(bucket) = self.tables[t].get_mut(&b) {
                bucket.retain(|&o| o != oid);
                if bucket.is_empty() {
                    self.tables[t].remove(&b);
                }
            }
        }
        self.live -= 1;
        true
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when the index holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The derived parameters in effect.
    pub fn params(&self) -> &FullParams {
        &self.params
    }

    /// Access a live vector by id.
    pub fn get(&self, oid: u32) -> Option<&[f32]> {
        self.vectors.get(oid as usize).and_then(|v| v.as_deref())
    }

    /// c-k-ANN query (same algorithm and guarantees as the static
    /// index; see module docs).
    pub fn query(&mut self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        assert!(k > 0, "k must be positive");
        assert_eq!(q.len(), self.dim, "query dimensionality mismatch");
        assert!(q.iter().all(|x| x.is_finite()), "query contains non-finite coordinates");
        let m = self.family.len();
        let l = self.params.l as u32;
        let cap = k + self.params.beta_n;
        let mut stats = QueryStats::new();
        if self.counter.capacity() < self.vectors.len() {
            self.counter = CollisionCounter::new(self.vectors.len());
        }
        self.counter.begin_query();

        let q_buckets: Vec<i64> = self.family.buckets(q);
        // Covered bucket-id window per table (half-open, in bucket ids).
        let mut covered: Vec<Option<(i64, i64)>> = vec![None; m];
        let mut candidates: Vec<Neighbor> = Vec::with_capacity(cap);

        let mut level: u32 = 0;
        'outer: loop {
            let radius = radius_at(self.config.c, level);
            stats.rounds += 1;
            stats.final_radius = radius;

            for t in 0..m {
                let (blo, bhi) = window(q_buckets[t], radius);
                // Delta key ranges vs the previously covered window.
                let deltas: [(i64, i64); 2] = match covered[t] {
                    None => [(blo, bhi), (0, 0)],
                    Some((plo, phi)) => [(blo, plo), (phi, bhi)],
                };
                covered[t] = Some((blo, bhi));
                for &(lo, hi) in &deltas {
                    if lo >= hi {
                        continue;
                    }
                    for (_, bucket) in self.tables[t].range(lo..hi) {
                        for &oid in bucket {
                            stats.collisions_counted += 1;
                            let cnt = self.counter.increment(oid);
                            if cnt == l && self.counter.mark_verified(oid) {
                                let Some(v) = self.vectors[oid as usize].as_deref() else {
                                    continue;
                                };
                                let d = euclidean(v, q);
                                stats.candidates_verified += 1;
                                candidates.push(Neighbor::new(oid, d));
                                if candidates.len() >= cap {
                                    stats.terminated_by = Termination::T2CandidateBudget;
                                    break 'outer;
                                }
                            }
                        }
                    }
                }
            }

            let c_r = self.config.c as f64 * radius as f64 * self.config.base_radius;
            if candidates.iter().filter(|cand| cand.dist <= c_r).count() >= k {
                stats.terminated_by = Termination::T1AtRadius;
                break;
            }
            // Exhausted: every table's window covers all its keys.
            let all_covered = (0..m).all(|t| {
                let Some((lo, hi)) = covered[t] else { return false };
                match (self.tables[t].keys().next(), self.tables[t].keys().next_back()) {
                    (Some(&min), Some(&max)) => lo <= min && hi > max,
                    _ => true, // empty table
                }
            });
            if all_covered {
                stats.terminated_by = Termination::Exhausted;
                break;
            }
            level += 1;
        }

        candidates.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap().then(a.id.cmp(&b.id)));
        candidates.truncate(k);
        (candidates, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::C2lshIndex;
    use cc_vector::gen::{generate, Distribution};

    fn clustered(n: usize, d: usize, seed: u64) -> Dataset {
        generate(
            Distribution::GaussianMixture { clusters: 16, spread: 0.015, scale: 10.0 },
            n,
            d,
            seed,
        )
    }

    fn cfg() -> C2lshConfig {
        C2lshConfig::builder().bucket_width(1.0).seed(42).build()
    }

    #[test]
    fn matches_static_index_results() {
        // Same config/seed => same hash family => identical candidates.
        let data = clustered(800, 12, 1);
        let static_idx = C2lshIndex::build(&data, &cfg());
        let mut dyn_idx = DynamicIndex::from_dataset(&data, &cfg());
        for qi in [0usize, 99, 700] {
            let q = data.get(qi).to_vec();
            let (s_nn, _) = static_idx.query(&q, 10);
            let (d_nn, _) = dyn_idx.query(&q, 10);
            assert_eq!(s_nn, d_nn, "query {qi}");
        }
    }

    #[test]
    fn insert_then_find() {
        let mut idx = DynamicIndex::new(8, 1000, &cfg());
        let data = clustered(200, 8, 2);
        for v in data.iter() {
            idx.insert(v.to_vec());
        }
        assert_eq!(idx.len(), 200);
        let (nn, _) = idx.query(data.get(57), 1);
        assert_eq!(nn[0].id, 57);
        assert_eq!(nn[0].dist, 0.0);
    }

    #[test]
    fn delete_removes_from_results() {
        let mut idx = DynamicIndex::new(8, 1000, &cfg());
        let data = clustered(100, 8, 3);
        for v in data.iter() {
            idx.insert(v.to_vec());
        }
        let q = data.get(42).to_vec();
        assert_eq!(idx.query(&q, 1).0[0].id, 42);
        assert!(idx.delete(42));
        assert!(!idx.delete(42), "double delete must be a no-op");
        assert_eq!(idx.len(), 99);
        assert!(idx.get(42).is_none());
        let (nn, _) = idx.query(&q, 1);
        assert_ne!(nn[0].id, 42, "deleted object must not be returned");
    }

    #[test]
    fn interleaved_updates_stay_consistent() {
        let mut idx = DynamicIndex::new(6, 500, &cfg());
        let data = clustered(300, 6, 4);
        let mut live: Vec<u32> = Vec::new();
        for (i, v) in data.iter().enumerate() {
            let oid = idx.insert(v.to_vec());
            live.push(oid);
            if i % 3 == 2 {
                let victim = live.remove(live.len() / 2);
                assert!(idx.delete(victim));
            }
        }
        assert_eq!(idx.len(), live.len());
        // Every remaining live object findable by exact-match query.
        for &oid in live.iter().step_by(17) {
            let q = idx.get(oid).unwrap().to_vec();
            let (nn, _) = idx.query(&q, 1);
            assert_eq!(nn[0].dist, 0.0);
        }
    }

    #[test]
    fn unknown_ids_rejected() {
        let mut idx = DynamicIndex::new(4, 100, &cfg());
        assert!(!idx.delete(0));
        assert!(idx.get(5).is_none());
        assert!(idx.is_empty());
    }

    #[test]
    fn query_on_sparse_index_terminates() {
        let mut idx = DynamicIndex::new(4, 1000, &cfg());
        idx.insert(vec![0.0; 4]);
        idx.insert(vec![100.0; 4]);
        let (nn, stats) = idx.query(&[50.0; 4], 2);
        assert_eq!(nn.len(), 2);
        assert!(matches!(
            stats.terminated_by,
            Termination::Exhausted | Termination::T1AtRadius
        ));
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn rejects_wrong_dimension() {
        let mut idx = DynamicIndex::new(4, 100, &cfg());
        idx.insert(vec![0.0; 3]);
    }
}

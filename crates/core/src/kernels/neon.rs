//! aarch64 NEON kernels on stable `core::arch`.
//!
//! NEON is part of the aarch64 baseline, so no runtime detection is
//! needed and the functions are callable safely. The schedules mirror
//! the scalar oracles exactly — see the x86 module docs for the
//! bit-identity argument; the NEON register layout matches SSE2's
//! two-register (distance) and four-register (projection) shapes.
//! Multiplies and adds are kept separate (no `vfmaq`): fused rounding
//! would diverge from the scalar kernels.
//!
//! # Safety
//!
//! The only unsafe operations are unaligned vector loads (`vld1q_f32`)
//! whose in-bounds-ness is guaranteed by the surrounding slice
//! arithmetic.
#![allow(unsafe_code)]

use cc_vector::dist::{BOUND_CHECK_DIMS, LANES};
use core::arch::aarch64::*;

/// Reduce the 8-lane f32 accumulator (`lo` holds scalar lanes 0..4,
/// `hi` lanes 4..8) exactly like the scalar `combine`.
#[inline]
#[target_feature(enable = "neon")]
fn combine_neon(lo: float32x4_t, hi: float32x4_t) -> f64 {
    let s = vaddq_f32(lo, hi); // [a0+a4, a1+a5, a2+a6, a3+a7], f32
    let d_lo = vcvt_f64_f32(vget_low_f32(s)); // [s0, s1] exact as f64
    let d_hi = vcvt_high_f64_f32(s); // [s2, s3]
    let t = vaddq_f64(d_lo, d_hi); // [s0+s2, s1+s3]
    vgetq_lane_f64::<0>(t) + vgetq_lane_f64::<1>(t)
}

/// NEON squared-distance kernel, `BOUNDED` adds the early-abandon
/// checks.
#[inline]
#[target_feature(enable = "neon")]
pub fn sq_neon<const BOUNDED: bool>(a: &[f32], b: &[f32], bound: f64) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
    let split = a.len() - a.len() % LANES;
    let mut acc_lo = vdupq_n_f32(0.0); // scalar lanes 0..4
    let mut acc_hi = vdupq_n_f32(0.0); // scalar lanes 4..8
    let mut i = 0usize;
    if BOUNDED {
        let whole = split - split % BOUND_CHECK_DIMS;
        while i < whole {
            let block_end = i + BOUND_CHECK_DIMS;
            while i < block_end {
                // SAFETY: i + LANES <= whole <= a.len() == b.len().
                let x0 = unsafe { vld1q_f32(a.as_ptr().add(i)) };
                let y0 = unsafe { vld1q_f32(b.as_ptr().add(i)) };
                let x1 = unsafe { vld1q_f32(a.as_ptr().add(i + 4)) };
                let y1 = unsafe { vld1q_f32(b.as_ptr().add(i + 4)) };
                let d0 = vsubq_f32(x0, y0);
                let d1 = vsubq_f32(x1, y1);
                acc_lo = vaddq_f32(acc_lo, vmulq_f32(d0, d0));
                acc_hi = vaddq_f32(acc_hi, vmulq_f32(d1, d1));
                i += LANES;
            }
            if combine_neon(acc_lo, acc_hi) > bound {
                return None;
            }
        }
    }
    while i < split {
        // SAFETY: i + LANES <= split <= a.len() == b.len().
        let x0 = unsafe { vld1q_f32(a.as_ptr().add(i)) };
        let y0 = unsafe { vld1q_f32(b.as_ptr().add(i)) };
        let x1 = unsafe { vld1q_f32(a.as_ptr().add(i + 4)) };
        let y1 = unsafe { vld1q_f32(b.as_ptr().add(i + 4)) };
        let d0 = vsubq_f32(x0, y0);
        let d1 = vsubq_f32(x1, y1);
        acc_lo = vaddq_f32(acc_lo, vmulq_f32(d0, d0));
        acc_hi = vaddq_f32(acc_hi, vmulq_f32(d1, d1));
        i += LANES;
    }
    if BOUNDED && split % BOUND_CHECK_DIMS != 0 && combine_neon(acc_lo, acc_hi) > bound {
        return None;
    }
    let mut tail = 0.0f32;
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        let d = x - y;
        tail += d * d;
    }
    Some(combine_neon(acc_lo, acc_hi) + f64::from(tail))
}

/// NEON projection dot product (eight f64 lanes in four registers).
#[inline]
#[target_feature(enable = "neon")]
pub fn dot_neon(a: &[f32], q: &[f32]) -> f64 {
    assert_eq!(a.len(), q.len(), "dimension mismatch: {} vs {}", a.len(), q.len());
    let split = a.len() - a.len() % super::scalar::PROJ_LANES;
    let mut acc01 = vdupq_n_f64(0.0);
    let mut acc23 = vdupq_n_f64(0.0);
    let mut acc45 = vdupq_n_f64(0.0);
    let mut acc67 = vdupq_n_f64(0.0);
    let mut i = 0usize;
    while i < split {
        // SAFETY: i + 8 <= split <= a.len() == q.len().
        let x_lo = unsafe { vld1q_f32(a.as_ptr().add(i)) };
        let x_hi = unsafe { vld1q_f32(a.as_ptr().add(i + 4)) };
        let y_lo = unsafe { vld1q_f32(q.as_ptr().add(i)) };
        let y_hi = unsafe { vld1q_f32(q.as_ptr().add(i + 4)) };
        acc01 = vaddq_f64(
            acc01,
            vmulq_f64(vcvt_f64_f32(vget_low_f32(x_lo)), vcvt_f64_f32(vget_low_f32(y_lo))),
        );
        acc23 = vaddq_f64(acc23, vmulq_f64(vcvt_high_f64_f32(x_lo), vcvt_high_f64_f32(y_lo)));
        acc45 = vaddq_f64(
            acc45,
            vmulq_f64(vcvt_f64_f32(vget_low_f32(x_hi)), vcvt_f64_f32(vget_low_f32(y_hi))),
        );
        acc67 = vaddq_f64(acc67, vmulq_f64(vcvt_high_f64_f32(x_hi), vcvt_high_f64_f32(y_hi)));
        i += super::scalar::PROJ_LANES;
    }
    let t04 = vaddq_f64(acc01, acc45); // [l0+l4, l1+l5]
    let t26 = vaddq_f64(acc23, acc67); // [l2+l6, l3+l7]
    let u = vaddq_f64(t04, t26);
    let main = vgetq_lane_f64::<0>(u) + vgetq_lane_f64::<1>(u);
    let mut tail = 0.0f64;
    for (x, y) in a[split..].iter().zip(&q[split..]) {
        tail += f64::from(*x) * f64::from(*y);
    }
    main + tail
}

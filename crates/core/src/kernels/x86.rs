//! x86-64 kernels: AVX2 (runtime-detected) and SSE2 (baseline, always
//! present on x86-64) on stable `core::arch`.
//!
//! # Bit-identity
//!
//! Both kernels replicate the scalar schedules operation-for-operation:
//!
//! * **Distance** ([`cc_vector::dist`]): eight `f32` accumulator lanes,
//!   lane `i` accumulating elements `i, i+8, …` — AVX2 keeps them in one
//!   256-bit register, SSE2 in two 128-bit registers. Subtract, multiply
//!   and add are separate IEEE-rounded ops (**no FMA** — fused rounding
//!   would diverge from the scalar kernel), the combine pairs lane `i`
//!   with `i+4` and folds in the scalar `combine`'s association, and the
//!   bound checks sit at the same [`BOUND_CHECK_DIMS`] block boundaries.
//! * **Projection** ([`super::scalar`]): eight `f64` accumulator lanes
//!   (two 256-bit / four 128-bit registers), products formed in `f64`
//!   (exact for `f32` inputs), combine `((l0+l4)+(l2+l6)) +
//!   ((l1+l5)+(l3+l7))`, sequential `f64` tail added last.
//!
//! Per-lane IEEE ops are identical scalar-vs-packed, conversions are
//! exact, and the reduction order is fixed — so results (including the
//! bounded kernel's `Some`/`None` decisions) are bit-identical to the
//! scalar oracle. Pinned by `tests/proptest_kernels.rs`.
//!
//! # Safety
//!
//! This module is the reason the crate relaxed `#![forbid(unsafe_code)]`
//! to `deny` + scoped allows. The only unsafe operations are unaligned
//! SIMD loads (`_mm*_loadu_*`) whose in-bounds-ness is guaranteed by the
//! surrounding slice arithmetic, and calls to `#[target_feature(enable =
//! "avx2")]` functions, which [`super::KernelDispatch`] only makes after
//! `is_x86_feature_detected!("avx2")` succeeded. SSE2 is part of the
//! x86-64 baseline, so the SSE2 functions are callable safely.
#![allow(unsafe_code)]

use cc_vector::dist::{BOUND_CHECK_DIMS, LANES};
use core::arch::x86_64::*;

/// Reduce the 8-lane f32 accumulator (as one 256-bit register) exactly
/// like the scalar `combine`: `((a0+a4) + (a2+a6)) + ((a1+a5) + (a3+a7))`
/// with the pairwise sums in f32 and the folds in f64.
#[inline]
#[target_feature(enable = "avx2")]
fn combine_avx2(acc: __m256) -> f64 {
    let lo = _mm256_castps256_ps128(acc); // lanes 0..4
    let hi = _mm256_extractf128_ps::<1>(acc); // lanes 4..8
    combine_sse2(lo, hi)
}

/// The same reduction from the two-register SSE2 layout (`lo` holds
/// lanes 0..4, `hi` lanes 4..8).
#[inline]
#[target_feature(enable = "sse2")]
fn combine_sse2(lo: __m128, hi: __m128) -> f64 {
    let s = _mm_add_ps(lo, hi); // [a0+a4, a1+a5, a2+a6, a3+a7], f32
    let d_lo = _mm_cvtps_pd(s); // [s0, s1] exact as f64
    let d_hi = _mm_cvtps_pd(_mm_movehl_ps(s, s)); // [s2, s3]
    let t = _mm_add_pd(d_lo, d_hi); // [s0+s2, s1+s3]
    _mm_cvtsd_f64(t) + _mm_cvtsd_f64(_mm_unpackhi_pd(t, t))
}

/// AVX2 squared-distance kernel, `BOUNDED` adds the early-abandon
/// checks. Callers must have verified AVX2 support.
#[inline]
#[target_feature(enable = "avx2")]
pub fn sq_avx2<const BOUNDED: bool>(a: &[f32], b: &[f32], bound: f64) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
    let split = a.len() - a.len() % LANES;
    let mut acc = _mm256_setzero_ps();
    let mut i = 0usize;
    if BOUNDED {
        let whole = split - split % BOUND_CHECK_DIMS;
        while i < whole {
            let block_end = i + BOUND_CHECK_DIMS;
            while i < block_end {
                // SAFETY: i + LANES <= whole <= a.len() == b.len().
                let x = unsafe { _mm256_loadu_ps(a.as_ptr().add(i)) };
                let y = unsafe { _mm256_loadu_ps(b.as_ptr().add(i)) };
                let d = _mm256_sub_ps(x, y);
                acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
                i += LANES;
            }
            if combine_avx2(acc) > bound {
                return None;
            }
        }
    }
    while i < split {
        // SAFETY: i + LANES <= split <= a.len() == b.len().
        let x = unsafe { _mm256_loadu_ps(a.as_ptr().add(i)) };
        let y = unsafe { _mm256_loadu_ps(b.as_ptr().add(i)) };
        let d = _mm256_sub_ps(x, y);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
        i += LANES;
    }
    if BOUNDED && !split.is_multiple_of(BOUND_CHECK_DIMS) && combine_avx2(acc) > bound {
        return None;
    }
    let mut tail = 0.0f32;
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        let d = x - y;
        tail += d * d;
    }
    Some(combine_avx2(acc) + f64::from(tail))
}

/// SSE2 squared-distance kernel (two 4-wide accumulator registers).
#[inline]
#[target_feature(enable = "sse2")]
pub fn sq_sse2<const BOUNDED: bool>(a: &[f32], b: &[f32], bound: f64) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
    let split = a.len() - a.len() % LANES;
    let mut acc_lo = _mm_setzero_ps(); // scalar lanes 0..4
    let mut acc_hi = _mm_setzero_ps(); // scalar lanes 4..8
    let mut i = 0usize;
    if BOUNDED {
        let whole = split - split % BOUND_CHECK_DIMS;
        while i < whole {
            let block_end = i + BOUND_CHECK_DIMS;
            while i < block_end {
                // SAFETY: i + LANES <= whole <= a.len() == b.len().
                let x0 = unsafe { _mm_loadu_ps(a.as_ptr().add(i)) };
                let y0 = unsafe { _mm_loadu_ps(b.as_ptr().add(i)) };
                let x1 = unsafe { _mm_loadu_ps(a.as_ptr().add(i + 4)) };
                let y1 = unsafe { _mm_loadu_ps(b.as_ptr().add(i + 4)) };
                let d0 = _mm_sub_ps(x0, y0);
                let d1 = _mm_sub_ps(x1, y1);
                acc_lo = _mm_add_ps(acc_lo, _mm_mul_ps(d0, d0));
                acc_hi = _mm_add_ps(acc_hi, _mm_mul_ps(d1, d1));
                i += LANES;
            }
            if combine_sse2(acc_lo, acc_hi) > bound {
                return None;
            }
        }
    }
    while i < split {
        // SAFETY: i + LANES <= split <= a.len() == b.len().
        let x0 = unsafe { _mm_loadu_ps(a.as_ptr().add(i)) };
        let y0 = unsafe { _mm_loadu_ps(b.as_ptr().add(i)) };
        let x1 = unsafe { _mm_loadu_ps(a.as_ptr().add(i + 4)) };
        let y1 = unsafe { _mm_loadu_ps(b.as_ptr().add(i + 4)) };
        let d0 = _mm_sub_ps(x0, y0);
        let d1 = _mm_sub_ps(x1, y1);
        acc_lo = _mm_add_ps(acc_lo, _mm_mul_ps(d0, d0));
        acc_hi = _mm_add_ps(acc_hi, _mm_mul_ps(d1, d1));
        i += LANES;
    }
    if BOUNDED && !split.is_multiple_of(BOUND_CHECK_DIMS) && combine_sse2(acc_lo, acc_hi) > bound {
        return None;
    }
    let mut tail = 0.0f32;
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        let d = x - y;
        tail += d * d;
    }
    Some(combine_sse2(acc_lo, acc_hi) + f64::from(tail))
}

/// Reduce the four 2-wide f64 projection accumulators (`acc01` holds
/// lanes 0–1, `acc23` lanes 2–3, …) exactly like the scalar combine.
#[inline]
#[target_feature(enable = "sse2")]
fn combine_proj_sse2(acc01: __m128d, acc23: __m128d, acc45: __m128d, acc67: __m128d) -> f64 {
    let t04 = _mm_add_pd(acc01, acc45); // [l0+l4, l1+l5]
    let t26 = _mm_add_pd(acc23, acc67); // [l2+l6, l3+l7]
    let u = _mm_add_pd(t04, t26); // [(l0+l4)+(l2+l6), (l1+l5)+(l3+l7)]
    _mm_cvtsd_f64(u) + _mm_cvtsd_f64(_mm_unpackhi_pd(u, u))
}

/// AVX2 projection dot product (eight f64 lanes in two registers).
#[inline]
#[target_feature(enable = "avx2")]
pub fn dot_avx2(a: &[f32], q: &[f32]) -> f64 {
    assert_eq!(a.len(), q.len(), "dimension mismatch: {} vs {}", a.len(), q.len());
    let split = a.len() - a.len() % super::scalar::PROJ_LANES;
    let mut acc_a = _mm256_setzero_pd(); // scalar lanes 0..4
    let mut acc_b = _mm256_setzero_pd(); // scalar lanes 4..8
    let mut i = 0usize;
    while i < split {
        // SAFETY: i + 8 <= split <= a.len() == q.len().
        let x_lo = unsafe { _mm_loadu_ps(a.as_ptr().add(i)) };
        let x_hi = unsafe { _mm_loadu_ps(a.as_ptr().add(i + 4)) };
        let y_lo = unsafe { _mm_loadu_ps(q.as_ptr().add(i)) };
        let y_hi = unsafe { _mm_loadu_ps(q.as_ptr().add(i + 4)) };
        acc_a = _mm256_add_pd(acc_a, _mm256_mul_pd(_mm256_cvtps_pd(x_lo), _mm256_cvtps_pd(y_lo)));
        acc_b = _mm256_add_pd(acc_b, _mm256_mul_pd(_mm256_cvtps_pd(x_hi), _mm256_cvtps_pd(y_hi)));
        i += super::scalar::PROJ_LANES;
    }
    // Reduce via the SSE2 four-register shape: split each 256-bit
    // accumulator into its 128-bit halves (lanes [0,1]/[2,3] and
    // [4,5]/[6,7]) — value-identical to the scalar combine.
    let main = combine_proj_sse2(
        _mm256_castpd256_pd128(acc_a),
        _mm256_extractf128_pd::<1>(acc_a),
        _mm256_castpd256_pd128(acc_b),
        _mm256_extractf128_pd::<1>(acc_b),
    );
    let mut tail = 0.0f64;
    for (x, y) in a[split..].iter().zip(&q[split..]) {
        tail += f64::from(*x) * f64::from(*y);
    }
    main + tail
}

/// SSE2 projection dot product (eight f64 lanes in four registers).
#[inline]
#[target_feature(enable = "sse2")]
pub fn dot_sse2(a: &[f32], q: &[f32]) -> f64 {
    assert_eq!(a.len(), q.len(), "dimension mismatch: {} vs {}", a.len(), q.len());
    let split = a.len() - a.len() % super::scalar::PROJ_LANES;
    let mut acc01 = _mm_setzero_pd();
    let mut acc23 = _mm_setzero_pd();
    let mut acc45 = _mm_setzero_pd();
    let mut acc67 = _mm_setzero_pd();
    let mut i = 0usize;
    while i < split {
        // SAFETY: i + 8 <= split <= a.len() == q.len().
        let x_lo = unsafe { _mm_loadu_ps(a.as_ptr().add(i)) };
        let x_hi = unsafe { _mm_loadu_ps(a.as_ptr().add(i + 4)) };
        let y_lo = unsafe { _mm_loadu_ps(q.as_ptr().add(i)) };
        let y_hi = unsafe { _mm_loadu_ps(q.as_ptr().add(i + 4)) };
        let x01 = _mm_cvtps_pd(x_lo);
        let x23 = _mm_cvtps_pd(_mm_movehl_ps(x_lo, x_lo));
        let x45 = _mm_cvtps_pd(x_hi);
        let x67 = _mm_cvtps_pd(_mm_movehl_ps(x_hi, x_hi));
        let y01 = _mm_cvtps_pd(y_lo);
        let y23 = _mm_cvtps_pd(_mm_movehl_ps(y_lo, y_lo));
        let y45 = _mm_cvtps_pd(y_hi);
        let y67 = _mm_cvtps_pd(_mm_movehl_ps(y_hi, y_hi));
        acc01 = _mm_add_pd(acc01, _mm_mul_pd(x01, y01));
        acc23 = _mm_add_pd(acc23, _mm_mul_pd(x23, y23));
        acc45 = _mm_add_pd(acc45, _mm_mul_pd(x45, y45));
        acc67 = _mm_add_pd(acc67, _mm_mul_pd(x67, y67));
        i += super::scalar::PROJ_LANES;
    }
    let main = combine_proj_sse2(acc01, acc23, acc45, acc67);
    let mut tail = 0.0f64;
    for (x, y) in a[split..].iter().zip(&q[split..]) {
        tail += f64::from(*x) * f64::from(*y);
    }
    main + tail
}
